"""A noisy uniform *pull* substrate for the baseline dynamics.

The baseline protocols the paper's related-work section compares against
(3-majority dynamics, h-majority, undecided-state dynamics, the median rule)
are classically stated in a pull fashion: in each round every node samples
the opinion of a few nodes chosen uniformly at random and updates from what
it observed.  To compare those dynamics with the paper's protocol *under the
same noise assumption*, this engine lets every observation be corrupted by
the same noise matrix used by the push model.

The engine works on a full opinion vector (0 = undecided) and reports, per
round, the matrix of observed (noisy) opinion counts per node.

:class:`EnsemblePullModel` is the batched counterpart used by the ensemble
dynamics: the same noisy observation step over an ``(R, n)`` opinion matrix
of ``R`` independent trials.  Exactly as the ensemble protocol replaces the
per-round push loop with Claim-1 phase sampling, the batched pull engine
samples the *compound* observation channel directly: an observation is a
uniform target draw composed with per-message noise, so each observation is
an i.i.d. categorical draw over {no opinion, 1, …, k} with probabilities
``(1 - a, c P)`` — distribution-exact, not an approximation.  With a
sequence of per-trial randomness sources, trial ``r`` consumes one uniform
block per observation step from its own source, so a batched run is bitwise
identical to ``R`` batch-size-1 runs with the same sources (the ensemble
reproducibility guarantee); agreement with the per-message sequential engine
is distributional and is checked statistically by the test-suite.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from functools import lru_cache
from itertools import combinations
from typing import Dict, Tuple

import numpy as np

from repro.network.mailbox import EnsembleReceivedMessages, ReceivedMessages
from repro.noise.matrix import NoiseMatrix
from repro.utils.multiset import opinion_counts_matrix
from repro.utils.rng import (
    EnsembleRandomState,
    RandomState,
    as_generator,
    as_trial_generators,
    is_generator_sequence,
)
from repro.utils.validation import require_positive_int

__all__ = [
    "UniformPullModel",
    "EnsemblePullModel",
    "CountsPullModel",
    "majority_vote_law",
    "vote_table_is_tractable",
    "dense_majority_vote_law",
    "dense_vote_law_is_tractable",
    "vote_law_cache_info",
    "clear_vote_law_cache",
]


def _candidate_pool(
    opinions: np.ndarray, include_undecided: bool
) -> np.ndarray:
    """The nodes a single trial may observe (all, or opinionated-only)."""
    num_nodes = opinions.shape[0]
    if include_undecided:
        return np.arange(num_nodes)
    pool = np.nonzero(opinions > 0)[0]
    if pool.size == 0:
        return np.arange(num_nodes)
    return pool


def _observe_core(
    opinions: np.ndarray,
    sample_size: int,
    include_undecided: bool,
    noise: NoiseMatrix,
    rng: np.random.Generator,
) -> np.ndarray:
    """One trial's observed-count matrix ``(n, k)``, message by message.

    The executable specification of the pull observation step: every
    observation is materialized, noised and counted individually.  The
    per-node accumulation is a single :func:`numpy.bincount` over flattened
    ``observer * k + opinion`` indices (measurably faster than the
    ``np.add.at`` scatter it replaces).
    """
    num_nodes = opinions.shape[0]
    num_opinions = noise.num_opinions
    pool = _candidate_pool(opinions, include_undecided)
    targets = rng.choice(pool, size=(num_nodes, sample_size), replace=True)
    observed = opinions[targets]
    observers, slots = np.nonzero(observed > 0)
    if observers.size == 0:
        return np.zeros((num_nodes, num_opinions), dtype=np.int64)
    true_opinions = observed[observers, slots]
    noisy_opinions = noise.apply_to_opinions(true_opinions, rng)
    flat = np.bincount(
        observers * num_opinions + (noisy_opinions - 1),
        minlength=num_nodes * num_opinions,
    )
    return flat.reshape(num_nodes, num_opinions).astype(np.int64, copy=False)


#: Above this many compositions the closed-form ``maj()`` table is not worth
#: building (cost and memory grow as C(sample_size + k, k)); the fused vote
#: sampler then falls back to explicit observation counts.
_VOTE_TABLE_MAX_COMPOSITIONS = 100_000

#: Largest sample size whose factorial still fits a float64 (171! overflows);
#: beyond it the closed form is numerically moot anyway, so the fused vote
#: sampler falls back to explicit observation counts.
_VOTE_TABLE_MAX_SAMPLE = 170


def _vote_table_is_tractable(sample_size: int, num_opinions: int) -> bool:
    """Whether the closed-form ``maj()`` table is worth (and safe) building."""
    return (
        sample_size <= _VOTE_TABLE_MAX_SAMPLE
        and math.comb(sample_size + num_opinions, num_opinions)
        <= _VOTE_TABLE_MAX_COMPOSITIONS
    )


def vote_table_is_tractable(sample_size: int, num_opinions: int) -> bool:
    """Public predicate: can the exact ``maj()`` vote law be tabulated?

    The batched pull engine falls back to explicit observation counts when
    this is ``False``; the counts engines use it to decide between the fused
    closed-form vote law and their bounded-chunk per-voter sampler.
    """
    return _vote_table_is_tractable(sample_size, num_opinions)


#: Module-level LRU over fully evaluated ``maj()`` vote laws, keyed by
#: ``(k, sample_size, observation-pmf bytes)`` — the "noise hash" of a
#: Stage-2 phase or h-majority round is exactly its observation pmf, so
#: repeated engine construction (orchestrator jobs, sweep blocks, analytic
#: kernels) stops re-evaluating identical composition sums.  The cache is
#: exact: identical key bytes imply a bitwise-identical law.
_VOTE_LAW_CACHE: "OrderedDict[Tuple[int, int, bytes], np.ndarray]" = (
    OrderedDict()
)
#: Entry cap of the vote-law LRU.
_VOTE_LAW_CACHE_MAX_ENTRIES = 256
#: Largest observation-pmf payload (bytes) worth hashing and retaining;
#: larger batches are passed through uncached.
_VOTE_LAW_CACHE_MAX_BYTES = 1 << 16
_vote_law_hits = 0
_vote_law_misses = 0


def vote_law_cache_info() -> Dict[str, int]:
    """Hit/miss counters of the ``maj()`` caches (law LRU + table LRU).

    ``law_*`` counts the module-level vote-law LRU of
    :func:`majority_vote_law`; ``table_*`` counts the composition-table
    LRU underneath it (:func:`_majority_vote_table`).  Exposed for the
    sweep benchmark, which reports how many grid points shared tables.
    """
    table = _majority_vote_table.cache_info()
    dense = _dense_majority_vote_table.cache_info()
    return {
        "law_hits": _vote_law_hits,
        "law_misses": _vote_law_misses,
        "law_entries": len(_VOTE_LAW_CACHE),
        "table_hits": table.hits,
        "table_misses": table.misses,
        "table_entries": table.currsize,
        "dense_table_hits": dense.hits,
        "dense_table_misses": dense.misses,
        "dense_table_entries": dense.currsize,
    }


def clear_vote_law_cache(*, tables: bool = False) -> None:
    """Empty the vote-law LRU (and optionally both composition-table LRUs)."""
    global _vote_law_hits, _vote_law_misses
    _VOTE_LAW_CACHE.clear()
    _vote_law_hits = 0
    _vote_law_misses = 0
    if tables:
        _majority_vote_table.cache_clear()
        _dense_majority_vote_table.cache_clear()


def majority_vote_law(
    probabilities: np.ndarray, sample_size: int
) -> np.ndarray:
    """The exact pmf of ``maj()`` over ``sample_size`` i.i.d. observations.

    ``probabilities`` has shape ``(R, k + 1)``: row ``r`` is trial ``r``'s
    observation distribution over {no opinion, opinion 1, …, opinion k}.
    Returns the matching ``(R, k + 1)`` vote distribution over {no vote,
    vote 1, …, vote k}, with the uniform tie-break folded in analytically
    (via :func:`_majority_vote_table`).  Raises ``ValueError`` when the
    composition table is intractable for ``(sample_size, k)`` — callers
    should check :func:`vote_table_is_tractable` first and fall back to
    explicit observation sampling.

    Results for small batches are memoized in a module-level LRU keyed by
    ``(k, sample_size, pmf bytes)`` (see :func:`vote_law_cache_info`); a
    hit returns a fresh copy of the stored law, bitwise identical to
    recomputing it.
    """
    global _vote_law_hits, _vote_law_misses
    probabilities = np.asarray(probabilities, dtype=float)
    if probabilities.ndim != 2 or probabilities.shape[1] < 2:
        raise ValueError(
            "probabilities must have shape (R, k + 1), got "
            f"{probabilities.shape}"
        )
    num_opinions = probabilities.shape[1] - 1
    sample_size = require_positive_int(sample_size, "sample_size")
    if not _vote_table_is_tractable(sample_size, num_opinions):
        raise ValueError(
            f"the maj() composition table for sample_size={sample_size}, "
            f"k={num_opinions} is intractable; check vote_table_is_tractable "
            "and use explicit observation sampling instead"
        )
    probabilities = np.ascontiguousarray(probabilities)
    key = None
    if probabilities.nbytes <= _VOTE_LAW_CACHE_MAX_BYTES:
        key = (num_opinions, sample_size, probabilities.tobytes())
        cached = _VOTE_LAW_CACHE.get(key)
        if cached is not None:
            _VOTE_LAW_CACHE.move_to_end(key)
            _vote_law_hits += 1
            return cached.copy()
        _vote_law_misses += 1
    exponents, coefficients, vote_law = _majority_vote_table(
        sample_size, num_opinions
    )
    composition_probabilities = coefficients * np.prod(
        probabilities[:, np.newaxis, :] ** exponents[np.newaxis, :, :],
        axis=2,
    )
    law = composition_probabilities @ vote_law
    if key is not None:
        _VOTE_LAW_CACHE[key] = law.copy()
        while len(_VOTE_LAW_CACHE) > _VOTE_LAW_CACHE_MAX_ENTRIES:
            _VOTE_LAW_CACHE.popitem(last=False)
    return law


@lru_cache(maxsize=None)
def _majority_vote_table(
    sample_size: int, num_opinions: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The exact ``maj()`` law of ``sample_size`` categorical observations.

    Enumerates every composition ``m = (m_0, m_1, …, m_k)`` of
    ``sample_size`` observations over {no opinion, opinion 1, …, opinion k}
    and tabulates

    * ``exponents`` — the ``(C, k+1)`` composition matrix,
    * ``coefficients`` — the multinomial coefficients
      ``sample_size! / prod(m_i!)``,
    * ``vote_law`` — the ``(C, k+1)`` conditional vote distribution given
      the composition: all mass on "no vote" when no opinion was observed,
      otherwise uniform over the most frequent observed opinions (the
      paper's uniform tie-break, folded in analytically).

    With observation probabilities ``q`` the vote pmf is then
    ``(coefficients * prod_i q_i^{m_i}) @ vote_law`` — the closed form the
    batched h-majority step samples from with one uniform per node.
    """
    width = num_opinions + 1
    # Stars-and-bars enumeration of all compositions of sample_size into
    # width non-negative parts.
    compositions = []
    for dividers in combinations(range(sample_size + width - 1), width - 1):
        previous = -1
        parts = []
        for divider in dividers + (sample_size + width - 1,):
            parts.append(divider - previous - 1)
            previous = divider
        compositions.append(parts)
    exponents = np.asarray(compositions, dtype=np.int64)
    factorials = np.asarray(
        [math.factorial(value) for value in range(sample_size + 1)],
        dtype=float,
    )
    coefficients = math.factorial(sample_size) / factorials[exponents].prod(axis=1)
    vote_law = np.zeros((exponents.shape[0], width), dtype=float)
    opinion_counts = exponents[:, 1:]
    row_max = opinion_counts.max(axis=1)
    for row, top in enumerate(row_max):
        if top == 0:
            vote_law[row, 0] = 1.0
        else:
            tied = np.nonzero(opinion_counts[row] == top)[0]
            vote_law[row, tied + 1] = 1.0 / tied.size
    return exponents, coefficients, vote_law


#: Composition budget of the *dense* vote law (opinionated observations
#: only, so ``C(sample_size + k - 1, k - 1)`` rows): large enough to cover
#: the Stage-2 final phase of million-node protocol runs (k = 3, L ~ 700 is
#: ~250k rows), small enough that the table stays a few dozen MB.
_DENSE_VOTE_LAW_MAX_COMPOSITIONS = 3_000_000

#: Memory guard of the dense table builder, which enumerates compositions on
#: a ``(sample_size + 1)**(k - 1)`` grid before filtering; beyond this the
#: transient grid would dominate the table itself.
_DENSE_VOTE_LAW_MAX_GRID = 2_000_000

#: Log-probability surrogate for zero-probability colors: finite (so the
#: composition matmul never produces ``0 * -inf = nan``) yet negative enough
#: that any composition using such a color underflows to exactly 0.
_DENSE_LOG_ZERO = -1.0e6


def dense_vote_law_is_tractable(sample_size: int, num_opinions: int) -> bool:
    """Can the dense (opinionated-only) ``maj()`` law be evaluated exactly?

    The dense path enumerates only the compositions of ``sample_size``
    observations over the ``k`` opinions — no "no opinion" cell — which is
    exactly the Stage-2 counts situation, where every message in a voter's
    sample carries an opinion.  Because one axis is dropped, it stays exact
    far beyond :func:`vote_table_is_tractable`'s factorial/composition
    budget (any ``sample_size`` for ``k = 2``, thousands for ``k = 3``);
    beyond these budgets callers fall back to per-voter observation
    sampling.
    """
    if sample_size < 1 or num_opinions < 1:
        return False
    return (
        math.comb(sample_size + num_opinions - 1, num_opinions - 1)
        <= _DENSE_VOTE_LAW_MAX_COMPOSITIONS
        and (sample_size + 1) ** (num_opinions - 1)
        <= _DENSE_VOTE_LAW_MAX_GRID
    )


@lru_cache(maxsize=32)
def _dense_majority_vote_table(
    sample_size: int, num_opinions: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Composition table of the dense ``maj()`` law (opinionated-only).

    Enumerates every composition ``m = (m_1, …, m_k)`` of ``sample_size``
    observations over the ``k`` opinions and tabulates

    * ``exponents`` — the ``(C, k)`` composition matrix (float64, ready for
      the log-space matmul),
    * ``log_coefficients`` — ``log(sample_size! / prod(m_i!))``, exact in
      log space for arbitrarily large ``sample_size``,
    * ``win_weight`` — the ``(C, k)`` conditional vote law given the
      composition: uniform over the most frequent opinions (the paper's
      tie-break, folded in analytically).  With ``sample_size >= 1`` some
      opinion always wins, so there is no "no vote" column.
    """
    width = num_opinions
    if width == 1:
        compositions = np.asarray([[sample_size]], dtype=np.int64)
    else:
        grid = np.indices((sample_size + 1,) * (width - 1))
        partial = grid.reshape(width - 1, -1).T
        totals = partial.sum(axis=1)
        keep = totals <= sample_size
        compositions = np.concatenate(
            [partial[keep], (sample_size - totals[keep])[:, np.newaxis]],
            axis=1,
        ).astype(np.int64, copy=False)
    log_factorial = np.concatenate(
        [[0.0], np.cumsum(np.log(np.arange(1, sample_size + 1)))]
    )
    log_coefficients = log_factorial[sample_size] - log_factorial[
        compositions
    ].sum(axis=1)
    row_max = compositions.max(axis=1)
    tied = compositions == row_max[:, np.newaxis]
    win_weight = tied / tied.sum(axis=1, keepdims=True)
    return compositions.astype(float), log_coefficients, win_weight


def dense_majority_vote_law(
    probabilities: np.ndarray, sample_size: int
) -> np.ndarray:
    """Exact ``maj()`` pmf over *opinionated* observations, for large samples.

    ``probabilities`` has shape ``(R, k)``: row ``r`` is trial ``r``'s color
    law of a voter's sample (every observation carries an opinion — the
    Stage-2 counts situation).  Returns the ``(R, k)`` vote pmf with the
    uniform tie-break folded in, evaluated in log space per trial from the
    cached composition table, then renormalized row-wise.  The result is the
    same distribution the bounded-chunk per-voter sampler draws from, at
    ``O(C)`` cost per trial instead of ``O(num_voters)`` per phase.  Rows
    summing to zero (empty histograms, never voted from) come back uniform.

    Raises ``ValueError`` when ``(sample_size, k)`` is beyond the dense
    budget — check :func:`dense_vote_law_is_tractable` first.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    if probabilities.ndim != 2 or probabilities.shape[1] < 1:
        raise ValueError(
            f"probabilities must have shape (R, k), got {probabilities.shape}"
        )
    num_opinions = probabilities.shape[1]
    sample_size = require_positive_int(sample_size, "sample_size")
    if not dense_vote_law_is_tractable(sample_size, num_opinions):
        raise ValueError(
            f"the dense maj() table for sample_size={sample_size}, "
            f"k={num_opinions} is intractable; check "
            "dense_vote_law_is_tractable and use per-voter observation "
            "sampling instead"
        )
    exponents, log_coefficients, win_weight = _dense_majority_vote_table(
        sample_size, num_opinions
    )
    law = np.empty(probabilities.shape, dtype=float)
    log_probabilities = np.full(num_opinions, _DENSE_LOG_ZERO)
    for row in range(probabilities.shape[0]):
        pvals = probabilities[row]
        positive = pvals > 0
        if not positive.any():
            law[row] = 1.0 / num_opinions
            continue
        log_probabilities.fill(_DENSE_LOG_ZERO)
        np.log(pvals, out=log_probabilities, where=positive)
        log_pmf = exponents @ log_probabilities
        log_pmf += log_coefficients
        pmf = np.exp(log_pmf, out=log_pmf)
        law[row] = pmf @ win_weight
    law = np.clip(law, 0.0, 1.0)
    row_sums = law.sum(axis=1, keepdims=True)
    return np.divide(
        law,
        row_sums,
        out=np.full(law.shape, 1.0 / num_opinions),
        where=row_sums > 0,
    )


def _observe_single_core(
    opinions: np.ndarray, noise: NoiseMatrix, rng: np.random.Generator
) -> np.ndarray:
    """One trial's single-observation votes, length ``n`` (0 = saw undecided).

    The one-observation case never needs the ``(n, k)`` counts matrix, so it
    samples one target per node and applies noise to the opinionated
    observations directly.
    """
    num_nodes = opinions.shape[0]
    targets = rng.choice(np.arange(num_nodes), size=num_nodes, replace=True)
    observed = opinions[targets]
    votes = np.zeros(num_nodes, dtype=np.int64)
    observers = np.nonzero(observed > 0)[0]
    if observers.size:
        votes[observers] = noise.apply_to_opinions(observed[observers], rng)
    return votes


class UniformPullModel:
    """Noisy uniform pull: each node observes ``sample_size`` random nodes.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``.
    noise:
        Noise matrix applied independently to every observed opinion.
    random_state:
        Randomness source.
    """

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        random_state: RandomState = None,
    ) -> None:
        self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        if not isinstance(noise, NoiseMatrix):
            raise TypeError(
                f"noise must be a NoiseMatrix, got {type(noise).__name__}"
            )
        self.noise = noise
        self._rng = as_generator(random_state)

    @property
    def num_opinions(self) -> int:
        """Number of opinions ``k``."""
        return self.noise.num_opinions

    def _validate_opinions(self, opinions: np.ndarray) -> np.ndarray:
        array = np.asarray(opinions, dtype=np.int64).ravel()
        if array.shape[0] != self.num_nodes:
            raise ValueError(
                f"opinions must have length {self.num_nodes}, got {array.shape[0]}"
            )
        if array.size and (array.min() < 0 or array.max() > self.num_opinions):
            raise ValueError(
                f"opinions must be in [0, {self.num_opinions}] (0 = undecided)"
            )
        return array

    def observe(
        self,
        opinions: np.ndarray,
        sample_size: int,
        *,
        include_undecided: bool = True,
    ) -> ReceivedMessages:
        """Each node observes ``sample_size`` uniformly random nodes' opinions.

        Observations are taken with replacement (as in the classical
        h-majority / 3-majority dynamics); undecided nodes contribute no
        opinion to the observation when drawn, so a node may end up observing
        fewer than ``sample_size`` opinions.  When ``include_undecided`` is
        ``False``, observation targets are restricted to opinionated nodes
        (if any exist).

        Returns
        -------
        ReceivedMessages
            Per-node counts of (noisy) observed opinions.
        """
        sample_size = require_positive_int(sample_size, "sample_size")
        opinions = self._validate_opinions(opinions)
        return ReceivedMessages(
            _observe_core(
                opinions, sample_size, include_undecided, self.noise, self._rng
            )
        )

    def observe_single(self, opinions: np.ndarray) -> np.ndarray:
        """Each node observes one random node; returns the noisy opinions.

        Convenience entry point for the one-observation baselines (voter,
        undecided-state, median rule); the result is a length-``n`` vector of
        observed opinions with 0 marking "observed an undecided node".
        """
        opinions = self._validate_opinions(opinions)
        return _observe_single_core(opinions, self.noise, self._rng)


class EnsemblePullModel:
    """Noisy uniform pull over ``R`` independent trials as one batch.

    Observations are sampled from the compound channel (uniform target
    composed with per-message noise): each of a node's ``sample_size``
    observations is an independent categorical draw over
    ``{no opinion, 1, …, k}`` whose probabilities come from the trial's
    current opinion distribution pushed through the noise matrix.  This is
    exactly the distribution of the per-message engine and needs only one
    uniform block per trial per observation step.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n`` per trial.
    noise:
        Noise matrix applied independently to every observed opinion.
    random_state:
        Default randomness: one shared source (fully batched draws) or a
        sequence of per-trial sources (trial ``r`` consumes draws from its
        own source only, making batched runs reproducible trial by trial).
        Every method also accepts an explicit ``random_state`` overriding
        the default.
    """

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        random_state: EnsembleRandomState = None,
    ) -> None:
        self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        if not isinstance(noise, NoiseMatrix):
            raise TypeError(
                f"noise must be a NoiseMatrix, got {type(noise).__name__}"
            )
        self.noise = noise
        self._random_state: EnsembleRandomState = (
            random_state
            if is_generator_sequence(random_state)
            else as_generator(random_state)
        )

    @property
    def num_opinions(self) -> int:
        """Number of opinions ``k``."""
        return self.noise.num_opinions

    def _validate_opinions(self, opinions: np.ndarray) -> np.ndarray:
        array = np.asarray(opinions, dtype=np.int64)
        if array.ndim != 2:
            raise ValueError(
                f"ensemble opinions must be an (R, n) matrix, got shape {array.shape}"
            )
        if array.shape[1] != self.num_nodes:
            raise ValueError(
                f"opinions must have {self.num_nodes} columns, got {array.shape[1]}"
            )
        if array.size and (array.min() < 0 or array.max() > self.num_opinions):
            raise ValueError(
                f"opinions must be in [0, {self.num_opinions}] (0 = undecided)"
            )
        return array

    def _randomness(self, random_state: EnsembleRandomState):
        return self._random_state if random_state is None else random_state

    def observation_probabilities(
        self, opinions: np.ndarray, *, include_undecided: bool = True
    ) -> np.ndarray:
        """Per-trial observation distribution, shape ``(R, k+1)``.

        Column 0 is the "no opinion observed" mass (the undecided fraction,
        or 0 when targets are restricted to opinionated nodes); columns
        ``1..k`` are the noisy opinion masses ``c P`` (Eq. (2) applied to the
        observation channel).
        """
        return self._probabilities(
            self._validate_opinions(opinions), include_undecided
        )

    def _probabilities(
        self, opinions: np.ndarray, include_undecided: bool
    ) -> np.ndarray:
        """:meth:`observation_probabilities` minus the (already-done) checks."""
        counts = opinion_counts_matrix(
            opinions, self.num_opinions, validate=False
        )
        if include_undecided:
            shares = counts / self.num_nodes
            none_mass = 1.0 - shares.sum(axis=1, keepdims=True)
        else:
            totals = counts.sum(axis=1, keepdims=True)
            has_support = totals > 0
            shares = np.divide(
                counts,
                totals,
                out=np.zeros(counts.shape, dtype=float),
                where=has_support,
            )
            # All-undecided trials fall back to "observe nothing" (pool
            # restriction is vacuous when nobody holds an opinion).
            none_mass = np.where(has_support, 0.0, 1.0)
        return np.concatenate([none_mass, shares @ self.noise.matrix], axis=1)

    @staticmethod
    def _cumulative(probabilities: np.ndarray) -> np.ndarray:
        """Row-wise CDF with the last column pinned to 1 (uniforms < 1)."""
        cumulative = probabilities.copy()
        np.cumsum(cumulative, axis=1, out=cumulative)
        cumulative[:, -1] = 1.0
        return cumulative

    @staticmethod
    def _categorical(cumulative: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
        """Inverse-CDF categories of ``uniforms`` (leading axis = trials)."""
        outcomes = np.zeros(uniforms.shape, dtype=np.int64)
        broadcast = (-1,) + (1,) * (uniforms.ndim - 1)
        for column in range(cumulative.shape[1] - 1):
            outcomes += uniforms >= cumulative[:, column].reshape(broadcast)
        return outcomes

    def _uniform_blocks(
        self, shape, random_state: EnsembleRandomState
    ) -> np.ndarray:
        """A ``(R, …)`` block of uniforms: one draw per trial, or one shared.

        In per-trial mode each trial's generator fills its own (contiguous)
        row — the single RNG interaction that trial makes for the step.
        """
        if is_generator_sequence(random_state):
            generators = as_trial_generators(random_state, shape[0])
            uniforms = np.empty(shape, dtype=np.float64)
            for trial, generator in enumerate(generators):
                generator.random(out=uniforms[trial])
            return uniforms
        return as_generator(random_state).random(shape)

    def observe(
        self,
        opinions: np.ndarray,
        sample_size: int,
        random_state: EnsembleRandomState = None,
        *,
        include_undecided: bool = True,
    ) -> EnsembleReceivedMessages:
        """Batched :meth:`UniformPullModel.observe` over an ``(R, n)`` matrix.

        Returns the per-trial, per-node counts of (noisy) observed opinions
        as an :class:`~repro.network.mailbox.EnsembleReceivedMessages`; the
        node-level counts are distributed exactly as the per-message engine's
        (independent ``Multinomial(sample_size, (1 - a, c P))`` draws per
        node).  One uniform block per trial, one batched inverse-CDF pass,
        one flattened bincount.
        """
        sample_size = require_positive_int(sample_size, "sample_size")
        opinions = self._validate_opinions(opinions)
        random_state = self._randomness(random_state)
        num_trials = opinions.shape[0]
        cumulative = self._cumulative(
            self._probabilities(opinions, include_undecided)
        )
        uniforms = self._uniform_blocks(
            (num_trials, self.num_nodes, sample_size), random_state
        )
        outcomes = self._categorical(cumulative, uniforms)
        width = self.num_opinions + 1
        offsets = (
            np.arange(num_trials * self.num_nodes, dtype=np.int64) * width
        ).reshape(num_trials, self.num_nodes, 1)
        flat = np.bincount(
            (offsets + outcomes).ravel(),
            minlength=num_trials * self.num_nodes * width,
        )
        counts = np.ascontiguousarray(
            flat.reshape(num_trials, self.num_nodes, width)[..., 1:],
            dtype=np.int64,
        )
        return EnsembleReceivedMessages(counts)

    def observe_single(
        self,
        opinions: np.ndarray,
        random_state: EnsembleRandomState = None,
    ) -> np.ndarray:
        """Batched :meth:`UniformPullModel.observe_single`; returns ``(R, n)``.

        Entry 0 marks "observed an undecided node"; one uniform per node per
        trial is the entire randomness budget of the step.
        """
        opinions = self._validate_opinions(opinions)
        random_state = self._randomness(random_state)
        cumulative = self._cumulative(self._probabilities(opinions, True))
        uniforms = self._uniform_blocks(
            (opinions.shape[0], self.num_nodes), random_state
        )
        return self._categorical(cumulative, uniforms)

    def observe_majority_votes(
        self,
        opinions: np.ndarray,
        sample_size: int,
        random_state: EnsembleRandomState = None,
        *,
        include_undecided: bool = True,
    ) -> np.ndarray:
        """Each node's ``maj()`` vote over ``sample_size`` observations, fused.

        The hot path of the batched h-majority dynamics: because a trial's
        nodes observe i.i.d. draws from the same compound channel, each
        node's majority vote (ties broken uniformly) is itself a categorical
        variable whose exact law follows from the per-trial observation
        probabilities via :func:`_majority_vote_table`.  Sampling that law
        directly costs one uniform per node — equivalent in distribution to
        :meth:`observe` followed by
        :meth:`~repro.network.mailbox.EnsembleReceivedMessages.majority_votes`
        (the test-suite checks the agreement), at a fraction of the work.

        Returns an ``(R, n)`` integer matrix; 0 means "observed no opinion,
        cast no vote".
        """
        sample_size = require_positive_int(sample_size, "sample_size")
        opinions = self._validate_opinions(opinions)
        random_state = self._randomness(random_state)
        if not _vote_table_is_tractable(sample_size, self.num_opinions):
            # Huge samples: enumerate observations instead of compositions
            # (same distribution, linear in sample_size like the sequential
            # engine).
            received = self.observe(
                opinions,
                sample_size,
                random_state,
                include_undecided=include_undecided,
            )
            return received.majority_votes(random_state)
        vote_pmf = majority_vote_law(
            self._probabilities(opinions, include_undecided), sample_size
        )
        cumulative = self._cumulative(vote_pmf)
        uniforms = self._uniform_blocks(
            (opinions.shape[0], self.num_nodes), random_state
        )
        return self._categorical(cumulative, uniforms)


# reprolint: counts-tier
class CountsPullModel:
    """Counts-native noisy uniform pull: sufficient-statistics observation.

    The third engine tier.  On the complete graph every node of a trial
    observes i.i.d. draws from the same compound channel (uniform target
    composed with per-message noise), so the number of nodes seeing each
    outcome is fully described by *grouped multinomial draws*: one
    multinomial per current-opinion group (undecided, opinion 1, …, opinion
    k), because only the node's *reaction* to an observation — never the
    observation law itself — depends on its own opinion.  A round therefore
    costs ``O(k^2)`` work per trial (``O(k^3)`` for the two-observation
    median rule), independent of ``n``, and is **exact in distribution**:
    the grouped counts have exactly the law of the per-node engines'
    aggregated outcomes.

    All inputs and outputs are ``(R, …)`` int64 count arrays; no method
    allocates an array with an ``n``-sized axis.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n`` per trial (a plain integer — only used as a
        scalar normalizer, so populations beyond ``2**31`` are fine).
    noise:
        Noise matrix applied independently to every observed opinion.
    random_state:
        Default randomness: one shared source or a per-trial sequence
        (trial ``r`` then consumes draws from its own source only).
    """

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        random_state: EnsembleRandomState = None,
    ) -> None:
        self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        if not isinstance(noise, NoiseMatrix):
            raise TypeError(
                f"noise must be a NoiseMatrix, got {type(noise).__name__}"
            )
        self.noise = noise
        self._random_state: EnsembleRandomState = (
            random_state
            if is_generator_sequence(random_state)
            else as_generator(random_state)
        )

    @property
    def num_opinions(self) -> int:
        """Number of opinions ``k``."""
        return self.noise.num_opinions

    def _randomness(self, random_state: EnsembleRandomState):
        return self._random_state if random_state is None else random_state

    def _validate_counts(self, counts: np.ndarray) -> np.ndarray:
        array = np.asarray(counts, dtype=np.int64)
        if array.ndim != 2 or array.shape[1] != self.num_opinions:
            raise ValueError(
                f"counts must be an (R, {self.num_opinions}) matrix, got "
                f"shape {array.shape}"
            )
        if array.size and array.min() < 0:
            raise ValueError("opinion counts must be non-negative")
        return array

    def group_sizes(self, counts: np.ndarray) -> np.ndarray:
        """Current-opinion group sizes, shape ``(R, k + 1)`` (column 0 =
        undecided nodes)."""
        counts = self._validate_counts(counts)
        undecided = np.int64(self.num_nodes) - counts.sum(
            axis=1, dtype=np.int64
        )
        if undecided.min() < 0:
            raise ValueError(
                "opinion counts exceed num_nodes in at least one trial"
            )
        return np.concatenate([undecided[:, np.newaxis], counts], axis=1)

    def observation_probabilities(
        self, counts: np.ndarray, *, include_undecided: bool = True
    ) -> np.ndarray:
        """Per-trial observation distribution, shape ``(R, k + 1)``.

        Identical arithmetic to
        :meth:`EnsemblePullModel.observation_probabilities`, but computed
        straight from the ``(R, k)`` count matrix — the per-node opinion
        matrix never exists.
        """
        counts = self._validate_counts(counts)
        if include_undecided:
            shares = counts / self.num_nodes
            none_mass = 1.0 - shares.sum(axis=1, keepdims=True)
        else:
            totals = counts.sum(axis=1, keepdims=True, dtype=np.int64)
            has_support = totals > 0
            shares = np.divide(
                counts,
                totals,
                out=np.zeros(counts.shape, dtype=float),
                where=has_support,
            )
            none_mass = np.where(has_support, 0.0, 1.0)
        # Clip the float-rounding dust: fully-opinionated trials can leave
        # none_mass at -1e-16, which numpy's multinomial rejects as pvals<0.
        return np.clip(
            np.concatenate([none_mass, shares @ self.noise.matrix], axis=1),
            0.0,
            1.0,
        )

    def _grouped_multinomial(
        self,
        sizes: np.ndarray,
        pmf: np.ndarray,
        random_state: EnsembleRandomState,
    ) -> np.ndarray:
        """Grouped draws: entry ``(r, g, o)`` counts the trial-``r`` nodes of
        group ``g`` whose (independent) draw from ``pmf[r]`` came out ``o``.

        ``sizes`` has shape ``(R, G)`` and ``pmf`` shape ``(R, O)``; the
        result has shape ``(R, G, O)`` and is int64.  In per-trial mode
        trial ``r`` consumes exactly ``G`` multinomial draws from its own
        generator (in group order) — the whole randomness budget of the
        step, which is what makes a counts batch bitwise identical to
        batch-size-1 counts runs with the same per-trial sources.
        """
        sizes = np.asarray(sizes, dtype=np.int64)
        num_trials, num_groups = sizes.shape
        if is_generator_sequence(random_state):
            generators = as_trial_generators(random_state, num_trials)
            drawn = np.empty(
                (num_trials, num_groups, pmf.shape[1]), dtype=np.int64
            )
            for trial, generator in enumerate(generators):
                drawn[trial] = generator.multinomial(
                    sizes[trial], pmf[trial]
                )
            return drawn
        rng = as_generator(random_state)
        return rng.multinomial(
            sizes, pmf[:, np.newaxis, :]
        ).astype(np.int64, copy=False)

    def observe_single_grouped(
        self,
        counts: np.ndarray,
        random_state: EnsembleRandomState = None,
    ) -> np.ndarray:
        """One observation per node, grouped by the observer's own opinion.

        Returns an ``(R, k + 1, k + 1)`` int64 tensor: entry ``(r, g, o)``
        is the number of trial-``r`` nodes currently in group ``g`` (0 =
        undecided) that observed outcome ``o`` (0 = saw an undecided node).
        Exactly the aggregated law of
        :meth:`EnsemblePullModel.observe_single`.
        """
        counts = self._validate_counts(counts)
        random_state = self._randomness(random_state)
        pmf = self.observation_probabilities(counts)
        return self._grouped_multinomial(
            self.group_sizes(counts), pmf, random_state
        )

    def observe_pair_grouped(
        self,
        counts: np.ndarray,
        random_state: EnsembleRandomState = None,
    ) -> np.ndarray:
        """Two i.i.d. observations per node, grouped by the observer's opinion.

        Returns an ``(R, k + 1, (k + 1)**2)`` int64 tensor whose last axis
        indexes the ordered pair ``first * (k + 1) + second``.  This backs
        the counts-native median rule, whose update needs the joint of both
        observations and the node's own value.
        """
        counts = self._validate_counts(counts)
        random_state = self._randomness(random_state)
        pmf = self.observation_probabilities(counts)
        pair_pmf = (pmf[:, :, np.newaxis] * pmf[:, np.newaxis, :]).reshape(
            counts.shape[0], -1
        )
        return self._grouped_multinomial(
            self.group_sizes(counts), pair_pmf, random_state
        )

    def observe_majority_grouped(
        self,
        counts: np.ndarray,
        sample_size: int,
        random_state: EnsembleRandomState = None,
    ) -> np.ndarray:
        """Grouped ``maj()`` votes over ``sample_size`` observations per node.

        Returns an ``(R, k + 1, k + 1)`` int64 tensor: entry ``(r, g, v)``
        is the number of trial-``r`` group-``g`` nodes whose majority vote
        came out ``v`` (0 = observed no opinion, cast no vote).  The vote
        law is the exact closed form of :func:`majority_vote_law`; for
        ``(sample_size, k)`` beyond the composition-table budget the counts
        engine has no per-message fallback, so a ``ValueError`` is raised —
        use the batched engine for huge per-round sample sizes.
        """
        sample_size = require_positive_int(sample_size, "sample_size")
        counts = self._validate_counts(counts)
        random_state = self._randomness(random_state)
        vote_pmf = majority_vote_law(
            self.observation_probabilities(counts), sample_size
        )
        return self._grouped_multinomial(
            self.group_sizes(counts), vote_pmf, random_state
        )
