"""A noisy uniform *pull* substrate for the baseline dynamics.

The baseline protocols the paper's related-work section compares against
(3-majority dynamics, h-majority, undecided-state dynamics, the median rule)
are classically stated in a pull fashion: in each round every node samples
the opinion of a few nodes chosen uniformly at random and updates from what
it observed.  To compare those dynamics with the paper's protocol *under the
same noise assumption*, this engine lets every observation be corrupted by
the same noise matrix used by the push model.

The engine works on a full opinion vector (0 = undecided) and reports, per
round, the matrix of observed (noisy) opinion counts per node.
"""

from __future__ import annotations

import numpy as np

from repro.network.mailbox import ReceivedMessages
from repro.noise.matrix import NoiseMatrix
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import require_positive_int

__all__ = ["UniformPullModel"]


class UniformPullModel:
    """Noisy uniform pull: each node observes ``sample_size`` random nodes.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``.
    noise:
        Noise matrix applied independently to every observed opinion.
    random_state:
        Randomness source.
    """

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        random_state: RandomState = None,
    ) -> None:
        self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        if not isinstance(noise, NoiseMatrix):
            raise TypeError(
                f"noise must be a NoiseMatrix, got {type(noise).__name__}"
            )
        self.noise = noise
        self._rng = as_generator(random_state)

    @property
    def num_opinions(self) -> int:
        """Number of opinions ``k``."""
        return self.noise.num_opinions

    def _validate_opinions(self, opinions: np.ndarray) -> np.ndarray:
        array = np.asarray(opinions, dtype=np.int64).ravel()
        if array.shape[0] != self.num_nodes:
            raise ValueError(
                f"opinions must have length {self.num_nodes}, got {array.shape[0]}"
            )
        if array.size and (array.min() < 0 or array.max() > self.num_opinions):
            raise ValueError(
                f"opinions must be in [0, {self.num_opinions}] (0 = undecided)"
            )
        return array

    def observe(
        self,
        opinions: np.ndarray,
        sample_size: int,
        *,
        include_undecided: bool = True,
    ) -> ReceivedMessages:
        """Each node observes ``sample_size`` uniformly random nodes' opinions.

        Observations are taken with replacement (as in the classical
        h-majority / 3-majority dynamics); undecided nodes contribute no
        opinion to the observation when drawn, so a node may end up observing
        fewer than ``sample_size`` opinions.  When ``include_undecided`` is
        ``False``, observation targets are restricted to opinionated nodes
        (if any exist).

        Returns
        -------
        ReceivedMessages
            Per-node counts of (noisy) observed opinions.
        """
        sample_size = require_positive_int(sample_size, "sample_size")
        opinions = self._validate_opinions(opinions)
        counts = np.zeros((self.num_nodes, self.num_opinions), dtype=np.int64)
        if include_undecided:
            candidate_pool = np.arange(self.num_nodes)
        else:
            candidate_pool = np.nonzero(opinions > 0)[0]
            if candidate_pool.size == 0:
                candidate_pool = np.arange(self.num_nodes)
        targets = self._rng.choice(
            candidate_pool, size=(self.num_nodes, sample_size), replace=True
        )
        observed = opinions[targets]
        observers, slots = np.nonzero(observed > 0)
        if observers.size == 0:
            return ReceivedMessages(counts)
        true_opinions = observed[observers, slots]
        noisy_opinions = self.noise.apply_to_opinions(true_opinions, self._rng)
        np.add.at(counts, (observers, noisy_opinions - 1), 1)
        return ReceivedMessages(counts)

    def observe_single(self, opinions: np.ndarray) -> np.ndarray:
        """Each node observes one random node; returns the noisy opinions.

        Convenience wrapper for the voter-model baseline; the result is a
        length-``n`` vector of observed opinions with 0 marking "observed an
        undecided node".
        """
        received = self.observe(opinions, sample_size=1)
        votes = np.zeros(self.num_nodes, dtype=np.int64)
        observers, opinion_index = np.nonzero(received.counts)
        votes[observers] = opinion_index + 1
        return votes
