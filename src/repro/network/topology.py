"""Noisy push on arbitrary graph topologies (an extension beyond the paper).

The paper analyses the complete graph: every push goes to a node chosen
uniformly at random from the whole population.  The surrounding literature
([13], [1]) studies majority dynamics on bounded-degree and random graphs,
and a natural question for a user of this library is how the two-stage
protocol degrades when the communication topology is sparse.

:class:`GraphPushModel` answers that experimentally: each opinionated node
pushes its opinion to a *neighbour* chosen uniformly at random in a supplied
:mod:`networkx` graph, with the same per-message noise matrix as the
complete-graph engines.  It plugs into the Stage-1/Stage-2 executors through
the population-aware delivery interface (see :mod:`repro.network.delivery`),
so the unchanged protocol can be run on rings, grids, random regular graphs,
Erdős–Rényi graphs, etc.  Experiment E14 sweeps a few standard topologies.

This module is an *extension*: none of the paper's theorems cover it, and the
experiments document where the complete-graph guarantees stop applying
(notably Stage 1's growth rate and the independence assumptions behind
Stage 2's concentration).
"""

from __future__ import annotations


import networkx as nx
import numpy as np

from repro.network.mailbox import ReceivedMessages
from repro.noise.matrix import NoiseMatrix
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import require_positive_int

__all__ = ["GraphPushModel", "standard_topology"]


def standard_topology(
    name: str, num_nodes: int, random_state: RandomState = None, **kwargs
) -> nx.Graph:
    """Build one of a few named test topologies.

    Supported names: ``"complete"``, ``"cycle"``, ``"grid"`` (2-D torus as
    close to square as possible), ``"random_regular"`` (degree ``degree``,
    default 8), ``"erdos_renyi"`` (edge probability ``probability``, default
    ``4 ln n / n``), ``"star"``.
    """
    num_nodes = require_positive_int(num_nodes, "num_nodes")
    rng = as_generator(random_state)
    seed = int(rng.integers(0, 2**31 - 1))
    if name == "complete":
        return nx.complete_graph(num_nodes)
    if name == "cycle":
        return nx.cycle_graph(num_nodes)
    if name == "grid":
        side = int(np.floor(np.sqrt(num_nodes)))
        graph = nx.grid_2d_graph(side, max(1, num_nodes // side), periodic=True)
        return nx.convert_node_labels_to_integers(graph)
    if name == "random_regular":
        degree = int(kwargs.get("degree", 8))
        if degree >= num_nodes:
            return nx.complete_graph(num_nodes)
        if (degree * num_nodes) % 2 == 1:
            degree += 1
        return nx.random_regular_graph(degree, num_nodes, seed=seed)
    if name == "erdos_renyi":
        probability = float(
            kwargs.get("probability", 4.0 * np.log(max(num_nodes, 2)) / num_nodes)
        )
        return nx.gnp_random_graph(num_nodes, min(1.0, probability), seed=seed)
    if name == "star":
        return nx.star_graph(num_nodes - 1)
    raise ValueError(
        "unknown topology name "
        f"{name!r}; expected one of complete, cycle, grid, random_regular, "
        "erdos_renyi, star"
    )


class GraphPushModel:
    """Noisy uniform push restricted to the edges of a graph.

    Parameters
    ----------
    graph:
        An undirected :class:`networkx.Graph` on nodes ``0 .. n-1``.  Isolated
        nodes are allowed (they can receive nothing and their pushes are
        dropped).
    noise:
        The noise matrix applied to every message in transit.
    random_state:
        Randomness source.
    """

    def __init__(
        self,
        graph: nx.Graph,
        noise: NoiseMatrix,
        random_state: RandomState = None,
    ) -> None:
        if not isinstance(noise, NoiseMatrix):
            raise TypeError(
                f"noise must be a NoiseMatrix, got {type(noise).__name__}"
            )
        self.num_nodes = int(graph.number_of_nodes())
        if self.num_nodes < 1:
            raise ValueError("the graph must contain at least one node")
        if sorted(graph.nodes()) != list(range(self.num_nodes)):
            graph = nx.convert_node_labels_to_integers(graph)
        self.graph = graph
        self.noise = noise
        self._rng = as_generator(random_state)
        # Flattened adjacency (CSR-style) for vectorized neighbour sampling.
        neighbor_lists = [list(graph.neighbors(node)) for node in range(self.num_nodes)]
        self._degrees = np.array([len(adj) for adj in neighbor_lists], dtype=np.int64)
        self._offsets = np.concatenate(([0], np.cumsum(self._degrees)))
        flat = [node for adj in neighbor_lists for node in adj]
        self._flat_neighbors = np.asarray(flat, dtype=np.int64)

    @property
    def num_opinions(self) -> int:
        """Number of opinions ``k`` understood by the channel."""
        return self.noise.num_opinions

    def degrees(self) -> np.ndarray:
        """Node degrees (useful for diagnostics in experiments)."""
        return self._degrees.copy()

    def _validate_population(self, opinions: np.ndarray) -> np.ndarray:
        array = np.asarray(opinions, dtype=np.int64).ravel()
        if array.shape[0] != self.num_nodes:
            raise ValueError(
                f"opinions must have length {self.num_nodes}, got {array.shape[0]}"
            )
        if array.size and (array.min() < 0 or array.max() > self.num_opinions):
            raise ValueError(
                f"opinions must lie in [0, {self.num_opinions}] (0 = undecided)"
            )
        return array

    def run_phase_from_population(
        self, opinions: np.ndarray, num_rounds: int
    ) -> ReceivedMessages:
        """Simulate ``num_rounds`` rounds of push along graph edges.

        In every round each opinionated node with at least one neighbour
        pushes its (noise-corrupted) opinion to a neighbour chosen uniformly
        at random.
        """
        num_rounds = require_positive_int(num_rounds, "num_rounds")
        opinions = self._validate_population(opinions)
        counts = np.zeros((self.num_nodes, self.num_opinions), dtype=np.int64)
        senders = np.nonzero((opinions > 0) & (self._degrees > 0))[0]
        if senders.size == 0:
            return ReceivedMessages(counts)
        sender_opinions = opinions[senders]
        sender_degrees = self._degrees[senders]
        sender_offsets = self._offsets[senders]
        for _ in range(num_rounds):
            delivered = self.noise.apply_to_opinions(sender_opinions, self._rng)
            picks = (self._rng.random(senders.size) * sender_degrees).astype(np.int64)
            targets = self._flat_neighbors[sender_offsets + picks]
            np.add.at(counts, (targets, delivered - 1), 1)
        return ReceivedMessages(counts)

    def run_round_from_population(self, opinions: np.ndarray) -> ReceivedMessages:
        """A single round of graph-restricted push."""
        return self.run_phase_from_population(opinions, 1)
