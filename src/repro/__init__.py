"""repro — Noisy Rumor Spreading and Plurality Consensus.

A reproduction of Fraigniaud & Natale, *Noisy Rumor Spreading and Plurality
Consensus*, PODC 2016 (arXiv:1507.05796).

The package provides:

* the unified simulation facade — one declarative :class:`~repro.sim.
  Scenario`, one :func:`~repro.sim.simulate` call, one
  :class:`~repro.sim.SimulationResult` across all three engine tiers
  (:mod:`repro.sim`),
* the noisy uniform push model and its analytical surrogates
  (:mod:`repro.network`),
* noise matrices and the (epsilon, delta)-majority-preserving theory
  (:mod:`repro.noise`),
* the paper's two-stage rumor-spreading / plurality-consensus protocol
  (:mod:`repro.core`),
* baseline opinion dynamics from the related literature
  (:mod:`repro.dynamics`),
* the analytical toolbox backing the proofs (:mod:`repro.analysis`),
* the experiment harness that regenerates every quantitative statement of
  the paper (:mod:`repro.experiments`).

Quickstart
----------
Describe what to simulate, let the facade pick (or be told) the engine:

>>> from repro import Scenario, simulate
>>> result = simulate(Scenario(
...     workload="rumor", num_nodes=600, num_opinions=4, epsilon=0.3,
...     correct_opinion=2, engine="batched", num_trials=8, seed=0,
... ))
>>> bool(result.successes.all())
True
>>> result.engine
'batched'

The same call scales to millions of nodes on the counts tier — the
``(R, k)`` sufficient-statistics engine whose per-round cost is
independent of ``n``:

>>> giant = simulate(Scenario(
...     workload="rumor", num_nodes=1_000_000, num_opinions=4,
...     epsilon=0.3, engine="counts", num_trials=4, seed=0,
... ))
>>> giant.num_nodes
1000000

Baseline opinion dynamics go through the identical entry point:

>>> dyn = simulate(Scenario(
...     workload="dynamics", rule="3-majority", num_nodes=500,
...     num_opinions=3, epsilon=0.66, bias=0.3, engine="batched",
...     num_trials=4, seed=0,
... ))
>>> bool(dyn.converged.all())
True
"""

from repro.core.memory import memory_bound_bits, protocol_memory_usage
from repro.core.plurality import PluralityConsensus, PluralityInstance
from repro.core.protocol import (
    CountsProtocol,
    EnsembleProtocol,
    EnsembleResult,
    ProtocolResult,
    TwoStageProtocol,
    make_engine,
)
from repro.core.rumor import RumorSpreading, RumorSpreadingInstance
from repro.core.schedule import ProtocolSchedule, Stage1Schedule, Stage2Schedule
from repro.core.state import (
    CountsState,
    EnsembleCountsState,
    EnsembleState,
    PopulationState,
)
from repro.dynamics import (
    DYNAMICS_RULES,
    CountsDynamicsResult,
    EnsembleCountsDynamics,
    EnsembleDynamicsResult,
    EnsembleOpinionDynamics,
    make_counts_dynamics,
    make_dynamics,
    make_ensemble_dynamics,
)
from repro.network.balls_bins import BallsIntoBinsProcess, CountsDeliveryModel
from repro.network.mailbox import EnsembleReceivedMessages, ReceivedMessages
from repro.network.poisson_model import PoissonizedProcess
from repro.network.pull_model import (
    CountsPullModel,
    EnsemblePullModel,
    UniformPullModel,
)
from repro.network.push_model import UniformPushModel
from repro.network.topology import GraphPushModel, standard_topology
from repro.noise.estimation import (
    calibrate_epsilon,
    collect_channel_observations,
    estimate_noise_matrix,
    estimation_error,
)
from repro.noise.families import (
    binary_flip_matrix,
    cyclic_shift_matrix,
    diagonally_dominant_counterexample,
    identity_matrix,
    near_uniform_matrix,
    reset_matrix,
    uniform_noise_matrix,
)
from repro.noise.majority_preserving import (
    MajorityPreservationReport,
    check_majority_preserving,
    epsilon_for_delta,
    sufficient_condition_epsilon,
)
from repro.noise.matrix import NoiseMatrix
from repro.sim import Scenario, SimulationResult, simulate

# The version is sourced from the installed package metadata; a source
# checkout on PYTHONPATH (not pip-installed) falls back to the pyproject
# version it tracks.
try:  # pragma: no cover - depends on the install mode
    from importlib.metadata import PackageNotFoundError, version as _version

    __version__ = _version("repro-fraigniaud-natale-2016")
except PackageNotFoundError:  # pragma: no cover - source checkout
    __version__ = "1.0.0"

__all__ = [
    "BallsIntoBinsProcess",
    "CountsDeliveryModel",
    "CountsDynamicsResult",
    "CountsProtocol",
    "CountsPullModel",
    "CountsState",
    "DYNAMICS_RULES",
    "EnsembleCountsDynamics",
    "EnsembleCountsState",
    "EnsembleDynamicsResult",
    "EnsembleOpinionDynamics",
    "EnsembleProtocol",
    "EnsemblePullModel",
    "EnsembleReceivedMessages",
    "EnsembleResult",
    "EnsembleState",
    "GraphPushModel",
    "MajorityPreservationReport",
    "NoiseMatrix",
    "PluralityConsensus",
    "PluralityInstance",
    "PoissonizedProcess",
    "PopulationState",
    "ProtocolResult",
    "ProtocolSchedule",
    "ReceivedMessages",
    "RumorSpreading",
    "RumorSpreadingInstance",
    "Scenario",
    "SimulationResult",
    "Stage1Schedule",
    "Stage2Schedule",
    "TwoStageProtocol",
    "UniformPullModel",
    "UniformPushModel",
    "__version__",
    "binary_flip_matrix",
    "calibrate_epsilon",
    "check_majority_preserving",
    "collect_channel_observations",
    "cyclic_shift_matrix",
    "diagonally_dominant_counterexample",
    "epsilon_for_delta",
    "estimate_noise_matrix",
    "estimation_error",
    "identity_matrix",
    "make_counts_dynamics",
    "make_dynamics",
    "make_engine",
    "make_ensemble_dynamics",
    "memory_bound_bits",
    "near_uniform_matrix",
    "protocol_memory_usage",
    "reset_matrix",
    "simulate",
    "standard_topology",
    "sufficient_condition_epsilon",
    "uniform_noise_matrix",
]
