"""Declarative fault models: which nodes misbehave, and how.

A :class:`FaultModel` is a serializable axis on ``Scenario`` describing a
population of faulty nodes.  Four adversary families are supported:

``crash``
    Crash/silent nodes: transmit normally until round ``crash_round``, then
    stop forever.  ``crash_round = 0`` means silent from the start.
``omission``
    Omission faults: every message a faulty node would send is independently
    dropped with probability ``drop_rate``.
``liar``
    Random-liar Byzantine: every message carries a uniformly random opinion,
    regardless of the node's own state.
``adaptive``
    Adaptive plurality-targeting Byzantine: every message carries the current
    *runner-up* opinion among honest senders (second-largest support), trying
    to flip the plurality.

The first three families are *oblivious*: their emissions depend only on
counts of the honest population (or on nothing at all), so the counts-tier
sufficient statistics survive.  The adaptive family conditions on the full
current configuration and is only exact at the per-node tiers; the engine
resolver degrades ``counts`` to ``batched`` for it (see ``repro.sim.facade``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

__all__ = ["FAULT_KINDS", "OBLIVIOUS_FAULT_KINDS", "FaultModel"]

FAULT_KINDS = ("crash", "omission", "liar", "adaptive")

#: Families whose emissions are a function of honest-population counts only;
#: these admit exact counts-tier sufficient statistics.
OBLIVIOUS_FAULT_KINDS = ("crash", "omission", "liar")


@dataclass(frozen=True)
class FaultModel:
    """A serializable description of one faulty sub-population.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    fraction:
        Fraction ``f`` of the ``num_nodes`` population that is faulty,
        strictly between 0 and 1.  The faulty head-count is
        ``round(f * num_nodes)`` and must leave at least one honest node.
    crash_round:
        (``crash`` only) Global round index after which faulty nodes fall
        silent; rounds ``0 .. crash_round - 1`` transmit normally.  The
        default 0 means silent from the start.
    drop_rate:
        (``omission`` only) Independent per-message drop probability in
        ``(0, 1]``.  Default 0.5.
    allow_degradation:
        When the requested engine tier cannot represent this adversary
        exactly (``counts`` + ``adaptive``), degrade to the batched tier and
        record ``provenance["engine_degraded_reason"]`` instead of raising.
        Default True.
    """

    kind: str
    fraction: float
    crash_round: int = 0
    drop_rate: float = 0.5
    allow_degradation: bool = True

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"faults.kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        fraction = self.fraction
        if not isinstance(fraction, (int, float)) or isinstance(fraction, bool):
            raise ValueError(
                f"faults.fraction must be a number in (0, 1), got {fraction!r}"
            )
        if not 0.0 < float(fraction) < 1.0:
            raise ValueError(
                "faults.fraction must be strictly between 0 and 1, got "
                f"{fraction!r}"
            )
        if not isinstance(self.crash_round, int) or isinstance(self.crash_round, bool):
            raise ValueError(
                f"faults.crash_round must be an integer, got {self.crash_round!r}"
            )
        if self.crash_round < 0:
            raise ValueError(
                f"faults.crash_round must be non-negative, got {self.crash_round}"
            )
        if self.kind != "crash" and self.crash_round != 0:
            raise ValueError(
                "faults.crash_round only applies to kind='crash', got "
                f"crash_round={self.crash_round} with kind={self.kind!r}"
            )
        drop = self.drop_rate
        if not isinstance(drop, (int, float)) or isinstance(drop, bool):
            raise ValueError(
                f"faults.drop_rate must be a number in (0, 1], got {drop!r}"
            )
        if not 0.0 < float(drop) <= 1.0:
            raise ValueError(
                f"faults.drop_rate must be in (0, 1], got {drop!r}"
            )
        if self.kind != "omission" and float(drop) != 0.5:
            raise ValueError(
                "faults.drop_rate only applies to kind='omission', got "
                f"drop_rate={drop} with kind={self.kind!r}"
            )
        if not isinstance(self.allow_degradation, bool):
            raise ValueError(
                "faults.allow_degradation must be a bool, got "
                f"{self.allow_degradation!r}"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def is_oblivious(self) -> bool:
        """Whether the counts tier is exact for this adversary."""
        return self.kind in OBLIVIOUS_FAULT_KINDS

    def faulty_count(self, num_nodes: int) -> int:
        """Head-count ``m = round(f * n)`` of faulty nodes."""
        if num_nodes < 2:
            raise ValueError(
                f"faults require num_nodes >= 2, got {num_nodes}"
            )
        count = int(round(self.fraction * num_nodes))
        if count >= num_nodes:
            raise ValueError(
                f"faults.fraction={self.fraction} leaves no honest node for "
                f"num_nodes={num_nodes}; lower the fraction"
            )
        return count

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "fraction": float(self.fraction),
            "crash_round": int(self.crash_round),
            "drop_rate": float(self.drop_rate),
            "allow_degradation": bool(self.allow_degradation),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultModel":
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"faults payload must be a mapping, got {type(payload).__name__}"
            )
        known = {"kind", "fraction", "crash_round", "drop_rate", "allow_degradation"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown FaultModel fields: {unknown}; known fields are "
                f"{sorted(known)}"
            )
        if "kind" not in payload or "fraction" not in payload:
            raise ValueError("FaultModel payload requires 'kind' and 'fraction'")
        kwargs: Dict[str, Any] = {
            "kind": payload["kind"],
            "fraction": payload["fraction"],
        }
        if "crash_round" in payload:
            kwargs["crash_round"] = payload["crash_round"]
        if "drop_rate" in payload:
            kwargs["drop_rate"] = payload["drop_rate"]
        if "allow_degradation" in payload:
            kwargs["allow_degradation"] = payload["allow_degradation"]
        return cls(**kwargs)


def coerce_fault_model(value: Any) -> Optional[FaultModel]:
    """Accept ``None``, a :class:`FaultModel`, or a mapping payload."""
    if value is None or isinstance(value, FaultModel):
        return value
    if isinstance(value, Mapping):
        return FaultModel.from_dict(value)
    raise ValueError(
        "faults must be a FaultModel, a mapping, or None, got "
        f"{type(value).__name__}"
    )
