"""Fault-injection subsystem: declarative adversaries for the protocol engines.

See :mod:`repro.faults.model` for the adversary families and
``docs/faults.md`` for which families admit counts-tier sufficient
statistics and how the engine resolver degrades the rest.
"""

from repro.faults.delivery import FaultedCountsDeliveryModel, FaultedDeliveryEngine
from repro.faults.injection import (
    FaultedPhaseSampler,
    largest_remainder_split,
    runner_up_opinions,
    split_faulty_population,
)
from repro.faults.model import FAULT_KINDS, OBLIVIOUS_FAULT_KINDS, FaultModel

__all__ = [
    "FAULT_KINDS",
    "OBLIVIOUS_FAULT_KINDS",
    "FaultModel",
    "FaultedCountsDeliveryModel",
    "FaultedDeliveryEngine",
    "FaultedPhaseSampler",
    "largest_remainder_split",
    "runner_up_opinions",
    "split_faulty_population",
]
