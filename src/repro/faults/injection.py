"""Phase-level emission sampling for faulty sub-populations.

The engines never materialize faulty nodes.  By Claim 1 a phase is fully
described by its message multiset, so each adversary family reduces to a
per-phase *ball delta*: extra (or, for crash after the deadline, zero)
messages appended to the honest senders' histogram before the noisy
recolor-and-throw step.  The honest state machine is untouched; faulty
opinions are frozen at their initial values (crash/omission nodes never
re-adopt — they are adversarial, not merely slow):

* ``crash``    — ``faulty_histogram * rounds_active`` balls, deterministic,
  where ``rounds_active`` counts the phase rounds before ``crash_round``.
* ``omission`` — ``Binomial(faulty_histogram * L, 1 - drop_rate)`` per color.
* ``liar``     — ``Multinomial(m * L, uniform over k)``: all ``m`` liars
  emit every round, even opinion-less ones (rumor workload).
* ``adaptive`` — ``m * L`` balls of the honest senders' runner-up color
  (second-largest support, ties to the lowest opinion index).

Faulty balls are added *before* the noise recolor, so channel noise acts on
adversarial messages exactly as on honest ones.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.faults.model import FaultModel
from repro.utils.rng import (
    EnsembleRandomState,
    as_generator,
    as_trial_generators,
    is_generator_sequence,
)

__all__ = [
    "FaultedPhaseSampler",
    "largest_remainder_split",
    "runner_up_opinions",
]


def largest_remainder_split(counts: np.ndarray, quota: int) -> np.ndarray:
    """Deterministically take ``quota`` items proportionally from ``counts``.

    Returns an integer vector ``taken`` with ``taken <= counts`` elementwise
    and ``taken.sum() == quota``, allocated by the largest-remainder method
    (ties to the lowest index).  Used to decide which initial opinions the
    faulty sub-population freezes.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if quota < 0 or quota > total:
        raise ValueError(
            f"quota must be in [0, {total}], got {quota}"
        )
    if quota == 0:
        return np.zeros_like(counts)
    exact = counts * (quota / total)
    taken = np.floor(exact).astype(np.int64)
    remainder = quota - int(taken.sum())
    if remainder:
        # Largest fractional part first, ties to the lowest index; skip
        # entries already at their cap.  One pass over a stable ordering
        # may not place everything once caps bind, so loop until done.
        order = np.argsort(-(exact - taken), kind="stable")
        while remainder:
            placed = False
            for index in order:
                if taken[index] < counts[index]:
                    taken[index] += 1
                    remainder -= 1
                    placed = True
                    if not remainder:
                        break
            if not placed:  # pragma: no cover - guarded by the quota check
                raise RuntimeError("largest_remainder_split failed to place quota")
    return taken


def runner_up_opinions(honest_histograms: np.ndarray) -> np.ndarray:
    """Per-trial runner-up opinion index (0-based) of each histogram row.

    The adaptive adversary targets the second-largest honest support; ties
    break toward the lowest opinion index.  With a single opinion (k = 1)
    the only opinion is returned.
    """
    histograms = np.asarray(honest_histograms, dtype=np.int64)
    if histograms.shape[1] == 1:
        return np.zeros(histograms.shape[0], dtype=np.int64)
    order = np.argsort(-histograms, axis=1, kind="stable")
    return order[:, 1].astype(np.int64)


class FaultedPhaseSampler:
    """Samples each phase's faulty ball delta, tracking the global round.

    One sampler instance spans a whole protocol run (both stages): the
    internal round counter advances by ``num_rounds`` per call, which is
    what gives ``crash_round`` its meaning.  Batched runs share a single
    sampler across all trials (the phase schedule is common); sequential
    runs build one per trial.
    """

    def __init__(
        self,
        model: FaultModel,
        num_faulty: int,
        faulty_histogram: np.ndarray,
        num_opinions: int,
    ) -> None:
        if not isinstance(model, FaultModel):
            raise TypeError(
                f"model must be a FaultModel, got {type(model).__name__}"
            )
        self.model = model
        self.num_faulty = int(num_faulty)
        self.num_opinions = int(num_opinions)
        histogram = np.asarray(faulty_histogram, dtype=np.int64)
        if histogram.shape != (self.num_opinions,):
            raise ValueError(
                f"faulty_histogram must have shape ({self.num_opinions},), "
                f"got {histogram.shape}"
            )
        if int(histogram.sum()) > self.num_faulty:
            raise ValueError(
                "faulty_histogram sums past num_faulty: "
                f"{int(histogram.sum())} > {self.num_faulty}"
            )
        self.faulty_histogram = histogram
        self.rounds_done = 0

    def phase_ball_deltas(
        self,
        honest_histograms: np.ndarray,
        num_rounds: int,
        random_state: EnsembleRandomState = None,
    ) -> np.ndarray:
        """Faulty balls to append for one phase, shape ``(R, k)``.

        ``honest_histograms`` is the ``(R, k)`` honest *sender* histogram
        (one ball per sender per round before scaling by ``num_rounds``);
        only the adaptive family reads it.  Advances the round counter.
        """
        honest = np.asarray(honest_histograms, dtype=np.int64)
        if honest.ndim != 2 or honest.shape[1] != self.num_opinions:
            raise ValueError(
                f"honest_histograms must have shape (R, {self.num_opinions}), "
                f"got {honest.shape}"
            )
        num_trials = honest.shape[0]
        num_rounds = int(num_rounds)
        deltas = np.zeros((num_trials, self.num_opinions), dtype=np.int64)
        kind = self.model.kind
        if kind == "crash":
            active = int(
                np.clip(self.model.crash_round - self.rounds_done, 0, num_rounds)
            )
            if active:
                deltas[:] = self.faulty_histogram * np.int64(active)
        elif kind == "omission":
            sent = self.faulty_histogram * np.int64(num_rounds)
            keep = 1.0 - self.model.drop_rate
            if sent.any():
                if is_generator_sequence(random_state):
                    generators = as_trial_generators(random_state, num_trials)
                    for trial, generator in enumerate(generators):
                        deltas[trial] = generator.binomial(sent, keep)
                else:
                    rng = as_generator(random_state)
                    deltas[:] = rng.binomial(
                        np.broadcast_to(sent, deltas.shape), keep
                    )
        elif kind == "liar":
            balls = self.num_faulty * num_rounds
            if balls:
                uniform = np.full(self.num_opinions, 1.0 / self.num_opinions)
                if is_generator_sequence(random_state):
                    generators = as_trial_generators(random_state, num_trials)
                    for trial, generator in enumerate(generators):
                        deltas[trial] = generator.multinomial(balls, uniform)
                else:
                    rng = as_generator(random_state)
                    deltas[:] = rng.multinomial(balls, uniform, size=num_trials)
        elif kind == "adaptive":
            balls = self.num_faulty * num_rounds
            if balls:
                targets = runner_up_opinions(honest)
                deltas[np.arange(num_trials), targets] = balls
        else:  # pragma: no cover - FaultModel.validate guards this
            raise ValueError(f"unknown fault kind {kind!r}")
        self.rounds_done += num_rounds
        return deltas


def split_faulty_population(
    counts: np.ndarray,
    num_nodes: int,
    num_faulty: int,
    protected_opinion: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Split an initial counts vector into honest and frozen-faulty parts.

    ``counts`` is the opinionated histogram (length ``k``); undecided mass
    is ``num_nodes - counts.sum()``.  The ``num_faulty`` nodes are drawn
    proportionally (largest remainder) from the full occupancy vector
    including the undecided pool.  ``protected_opinion`` (1-based) shields
    one node of that opinion from the split — the rumor source must stay
    honest.  Returns ``(honest_counts, faulty_histogram)``; the honest
    undecided pool is implied by ``num_nodes - num_faulty``.
    """
    counts = np.asarray(counts, dtype=np.int64)
    undecided = int(num_nodes - counts.sum())
    if undecided < 0:
        raise ValueError("counts sum past num_nodes")
    pool = np.concatenate([[undecided], counts])
    if protected_opinion is not None:
        if counts[protected_opinion - 1] < 1:
            raise ValueError(
                f"no node holds protected opinion {protected_opinion}"
            )
        pool = pool.copy()
        pool[protected_opinion] -= 1
    taken = largest_remainder_split(pool, num_faulty)
    if protected_opinion is not None:
        pool[protected_opinion] += 1
    faulty_histogram = taken[1:]
    honest_counts = counts - faulty_histogram
    return honest_counts, faulty_histogram
