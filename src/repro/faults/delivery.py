"""Delivery engines that weave faulty emissions into honest phases.

The honest-reduction architecture: protocol state machines only ever hold
the ``n_h = n - m`` honest nodes, but every phase's balls — honest *and*
faulty — are thrown into the full ``n`` bins, and only the honest bins'
mailboxes are handed back.  This keeps all three sampling tiers exact for
oblivious adversaries (the faulty sub-population is a frozen emission law,
not evolving state) at the cost of a simple slice.

* :class:`FaultedDeliveryEngine` backs the sequential and batched tiers via
  the standard ``run_phase_from_senders`` / ``run_ensemble_phase_from_senders``
  delivery protocol.
* :class:`FaultedCountsDeliveryModel` subclasses the counts tier's
  :class:`CountsDeliveryModel` (the executors type-check on it), overriding
  only :meth:`phase_histograms` so the Poissonized per-node laws see the
  fault-augmented ball totals with ``lam = B / n`` over the full population.
"""

from __future__ import annotations

import numpy as np

from repro.faults.injection import FaultedPhaseSampler
from repro.network.balls_bins import CountsDeliveryModel, ensemble_recolor_and_throw
from repro.network.mailbox import EnsembleReceivedMessages, ReceivedMessages
from repro.noise.matrix import NoiseMatrix
from repro.utils.rng import EnsembleRandomState, RandomState, as_generator
from repro.utils.validation import require_positive_int

__all__ = ["FaultedDeliveryEngine", "FaultedCountsDeliveryModel"]


class FaultedDeliveryEngine:
    """Per-node phase delivery over ``n`` bins, exposing only honest ones.

    ``num_nodes`` (the attribute the protocols validate against) is the
    *honest* population; ``total_nodes`` is the full bin count including
    faulty nodes, whose emissions come from ``sampler``.
    """

    def __init__(
        self,
        num_honest: int,
        total_nodes: int,
        noise: NoiseMatrix,
        sampler: FaultedPhaseSampler,
        random_state: RandomState = None,
    ) -> None:
        self.num_nodes = require_positive_int(num_honest, "num_honest")
        self.total_nodes = require_positive_int(total_nodes, "total_nodes")
        if self.num_nodes > self.total_nodes:
            raise ValueError(
                f"num_honest={num_honest} exceeds total_nodes={total_nodes}"
            )
        if not isinstance(noise, NoiseMatrix):
            raise TypeError(
                f"noise must be a NoiseMatrix, got {type(noise).__name__}"
            )
        if not isinstance(sampler, FaultedPhaseSampler):
            raise TypeError(
                f"sampler must be a FaultedPhaseSampler, got {type(sampler).__name__}"
            )
        self.noise = noise
        self.sampler = sampler
        self._rng = as_generator(random_state)

    @property
    def num_opinions(self) -> int:
        return self.noise.num_opinions

    def _phase_histograms(
        self,
        honest_histograms: np.ndarray,
        num_rounds: int,
        random_state: EnsembleRandomState,
    ) -> np.ndarray:
        deltas = self.sampler.phase_ball_deltas(
            honest_histograms, num_rounds, random_state
        )
        return honest_histograms * np.int64(num_rounds) + deltas

    def run_phase_from_senders(
        self, sender_opinions: np.ndarray, num_rounds: int
    ) -> ReceivedMessages:
        """Sequential-tier phase: honest sender opinions in, honest mail out."""
        num_rounds = require_positive_int(num_rounds, "num_rounds")
        opinions = np.asarray(sender_opinions, dtype=np.int64).ravel()
        if opinions.size and (
            opinions.min() < 1 or opinions.max() > self.num_opinions
        ):
            raise ValueError(
                f"sender opinions must be in [1, {self.num_opinions}]"
            )
        histogram = np.bincount(opinions, minlength=self.num_opinions + 1)[1:]
        totals = self._phase_histograms(histogram[np.newaxis], num_rounds, self._rng)
        received = ensemble_recolor_and_throw(
            self.total_nodes, self.noise, totals, self._rng
        )
        return ReceivedMessages(
            np.ascontiguousarray(received.counts[0, : self.num_nodes])
        )

    def run_ensemble_phase_from_senders(
        self,
        sender_histograms: np.ndarray,
        num_rounds: int,
        random_state: EnsembleRandomState = None,
    ) -> EnsembleReceivedMessages:
        """Batched-tier phase for ``R`` trials, ``(R, k)`` honest histograms."""
        num_rounds = require_positive_int(num_rounds, "num_rounds")
        if random_state is None:
            random_state = self._rng
        histograms = np.asarray(sender_histograms, dtype=np.int64)
        totals = self._phase_histograms(histograms, num_rounds, random_state)
        received = ensemble_recolor_and_throw(
            self.total_nodes, self.noise, totals, random_state
        )
        return EnsembleReceivedMessages(
            np.ascontiguousarray(received.counts[:, : self.num_nodes, :])
        )


class FaultedCountsDeliveryModel(CountsDeliveryModel):
    """Counts-tier delivery over the full ``n`` bins with faulty emissions.

    Constructed with ``num_nodes`` = the *total* population (so the
    Poissonized rate ``lam = B / n`` stays correct) while the protocol's
    state tracks honest counts only.  The single override folds the faulty
    ball deltas into each phase's message histogram; recoloring, adoption,
    and vote laws are inherited unchanged.  Only oblivious adversaries may
    use this class — the adaptive family's runner-up targeting conditions
    on per-node information the counts reduction has discarded, which is
    exactly why the engine resolver degrades it to the batched tier.
    """

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        sampler: FaultedPhaseSampler,
    ) -> None:
        super().__init__(num_nodes, noise)
        if not isinstance(sampler, FaultedPhaseSampler):
            raise TypeError(
                f"sampler must be a FaultedPhaseSampler, got {type(sampler).__name__}"
            )
        if not sampler.model.is_oblivious:
            raise ValueError(
                "the counts tier is only exact for oblivious adversaries "
                f"(crash/omission/liar), got kind={sampler.model.kind!r}; "
                "use the batched tier (or allow_degradation=True)"
            )
        self.sampler = sampler

    def phase_histograms(
        self,
        counts: np.ndarray,
        num_rounds: int,
        random_state: EnsembleRandomState = None,
    ) -> np.ndarray:
        honest = np.asarray(counts, dtype=np.int64)
        deltas = self.sampler.phase_ball_deltas(honest, num_rounds, random_state)
        return honest * np.int64(num_rounds) + deltas
