"""The paper's primary contribution: the two-stage noisy gossip protocol.

This subpackage implements the protocol of Section 3.1 and the two problem
wrappers built on top of it:

* :mod:`repro.core.state` — the population state (opinion vector, opinionated
  fraction ``a(t)``, opinion distribution ``c(t)``, bias);
* :mod:`repro.core.schedule` — the exact phase schedules of Stage 1 and
  Stage 2 (phase counts ``T``, ``T'`` and per-phase round counts);
* :mod:`repro.core.stage1` — the Stage-1 rule (spread the rumor while
  preserving a bias toward the correct opinion);
* :mod:`repro.core.stage2` — the Stage-2 rule (amplify the bias by repeated
  sample-majority updates);
* :mod:`repro.core.protocol` — the combined two-stage protocol;
* :mod:`repro.core.rumor` / :mod:`repro.core.plurality` — the rumor-spreading
  and plurality-consensus problem set-ups of Theorems 1 and 2;
* :mod:`repro.core.sampling` — the per-node reservoir sampler (footnote 4);
* :mod:`repro.core.memory` — per-node memory accounting in bits.
"""

from repro.core.memory import MemoryUsage, memory_bound_bits, protocol_memory_usage
from repro.core.plurality import PluralityConsensus, PluralityInstance
from repro.core.protocol import CountsProtocol, ProtocolResult, TwoStageProtocol
from repro.core.rumor import RumorSpreading, RumorSpreadingInstance
from repro.core.sampling import ReservoirSampler
from repro.core.schedule import ProtocolSchedule, Stage1Schedule, Stage2Schedule
from repro.core.stage1 import (
    CountsStage1Executor,
    Stage1Executor,
    Stage1PhaseRecord,
)
from repro.core.stage2 import (
    CountsStage2Executor,
    Stage2Executor,
    Stage2PhaseRecord,
)
from repro.core.state import CountsState, EnsembleCountsState, PopulationState

__all__ = [
    "CountsProtocol",
    "CountsStage1Executor",
    "CountsStage2Executor",
    "CountsState",
    "EnsembleCountsState",
    "MemoryUsage",
    "PluralityConsensus",
    "PluralityInstance",
    "PopulationState",
    "ProtocolResult",
    "ProtocolSchedule",
    "ReservoirSampler",
    "RumorSpreading",
    "RumorSpreadingInstance",
    "Stage1Executor",
    "Stage1PhaseRecord",
    "Stage1Schedule",
    "Stage2Executor",
    "Stage2PhaseRecord",
    "Stage2Schedule",
    "TwoStageProtocol",
    "memory_bound_bits",
    "protocol_memory_usage",
]
