"""Per-node reservoir sampling (the paper's footnote 4).

The protocol never requires a node to store every message it receives: in
Stage 1 a node only needs one uniformly random received opinion, and in
Stage 2 a node only needs a uniform size-``L`` sample of the received
multiset.  Both can be maintained online with a classical reservoir sampler,
which is what keeps the per-node memory at ``O(log log n + log(1/eps))`` bits
plus the reservoir itself.

The vectorized simulation engines achieve the same distributions directly on
count matrices (see :class:`repro.network.mailbox.ReceivedMessages`); the
class below is the faithful node-local mechanism, used by the tests as an
executable specification and available to users who want to build their own
per-node agents.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import require_positive_int

__all__ = ["ReservoirSampler"]


class ReservoirSampler:
    """Maintain a uniform random sample of a stream without storing the stream.

    After observing ``t`` items, the reservoir contains a uniformly random
    size-``min(t, capacity)`` subset of them (Algorithm R).  With
    ``capacity=1`` this is exactly the Stage-1 rule "pick one received
    opinion u.a.r., counting multiplicities".

    Parameters
    ----------
    capacity:
        Maximum number of items retained (the paper's ``L``).
    random_state:
        Randomness for the replacement decisions.
    """

    def __init__(self, capacity: int, random_state: RandomState = None) -> None:
        self.capacity = require_positive_int(capacity, "capacity")
        self._rng = as_generator(random_state)
        self._reservoir: List[int] = []
        self._seen = 0

    @property
    def items_seen(self) -> int:
        """Total number of items offered to the sampler so far."""
        return self._seen

    @property
    def is_full(self) -> bool:
        """``True`` once the reservoir holds ``capacity`` items."""
        return len(self._reservoir) >= self.capacity

    def offer(self, item: int) -> None:
        """Offer one stream item to the sampler."""
        self._seen += 1
        if len(self._reservoir) < self.capacity:
            self._reservoir.append(int(item))
            return
        # Classical Algorithm R: replace a uniformly random slot with
        # probability capacity / items_seen.
        index = int(self._rng.integers(0, self._seen))
        if index < self.capacity:
            self._reservoir[index] = int(item)

    def extend(self, items: Iterable[int]) -> None:
        """Offer every item of ``items`` in order."""
        for item in items:
            self.offer(item)

    def sample(self) -> List[int]:
        """The current reservoir contents (a uniform sample of the stream)."""
        return list(self._reservoir)

    def single(self) -> Optional[int]:
        """The single retained item when ``capacity == 1`` (else first item)."""
        if not self._reservoir:
            return None
        return self._reservoir[0]

    def counts(self, num_opinions: int) -> np.ndarray:
        """The reservoir as a per-opinion count vector of length ``num_opinions``."""
        vector = np.zeros(num_opinions, dtype=np.int64)
        for item in self._reservoir:
            if not (1 <= item <= num_opinions):
                raise ValueError(
                    f"reservoir item {item} outside [1, {num_opinions}]"
                )
            vector[item - 1] += 1
        return vector

    def reset(self) -> None:
        """Empty the reservoir and reset the stream counter."""
        self._reservoir = []
        self._seen = 0

    def __len__(self) -> int:
        return len(self._reservoir)
