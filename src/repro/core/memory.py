"""Per-node memory accounting.

Theorems 1 and 2 state that the protocol uses ``O(log log n + log(1/eps))``
bits of memory per node.  The dominant cost is the Stage-2 opinion counters:
in each phase a node only needs to count, per opinion, how many times that
opinion appears in its size-``L`` sample, and ``L = O(log n / eps^2)`` in the
worst (final) phase, so each counter needs ``O(log L) = O(log log n +
log(1/eps))`` bits.  On top of that a node stores its current opinion
(``ceil(log2 k)`` bits) and a phase counter.

This module turns those observations into concrete bit counts so experiment
E11 can compare the measured widths against the asymptotic bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.core.schedule import ProtocolSchedule
from repro.utils.validation import require_positive, require_positive_int

__all__ = [
    "MemoryUsage",
    "counter_bits",
    "memory_bound_bits",
    "protocol_memory_usage",
]


def counter_bits(max_value: int) -> int:
    """Bits needed for a counter that must be able to hold ``max_value``."""
    max_value = require_positive_int(max_value, "max_value")
    return max(1, int(math.ceil(math.log2(max_value + 1))))


@dataclass(frozen=True)
class MemoryUsage:
    """Bit-level memory budget of one node running the protocol.

    Attributes
    ----------
    opinion_bits:
        Bits to store the current opinion (and the undecided marker).
    phase_counter_bits:
        Bits to store the current phase index across both stages.
    round_counter_bits:
        Bits to count rounds within the longest phase.
    sample_counter_bits:
        Bits for the per-opinion counters of the largest Stage-2 sample,
        summed over the ``k`` opinions.
    total_bits:
        Sum of all the above.
    """

    opinion_bits: int
    phase_counter_bits: int
    round_counter_bits: int
    sample_counter_bits: int

    @property
    def total_bits(self) -> int:
        """Total per-node memory in bits."""
        return (
            self.opinion_bits
            + self.phase_counter_bits
            + self.round_counter_bits
            + self.sample_counter_bits
        )

    def as_dict(self) -> Dict[str, int]:
        """Dictionary form, convenient for experiment tables."""
        return {
            "opinion_bits": self.opinion_bits,
            "phase_counter_bits": self.phase_counter_bits,
            "round_counter_bits": self.round_counter_bits,
            "sample_counter_bits": self.sample_counter_bits,
            "total_bits": self.total_bits,
        }


def protocol_memory_usage(
    schedule: ProtocolSchedule, num_opinions: int
) -> MemoryUsage:
    """Concrete per-node memory of the protocol under a given schedule.

    The sample counters are sized for the largest Stage-2 sample ``L`` (the
    final phase's ``l'``); Stage 1 needs only a capacity-1 reservoir, which is
    dominated by the opinion register.
    """
    num_opinions = require_positive_int(num_opinions, "num_opinions")
    opinion_bits = counter_bits(num_opinions)  # values 0..k
    total_phases = schedule.stage1.num_phases + schedule.stage2.num_phases
    phase_counter_bits = counter_bits(total_phases)
    longest_phase = max(
        max(schedule.stage1.phase_lengths), max(schedule.stage2.phase_lengths)
    )
    round_counter_bits = counter_bits(longest_phase)
    largest_sample = max(schedule.stage2.sample_sizes)
    sample_counter_bits = num_opinions * counter_bits(largest_sample)
    return MemoryUsage(
        opinion_bits=opinion_bits,
        phase_counter_bits=phase_counter_bits,
        round_counter_bits=round_counter_bits,
        sample_counter_bits=sample_counter_bits,
    )


def memory_bound_bits(
    num_nodes: int, epsilon: float, num_opinions: int, *, constant: float = 1.0
) -> float:
    """The asymptotic bound ``O(log log n + log(1/eps))`` per counter, totalled.

    Returns ``constant * k * (log2 log2 n + log2(1/eps))`` plus the opinion
    register, i.e. the quantity the measured usage is compared against in
    experiment E11.  (The paper counts the per-counter width; there are ``k``
    counters.)
    """
    num_nodes = require_positive_int(num_nodes, "num_nodes")
    epsilon = require_positive(epsilon, "epsilon")
    num_opinions = require_positive_int(num_opinions, "num_opinions")
    log_log_n = math.log2(max(math.log2(max(num_nodes, 2)), 2.0))
    log_inv_eps = math.log2(max(1.0 / epsilon, 2.0))
    per_counter = log_log_n + log_inv_eps
    return constant * num_opinions * per_counter + counter_bits(num_opinions)
