"""Population state: who holds which opinion.

The paper tracks, at the beginning of every round ``t``:

* ``a(t)`` — the fraction of nodes that are *opinionated* (support some
  opinion); the remaining ``1 - a(t)`` fraction is *undecided*;
* ``c(t) = (c_1, …, c_k)`` — the opinion distribution, where ``c_i`` is the
  fraction of **all** nodes that support opinion ``i`` (so that
  ``sum_i c_i = a(t)``);
* the *bias* of the distribution toward the correct/plurality opinion ``m``:
  ``min_{i != m} (c_m - c_i)`` (Definition 1 calls ``c`` delta-biased toward
  ``m`` when this is at least ``delta``).

:class:`PopulationState` stores the opinion vector (0 = undecided,
``1..k`` = opinions) and exposes those quantities plus the constructors used
by the rumor-spreading and plurality-consensus instances.

:class:`EnsembleState` is the batched counterpart: it stores the opinions of
``R`` independent trials as an ``(R, n)`` matrix so that multi-trial
experiments can evolve all trials with single vectorized numpy operations
instead of a Python-level loop over :class:`PopulationState` runs.

:class:`CountsState` / :class:`EnsembleCountsState` are the third tier: on
the complete graph every engine rule is exchangeable over nodes, so the
opinion-count vector ``(c_1, …, c_k)`` (plus ``n``) is a *sufficient
statistic* of the population.  The counts states store only that vector —
``(k,)`` for one trial, ``(R, k)`` for an ensemble — which is what lets the
counts engines simulate millions of nodes in ``O(k)`` memory per trial,
never materializing an ``n``-sized array.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.utils.multiset import opinion_counts_matrix
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import require_positive_int

__all__ = [
    "PopulationState",
    "EnsembleState",
    "CountsState",
    "EnsembleCountsState",
    "coerce_to_ensemble_counts",
]

UNDECIDED = 0


class PopulationState:
    """Opinions of an ``n``-node population with ``k`` possible opinions.

    Parameters
    ----------
    opinions:
        Integer vector of length ``n``; entry ``u`` is node ``u``'s opinion in
        ``1..k``, or 0 for undecided.
    num_opinions:
        The number of distinct opinions ``k`` (must upper-bound every entry).
    """

    def __init__(self, opinions: Sequence[int], num_opinions: int) -> None:
        self.num_opinions = require_positive_int(num_opinions, "num_opinions")
        array = np.asarray(opinions, dtype=np.int64).copy()
        if array.ndim != 1:
            raise ValueError(f"opinions must be a vector, got shape {array.shape}")
        if array.size == 0:
            raise ValueError("the population must contain at least one node")
        if array.min() < 0 or array.max() > self.num_opinions:
            raise ValueError(
                f"opinions must lie in [0, {self.num_opinions}] (0 = undecided)"
            )
        self.opinions = array

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def all_undecided(cls, num_nodes: int, num_opinions: int) -> "PopulationState":
        """A population where nobody holds an opinion yet."""
        num_nodes = require_positive_int(num_nodes, "num_nodes")
        return cls(np.zeros(num_nodes, dtype=np.int64), num_opinions)

    @classmethod
    def single_source(
        cls, num_nodes: int, num_opinions: int, source_opinion: int,
        source_node: int = 0
    ) -> "PopulationState":
        """The rumor-spreading initial state: one source, everyone else undecided."""
        state = cls.all_undecided(num_nodes, num_opinions)
        if not (1 <= source_opinion <= num_opinions):
            raise ValueError(
                f"source_opinion must be in [1, {num_opinions}], got {source_opinion}"
            )
        if not (0 <= source_node < num_nodes):
            raise ValueError(
                f"source_node must be in [0, {num_nodes}), got {source_node}"
            )
        state.opinions[source_node] = source_opinion
        return state

    @classmethod
    def from_counts(
        cls,
        num_nodes: int,
        opinion_counts: Dict[int, int],
        num_opinions: int,
        random_state: RandomState = None,
        *,
        shuffle: bool = True,
    ) -> "PopulationState":
        """A population with a prescribed number of supporters per opinion.

        ``opinion_counts[i]`` nodes get opinion ``i``; the remaining nodes are
        undecided.  Node identities are irrelevant on the complete graph, but
        ``shuffle=True`` still randomizes positions so that engines cannot
        accidentally rely on ordering.
        """
        num_nodes = require_positive_int(num_nodes, "num_nodes")
        num_opinions = require_positive_int(num_opinions, "num_opinions")
        total = 0
        opinions = np.zeros(num_nodes, dtype=np.int64)
        for opinion, count in sorted(opinion_counts.items()):
            if not (1 <= opinion <= num_opinions):
                raise ValueError(
                    f"opinion {opinion} outside [1, {num_opinions}]"
                )
            if count < 0:
                raise ValueError(f"count for opinion {opinion} must be >= 0")
            opinions[total:total + count] = opinion
            total += count
        if total > num_nodes:
            raise ValueError(
                f"opinion counts sum to {total} > num_nodes = {num_nodes}"
            )
        if shuffle:
            rng = as_generator(random_state)
            rng.shuffle(opinions)
        return cls(opinions, num_opinions)

    @classmethod
    def from_fractions(
        cls,
        num_nodes: int,
        fractions: Sequence[float],
        random_state: RandomState = None,
        *,
        shuffle: bool = True,
    ) -> "PopulationState":
        """A population whose opinion distribution approximates ``fractions``.

        ``fractions[i]`` is the target fraction of nodes holding opinion
        ``i + 1``; the fractions may sum to less than one, in which case the
        remainder is undecided.  Counts are obtained by rounding down and the
        plurality opinion absorbs any rounding slack so the realized plurality
        is never accidentally lost to rounding.
        """
        num_nodes = require_positive_int(num_nodes, "num_nodes")
        fractions = np.asarray(fractions, dtype=float)
        if fractions.ndim != 1 or fractions.size < 1:
            raise ValueError("fractions must be a non-empty vector")
        if np.any(fractions < 0) or fractions.sum() > 1.0 + 1e-9:
            raise ValueError("fractions must be non-negative and sum to at most 1")
        counts = np.floor(fractions * num_nodes).astype(np.int64)
        # Give the rounding slack (if any) to the largest-fraction opinion so
        # the intended plurality is preserved exactly.
        target_total = int(round(fractions.sum() * num_nodes))
        slack = target_total - int(counts.sum())
        if slack > 0:
            counts[int(np.argmax(fractions))] += slack
        opinion_counts = {
            index + 1: int(count) for index, count in enumerate(counts) if count > 0
        }
        return cls.from_counts(
            num_nodes, opinion_counts, fractions.size, random_state, shuffle=shuffle
        )

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return int(self.opinions.shape[0])

    def copy(self) -> "PopulationState":
        """An independent copy of this state."""
        return PopulationState(self.opinions.copy(), self.num_opinions)

    def opinionated_mask(self) -> np.ndarray:
        """Boolean mask of nodes that currently hold an opinion."""
        return self.opinions > UNDECIDED

    def opinionated_count(self) -> int:
        """Number of opinionated nodes."""
        return int(np.count_nonzero(self.opinions))

    def opinionated_fraction(self) -> float:
        """The paper's ``a(t)``: the fraction of opinionated nodes."""
        return self.opinionated_count() / self.num_nodes

    def opinion_counts(self) -> np.ndarray:
        """Number of supporters of each opinion (length ``k``, int64)."""
        return np.bincount(
            self.opinions, minlength=self.num_opinions + 1
        )[1:].astype(np.int64, copy=False)

    def opinion_distribution(self) -> np.ndarray:
        """The paper's ``c(t)``: per-opinion fraction of **all** nodes.

        Sums to :meth:`opinionated_fraction`.
        """
        return self.opinion_counts() / self.num_nodes

    def conditional_distribution(self) -> np.ndarray:
        """Per-opinion fraction among *opinionated* nodes (sums to 1).

        Undefined (all zeros) when nobody is opinionated.
        """
        counts = self.opinion_counts()
        total = counts.sum()
        if total == 0:
            return np.zeros(self.num_opinions)
        return counts / total

    def bias_toward(self, opinion: int) -> float:
        """``min_{i != opinion} (c_opinion - c_i)`` over all nodes (Definition 1).

        For ``k = 1`` the bias is defined as ``c_1`` (there is no rival).
        """
        if not (1 <= opinion <= self.num_opinions):
            raise ValueError(
                f"opinion must be in [1, {self.num_opinions}], got {opinion}"
            )
        distribution = self.opinion_distribution()
        if self.num_opinions == 1:
            return float(distribution[0])
        rivals = np.delete(distribution, opinion - 1)
        return float(distribution[opinion - 1] - rivals.max())

    def plurality_opinion(self) -> int:
        """The opinion with the most supporters (smallest label wins ties).

        Returns 0 when nobody is opinionated.
        """
        counts = self.opinion_counts()
        if counts.sum() == 0:
            return 0
        return int(np.argmax(counts)) + 1

    def has_consensus_on(self, opinion: int) -> bool:
        """``True`` iff every node supports ``opinion``."""
        return bool(np.all(self.opinions == opinion))

    def is_delta_biased(self, opinion: int, delta: float) -> bool:
        """Definition 1: is the distribution delta-biased toward ``opinion``?"""
        return self.bias_toward(opinion) >= delta

    def summary(self) -> Dict[str, float]:
        """A compact dictionary of the headline state statistics."""
        return {
            "num_nodes": self.num_nodes,
            "num_opinions": self.num_opinions,
            "opinionated_fraction": self.opinionated_fraction(),
            "plurality_opinion": self.plurality_opinion(),
            "plurality_bias": (
                self.bias_toward(self.plurality_opinion())
                if self.plurality_opinion() > 0
                else 0.0
            ),
        }

    def __eq__(self, other) -> bool:
        if not isinstance(other, PopulationState):
            return NotImplemented
        return self.num_opinions == other.num_opinions and bool(
            np.array_equal(self.opinions, other.opinions)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PopulationState(n={self.num_nodes}, k={self.num_opinions}, "
            f"opinionated={self.opinionated_count()})"
        )


class EnsembleState:
    """Opinions of ``R`` independent ``n``-node trials, stored as one matrix.

    Row ``r`` is trial ``r``'s opinion vector (0 = undecided, ``1..k`` =
    opinions), exactly as in :class:`PopulationState`.  All derived
    quantities are computed for every trial at once and returned as arrays
    with a leading trial axis.

    Parameters
    ----------
    opinions:
        Integer matrix of shape ``(num_trials, num_nodes)``.
    num_opinions:
        The number of distinct opinions ``k`` (must upper-bound every entry).
    """

    def __init__(self, opinions: np.ndarray, num_opinions: int) -> None:
        self.num_opinions = require_positive_int(num_opinions, "num_opinions")
        array = np.asarray(opinions, dtype=np.int64).copy()
        if array.ndim != 2:
            raise ValueError(
                f"ensemble opinions must be an (R, n) matrix, got shape {array.shape}"
            )
        if array.shape[0] == 0 or array.shape[1] == 0:
            raise ValueError(
                "the ensemble must contain at least one trial and one node"
            )
        if array.min() < 0 or array.max() > self.num_opinions:
            raise ValueError(
                f"opinions must lie in [0, {self.num_opinions}] (0 = undecided)"
            )
        self.opinions = array

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_state(cls, state: PopulationState, num_trials: int) -> "EnsembleState":
        """``num_trials`` independent trials all starting from ``state``."""
        num_trials = require_positive_int(num_trials, "num_trials")
        return cls(
            np.tile(state.opinions, (num_trials, 1)), state.num_opinions
        )

    @classmethod
    def wrap(cls, opinions: np.ndarray, num_opinions: int) -> "EnsembleState":
        """Wrap an already-validated ``(R, n)`` int64 matrix without copying.

        Internal fast path for the batched engines (e.g. per-round active
        sub-batches): the caller guarantees the array is a fresh, in-range
        int64 ``(R, n)`` matrix, and mutations of the state mutate it.  Use
        the regular constructor everywhere else.
        """
        state = cls.__new__(cls)
        state.num_opinions = num_opinions
        state.opinions = opinions
        return state

    @classmethod
    def from_states(cls, states: Sequence[PopulationState]) -> "EnsembleState":
        """Stack per-trial initial states (all must share ``n`` and ``k``)."""
        if not states:
            raise ValueError("at least one trial state is required")
        first = states[0]
        for state in states[1:]:
            if state.num_nodes != first.num_nodes:
                raise ValueError(
                    "all trial states must have the same number of nodes"
                )
            if state.num_opinions != first.num_opinions:
                raise ValueError(
                    "all trial states must have the same number of opinions"
                )
        return cls(
            np.stack([state.opinions for state in states]), first.num_opinions
        )

    # ------------------------------------------------------------------ #
    # Shape / conversion
    # ------------------------------------------------------------------ #

    @property
    def num_trials(self) -> int:
        """Number of independent trials ``R``."""
        return int(self.opinions.shape[0])

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n`` per trial."""
        return int(self.opinions.shape[1])

    def copy(self) -> "EnsembleState":
        """An independent copy of this ensemble."""
        return EnsembleState(self.opinions.copy(), self.num_opinions)

    def trial_state(self, trial: int) -> PopulationState:
        """Trial ``trial`` as a standalone :class:`PopulationState`."""
        return PopulationState(self.opinions[trial].copy(), self.num_opinions)

    def to_states(self) -> List[PopulationState]:
        """All trials as standalone :class:`PopulationState` objects."""
        return [self.trial_state(trial) for trial in range(self.num_trials)]

    # ------------------------------------------------------------------ #
    # Derived quantities (one entry per trial)
    # ------------------------------------------------------------------ #

    def opinionated_mask(self) -> np.ndarray:
        """Boolean ``(R, n)`` mask of nodes that currently hold an opinion."""
        return self.opinions > UNDECIDED

    def opinionated_counts(self) -> np.ndarray:
        """Number of opinionated nodes per trial (shape ``(R,)``)."""
        return np.count_nonzero(self.opinions, axis=1).astype(np.int64)

    def opinionated_fractions(self) -> np.ndarray:
        """The paper's ``a(t)`` per trial (shape ``(R,)``)."""
        return self.opinionated_counts() / self.num_nodes

    def opinion_counts(self) -> np.ndarray:
        """Supporters of each opinion per trial (shape ``(R, k)``).

        Computed with a single offset :func:`numpy.bincount` over the whole
        batch — no Python loop over trials.
        """
        return opinion_counts_matrix(self.opinions, self.num_opinions)

    def opinion_distributions(self) -> np.ndarray:
        """The paper's ``c(t)`` per trial (shape ``(R, k)``)."""
        return self.opinion_counts() / self.num_nodes

    def bias_toward(self, opinion: int) -> np.ndarray:
        """Definition-1 bias toward ``opinion`` per trial (shape ``(R,)``)."""
        if not (1 <= opinion <= self.num_opinions):
            raise ValueError(
                f"opinion must be in [1, {self.num_opinions}], got {opinion}"
            )
        distributions = self.opinion_distributions()
        if self.num_opinions == 1:
            return distributions[:, 0]
        rivals = distributions.copy()
        rivals[:, opinion - 1] = -np.inf
        return distributions[:, opinion - 1] - rivals.max(axis=1)

    def plurality_opinions(self) -> np.ndarray:
        """The most supported opinion per trial, 0 for all-undecided trials."""
        counts = self.opinion_counts()
        winners = counts.argmax(axis=1) + 1
        return np.where(counts.sum(axis=1) > 0, winners, 0).astype(np.int64)

    def pooled_plurality_opinion(self) -> int:
        """The plurality opinion of the counts pooled over all trials.

        This is the default tracked opinion of the ensemble executors; for a
        homogeneous ensemble (every trial tiled from one initial state) it
        coincides with the single-trial plurality.  Returns 0 when no trial
        has an opinionated node.
        """
        pooled = self.opinion_counts().sum(axis=0)
        if pooled.sum() == 0:
            return 0
        return int(pooled.argmax()) + 1

    def consensus_mask(self, opinion: int) -> np.ndarray:
        """Boolean ``(R,)`` mask of trials where every node supports ``opinion``."""
        return np.all(self.opinions == opinion, axis=1)

    def correct_fractions(self, opinion: int) -> np.ndarray:
        """Fraction of nodes supporting ``opinion`` per trial (shape ``(R,)``)."""
        return np.count_nonzero(self.opinions == opinion, axis=1) / self.num_nodes

    def summary(self) -> Dict[str, float]:
        """Aggregate statistics over the whole ensemble."""
        fractions = self.opinionated_fractions()
        return {
            "num_trials": self.num_trials,
            "num_nodes": self.num_nodes,
            "num_opinions": self.num_opinions,
            "mean_opinionated_fraction": float(fractions.mean()),
            "min_opinionated_fraction": float(fractions.min()),
        }

    def __eq__(self, other) -> bool:
        if not isinstance(other, EnsembleState):
            return NotImplemented
        return self.num_opinions == other.num_opinions and bool(
            np.array_equal(self.opinions, other.opinions)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EnsembleState(R={self.num_trials}, n={self.num_nodes}, "
            f"k={self.num_opinions})"
        )


# reprolint: counts-tier
class CountsState:
    """The sufficient statistic of one trial: per-opinion supporter counts.

    On the complete graph node identities are exchangeable, so a population
    is fully described (in distribution) by how many nodes support each
    opinion; the remaining ``num_nodes - sum(counts)`` nodes are undecided.
    All arithmetic is int64 end-to-end so populations beyond ``2**31`` nodes
    cannot silently overflow on platforms whose default int is 32-bit.

    Parameters
    ----------
    counts:
        Integer vector of length ``k``; entry ``i`` is the number of nodes
        supporting opinion ``i + 1``.
    num_nodes:
        Population size ``n`` (must be at least ``sum(counts)``).
    """

    def __init__(self, counts: Sequence[int], num_nodes: int) -> None:
        self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        array = np.asarray(counts, dtype=np.int64).copy()
        if array.ndim != 1 or array.size == 0:
            raise ValueError(
                f"counts must be a non-empty vector, got shape {array.shape}"
            )
        if array.min() < 0:
            raise ValueError("opinion counts must be non-negative")
        if int(array.sum()) > self.num_nodes:
            raise ValueError(
                f"opinion counts sum to {int(array.sum())} > num_nodes = "
                f"{self.num_nodes}"
            )
        self.counts = array

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_state(cls, state: PopulationState) -> "CountsState":
        """The sufficient statistic of a full :class:`PopulationState`."""
        return cls(state.opinion_counts(), state.num_nodes)

    @classmethod
    def single_source(
        cls, num_nodes: int, num_opinions: int, source_opinion: int
    ) -> "CountsState":
        """The rumor-spreading initial state: one source, rest undecided."""
        num_opinions = require_positive_int(num_opinions, "num_opinions")
        if not (1 <= source_opinion <= num_opinions):
            raise ValueError(
                f"source_opinion must be in [1, {num_opinions}], got {source_opinion}"
            )
        counts = np.zeros(num_opinions, dtype=np.int64)
        counts[source_opinion - 1] = 1
        return cls(counts, num_nodes)

    # ------------------------------------------------------------------ #
    # Derived quantities (mirroring PopulationState)
    # ------------------------------------------------------------------ #

    @property
    def num_opinions(self) -> int:
        """Number of opinions ``k``."""
        return int(self.counts.shape[0])

    def copy(self) -> "CountsState":
        """An independent copy of this state."""
        return CountsState(self.counts.copy(), self.num_nodes)

    def opinion_counts(self) -> np.ndarray:
        """Number of supporters of each opinion (length ``k``, int64)."""
        return self.counts.copy()

    def opinionated_count(self) -> int:
        """Number of opinionated nodes."""
        return int(self.counts.sum())

    def opinionated_fraction(self) -> float:
        """The paper's ``a(t)``: the fraction of opinionated nodes."""
        return self.opinionated_count() / self.num_nodes

    def opinion_distribution(self) -> np.ndarray:
        """The paper's ``c(t)``: per-opinion fraction of **all** nodes."""
        return self.counts / self.num_nodes

    def bias_toward(self, opinion: int) -> float:
        """``min_{i != opinion} (c_opinion - c_i)`` (Definition 1)."""
        if not (1 <= opinion <= self.num_opinions):
            raise ValueError(
                f"opinion must be in [1, {self.num_opinions}], got {opinion}"
            )
        distribution = self.opinion_distribution()
        if self.num_opinions == 1:
            return float(distribution[0])
        rivals = np.delete(distribution, opinion - 1)
        return float(distribution[opinion - 1] - rivals.max())

    def plurality_opinion(self) -> int:
        """The most supported opinion (smallest label wins ties), 0 if none."""
        if self.counts.sum() == 0:
            return 0
        return int(np.argmax(self.counts)) + 1

    def has_consensus_on(self, opinion: int) -> bool:
        """``True`` iff every node supports ``opinion``."""
        if not (1 <= opinion <= self.num_opinions):
            return False
        return int(self.counts[opinion - 1]) == self.num_nodes

    def to_population_state(
        self, random_state: RandomState = None, *, shuffle: bool = True
    ) -> PopulationState:
        """Materialize a full ``n``-node population with these counts.

        Interop helper for the per-node engines and plotting; note this
        allocates an ``n``-sized array, which the counts engines themselves
        never do.
        """
        opinion_counts = {
            index + 1: int(count)
            for index, count in enumerate(self.counts)
            if count > 0
        }
        return PopulationState.from_counts(
            self.num_nodes,
            opinion_counts,
            self.num_opinions,
            random_state,
            shuffle=shuffle,
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, CountsState):
            return NotImplemented
        return self.num_nodes == other.num_nodes and bool(
            np.array_equal(self.counts, other.counts)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CountsState(n={self.num_nodes}, k={self.num_opinions}, "
            f"opinionated={self.opinionated_count()})"
        )


# reprolint: counts-tier
class EnsembleCountsState:
    """The sufficient statistics of ``R`` independent trials: an ``(R, k)``
    int64 count matrix.

    Row ``r`` holds trial ``r``'s per-opinion supporter counts; the trial's
    remaining ``num_nodes - counts[r].sum()`` nodes are undecided.  This is
    the state the counts engines evolve: ``O(k)`` memory per trial, with no
    dependence of storage or per-round work on ``n``.

    Parameters
    ----------
    counts:
        Integer matrix of shape ``(num_trials, num_opinions)``.
    num_nodes:
        Population size ``n`` shared by every trial, or an ``(R,)`` integer
        vector giving each trial its own population size (the heterogeneous
        form used by the sweep engine, where rows of one merged ensemble
        belong to different grid points).
    """

    def __init__(self, counts: np.ndarray, num_nodes) -> None:
        if np.ndim(num_nodes) == 0:
            self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        else:
            nodes = np.asarray(num_nodes, dtype=np.int64).copy()
            if nodes.ndim != 1:
                raise ValueError(
                    "per-trial num_nodes must be a 1-d vector, got shape "
                    f"{nodes.shape}"
                )
            if nodes.size == 0 or nodes.min() < 1:
                raise ValueError("per-trial num_nodes must all be positive")
            self.num_nodes = nodes
        array = np.asarray(counts, dtype=np.int64).copy()
        if array.ndim != 2:
            raise ValueError(
                f"ensemble counts must be an (R, k) matrix, got shape {array.shape}"
            )
        if array.shape[0] == 0 or array.shape[1] == 0:
            raise ValueError(
                "the ensemble must contain at least one trial and one opinion"
            )
        if self.has_per_trial_nodes and self.num_nodes.shape != (array.shape[0],):
            raise ValueError(
                f"per-trial num_nodes must have shape ({array.shape[0]},), "
                f"got {self.num_nodes.shape}"
            )
        if array.min() < 0:
            raise ValueError("opinion counts must be non-negative")
        totals = array.sum(axis=1)
        if np.any(totals > self.num_nodes):
            raise ValueError(
                f"opinion counts sum to {int(totals.max())} > num_nodes = "
                f"{self.num_nodes} in at least one trial"
            )
        self.counts = array

    @property
    def has_per_trial_nodes(self) -> bool:
        """``True`` when each trial carries its own population size."""
        return isinstance(self.num_nodes, np.ndarray)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_state(
        cls, state: PopulationState, num_trials: int
    ) -> "EnsembleCountsState":
        """``num_trials`` independent trials all starting from ``state``."""
        num_trials = require_positive_int(num_trials, "num_trials")
        counts = state.opinion_counts().astype(np.int64, copy=False)
        return cls(np.tile(counts, (num_trials, 1)), state.num_nodes)

    @classmethod
    def from_counts_state(
        cls, state: CountsState, num_trials: int
    ) -> "EnsembleCountsState":
        """``num_trials`` independent trials tiled from one counts state."""
        num_trials = require_positive_int(num_trials, "num_trials")
        return cls(np.tile(state.counts, (num_trials, 1)), state.num_nodes)

    @classmethod
    def from_ensemble(cls, ensemble: EnsembleState) -> "EnsembleCountsState":
        """The sufficient statistics of a full ``(R, n)`` ensemble."""
        return cls(ensemble.opinion_counts(), ensemble.num_nodes)

    # ------------------------------------------------------------------ #
    # Shape / conversion
    # ------------------------------------------------------------------ #

    @property
    def num_trials(self) -> int:
        """Number of independent trials ``R``."""
        return int(self.counts.shape[0])

    @property
    def num_opinions(self) -> int:
        """Number of opinions ``k``."""
        return int(self.counts.shape[1])

    def copy(self) -> "EnsembleCountsState":
        """An independent copy of this ensemble."""
        return EnsembleCountsState(self.counts.copy(), self.num_nodes)

    def trial_state(self, trial: int) -> CountsState:
        """Trial ``trial`` as a standalone :class:`CountsState`."""
        num_nodes = (
            int(self.num_nodes[trial])
            if self.has_per_trial_nodes
            else self.num_nodes
        )
        return CountsState(self.counts[trial].copy(), num_nodes)

    # ------------------------------------------------------------------ #
    # Derived quantities (one entry per trial, mirroring EnsembleState)
    # ------------------------------------------------------------------ #

    def opinionated_counts(self) -> np.ndarray:
        """Number of opinionated nodes per trial (shape ``(R,)``, int64)."""
        return self.counts.sum(axis=1, dtype=np.int64)

    def undecided_counts(self) -> np.ndarray:
        """Number of undecided nodes per trial (shape ``(R,)``, int64)."""
        if self.has_per_trial_nodes:
            return self.num_nodes - self.opinionated_counts()
        return np.int64(self.num_nodes) - self.opinionated_counts()

    def opinionated_fractions(self) -> np.ndarray:
        """The paper's ``a(t)`` per trial (shape ``(R,)``)."""
        return self.opinionated_counts() / self.num_nodes

    def opinion_counts(self) -> np.ndarray:
        """Supporters of each opinion per trial (shape ``(R, k)``, int64)."""
        return self.counts.copy()

    def opinion_distributions(self) -> np.ndarray:
        """The paper's ``c(t)`` per trial (shape ``(R, k)``)."""
        if self.has_per_trial_nodes:
            return self.counts / self.num_nodes[:, np.newaxis]
        return self.counts / self.num_nodes

    def bias_toward(self, opinion: int) -> np.ndarray:
        """Definition-1 bias toward ``opinion`` per trial (shape ``(R,)``)."""
        if not (1 <= opinion <= self.num_opinions):
            raise ValueError(
                f"opinion must be in [1, {self.num_opinions}], got {opinion}"
            )
        distributions = self.opinion_distributions()
        if self.num_opinions == 1:
            return distributions[:, 0]
        rivals = distributions.copy()
        rivals[:, opinion - 1] = -np.inf
        return distributions[:, opinion - 1] - rivals.max(axis=1)

    def plurality_opinions(self) -> np.ndarray:
        """The most supported opinion per trial, 0 for all-undecided trials."""
        winners = self.counts.argmax(axis=1) + 1
        return np.where(
            self.counts.sum(axis=1) > 0, winners, 0
        ).astype(np.int64)

    def pooled_plurality_opinion(self) -> int:
        """The plurality opinion of the counts pooled over all trials."""
        pooled = self.counts.sum(axis=0, dtype=np.int64)
        if pooled.sum() == 0:
            return 0
        return int(pooled.argmax()) + 1

    def consensus_mask(self, opinion: int) -> np.ndarray:
        """Boolean ``(R,)`` mask of trials fully agreed on ``opinion``."""
        if not (1 <= opinion <= self.num_opinions):
            raise ValueError(
                f"opinion must be in [1, {self.num_opinions}], got {opinion}"
            )
        return self.counts[:, opinion - 1] == self.num_nodes

    def correct_fractions(self, opinion: int) -> np.ndarray:
        """Fraction of nodes supporting ``opinion`` per trial (shape ``(R,)``)."""
        if not (1 <= opinion <= self.num_opinions):
            raise ValueError(
                f"opinion must be in [1, {self.num_opinions}], got {opinion}"
            )
        return self.counts[:, opinion - 1] / self.num_nodes

    def to_ensemble_state(
        self, random_state: RandomState = None, *, shuffle: bool = True
    ) -> EnsembleState:
        """Materialize a full ``(R, n)`` ensemble with these counts.

        Interop/debugging helper only — it allocates the ``(R, n)`` matrix
        the counts engines exist to avoid.
        """
        rng = as_generator(random_state)
        rows = [
            self.trial_state(trial)
            .to_population_state(rng, shuffle=shuffle)
            .opinions
            for trial in range(self.num_trials)
        ]
        return EnsembleState(np.stack(rows), self.num_opinions)

    def summary(self) -> Dict[str, float]:
        """Aggregate statistics over the whole ensemble."""
        fractions = self.opinionated_fractions()
        return {
            "num_trials": self.num_trials,
            "num_nodes": self.num_nodes,
            "num_opinions": self.num_opinions,
            "mean_opinionated_fraction": float(fractions.mean()),
            "min_opinionated_fraction": float(fractions.min()),
        }

    def __eq__(self, other) -> bool:
        if not isinstance(other, EnsembleCountsState):
            return NotImplemented
        return bool(
            np.array_equal(self.num_nodes, other.num_nodes)
        ) and bool(np.array_equal(self.counts, other.counts))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EnsembleCountsState(R={self.num_trials}, n={self.num_nodes}, "
            f"k={self.num_opinions})"
        )


# reprolint: counts-tier
def coerce_to_ensemble_counts(
    initial_state: Union[
        PopulationState, EnsembleState, CountsState, EnsembleCountsState
    ],
    num_trials: Optional[int],
) -> EnsembleCountsState:
    """Reduce any supported initial state to a fresh ensemble counts state.

    The shared entry-state coercion of the counts engines
    (:class:`~repro.core.protocol.CountsProtocol`,
    :class:`~repro.dynamics.base.EnsembleCountsDynamics`): ensemble states
    have ``num_trials`` inferred (and validated against the argument when
    given); single-trial states are tiled into the required ``num_trials``
    identical starting points.  Per-node states are reduced to their
    sufficient statistics on entry.
    """
    if isinstance(initial_state, (EnsembleState, EnsembleCountsState)):
        if num_trials is not None and num_trials != initial_state.num_trials:
            raise ValueError(
                f"num_trials = {num_trials} disagrees with the ensemble's "
                f"{initial_state.num_trials} trials"
            )
        if isinstance(initial_state, EnsembleCountsState):
            return initial_state.copy()
        return EnsembleCountsState.from_ensemble(initial_state)
    if num_trials is None:
        raise ValueError(
            "num_trials is required when initial_state is a single "
            "PopulationState or CountsState"
        )
    if isinstance(initial_state, CountsState):
        return EnsembleCountsState.from_counts_state(initial_state, num_trials)
    if isinstance(initial_state, PopulationState):
        return EnsembleCountsState.from_state(initial_state, num_trials)
    raise TypeError(
        "initial_state must be a PopulationState, EnsembleState, "
        "CountsState or EnsembleCountsState, got "
        f"{type(initial_state).__name__}"
    )
