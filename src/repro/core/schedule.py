"""Phase schedules for the two-stage protocol (Section 3.1).

Stage 1 is split into ``T + 2`` phases:

* phase 0 lasts ``(s / eps^2) * log n`` rounds,
* phases ``1 .. T`` last ``beta / eps^2`` rounds each, with
  ``T = floor( log(n / (2 (s/eps^2) log n)) / log(beta/eps^2 + 1) )``,
* phase ``T + 1`` lasts ``(phi / eps^2) * log n`` rounds,

for constants ``phi > beta > s``.  Stage 2 is split into ``T' + 1`` phases
with ``T' = ceil( log( sqrt(n) / log n ) )``; phases ``0 .. T'-1`` last
``2 * l`` rounds with ``l = ceil(c / eps^2)`` and the final phase lasts
``2 * l'`` rounds with ``l' = Theta(eps^-2 log n)``.

Total running time is ``O(log n / eps^2)`` rounds, which experiment E1
verifies empirically.  All logarithms here are base 2 (the choice only
rescales the constants, not the asymptotics); phase lengths are rounded up
and floored at one round so that small populations still get a well-formed
schedule.  The multiplicative constants default to small values suitable for
laptop-scale simulation and can be overridden.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.utils.validation import require_positive, require_positive_int

__all__ = [
    "Stage1Schedule",
    "Stage2Schedule",
    "ProtocolSchedule",
    "theoretical_round_complexity",
]

#: Default Stage-1 constants (the paper requires ``phi > beta > s > 0``).
DEFAULT_S = 1.0
DEFAULT_BETA = 2.0
DEFAULT_PHI = 3.0
#: Default Stage-2 constants: ``c`` sets the short-phase sample size ``l`` and
#: ``c_final`` sets the long final phase ``l'``.  The paper only requires the
#: constants to be "large enough"; these defaults are calibrated so that the
#: w.h.p. statements hold at the laptop scales used in the experiments
#: (hundreds to tens of thousands of nodes).
DEFAULT_C = 3.0
DEFAULT_C_FINAL = 3.0


def _log2(value: float) -> float:
    return math.log2(max(value, 1e-300))


def theoretical_round_complexity(num_nodes: int, epsilon: float) -> float:
    """The paper's asymptotic running time ``log(n) / eps^2`` (no constants).

    Experiments fit measured running times against this quantity.
    """
    num_nodes = require_positive_int(num_nodes, "num_nodes")
    epsilon = require_positive(epsilon, "epsilon")
    return _log2(num_nodes) / (epsilon * epsilon)


@dataclass(frozen=True)
class Stage1Schedule:
    """The Stage-1 phase structure.

    Attributes
    ----------
    phase_lengths:
        Rounds per phase; entry 0 is phase 0, the last entry is phase ``T+1``.
    epsilon:
        The noise parameter the schedule was built for.
    constants:
        The ``(s, beta, phi)`` constants used.
    """

    phase_lengths: List[int]
    epsilon: float
    constants: tuple = (DEFAULT_S, DEFAULT_BETA, DEFAULT_PHI)

    @property
    def num_phases(self) -> int:
        """Number of phases ``T + 2``."""
        return len(self.phase_lengths)

    @property
    def num_growth_phases(self) -> int:
        """The paper's ``T`` (number of intermediate growth phases)."""
        return max(0, self.num_phases - 2)

    @property
    def total_rounds(self) -> int:
        """Total number of Stage-1 rounds."""
        return int(sum(self.phase_lengths))

    @classmethod
    def for_population(
        cls,
        num_nodes: int,
        epsilon: float,
        *,
        initial_opinionated: int = 1,
        s: float = DEFAULT_S,
        beta: float = DEFAULT_BETA,
        phi: float = DEFAULT_PHI,
        round_scale: float = 1.0,
    ) -> "Stage1Schedule":
        """Build the Stage-1 schedule for an ``n``-node population.

        Parameters
        ----------
        num_nodes, epsilon:
            Population size and noise parameter.
        initial_opinionated:
            Number of nodes already opinionated at the start of Stage 1
            (1 for rumor spreading; ``|S|`` for plurality consensus, which
            shortens or removes the growth phases).
        s, beta, phi:
            The paper's Stage-1 constants (must satisfy ``phi > beta > s > 0``).
        round_scale:
            Multiplier applied to all phase lengths; values below 1 produce a
            cheaper schedule for quick experiments (at the cost of the w.h.p.
            guarantee), values above 1 strengthen the guarantee.
        """
        num_nodes = require_positive_int(num_nodes, "num_nodes")
        epsilon = require_positive(epsilon, "epsilon")
        initial_opinionated = require_positive_int(
            initial_opinionated, "initial_opinionated"
        )
        round_scale = require_positive(round_scale, "round_scale")
        if not (phi > beta > s > 0):
            raise ValueError(
                f"constants must satisfy phi > beta > s > 0, got "
                f"s={s}, beta={beta}, phi={phi}"
            )
        if initial_opinionated > num_nodes:
            raise ValueError(
                "initial_opinionated cannot exceed num_nodes "
                f"({initial_opinionated} > {num_nodes})"
            )

        log_n = max(_log2(num_nodes), 1.0)
        inv_eps_sq = 1.0 / (epsilon * epsilon)

        def rounds(value: float) -> int:
            return max(1, int(math.ceil(value * round_scale)))

        phase0_length = rounds(s * inv_eps_sq * log_n)
        growth_length = rounds(beta * inv_eps_sq)
        final_length = rounds(phi * inv_eps_sq * log_n)

        # Number of growth phases T: enough for the opinionated set, which
        # multiplies by ~(beta/eps^2 + 1) per phase, to reach Theta(eps^2 n)
        # starting from the ~ (s/eps^2) log n nodes informed in phase 0 (or
        # from initial_opinionated if that is already larger).
        after_phase0 = max(
            float(initial_opinionated), min(s * inv_eps_sq * log_n, float(num_nodes))
        )
        growth_factor = beta * inv_eps_sq + 1.0
        target = num_nodes / (2.0 * s * inv_eps_sq * log_n)
        if after_phase0 >= num_nodes or target <= 1.0:
            num_growth_phases = 0
        else:
            num_growth_phases = int(
                math.floor(_log2(num_nodes / (2.0 * after_phase0))
                           / _log2(growth_factor))
            )
            num_growth_phases = max(0, num_growth_phases)

        phase_lengths = (
            [phase0_length]
            + [growth_length] * num_growth_phases
            + [final_length]
        )
        return cls(
            phase_lengths=phase_lengths,
            epsilon=epsilon,
            constants=(s, beta, phi),
        )


@dataclass(frozen=True)
class Stage2Schedule:
    """The Stage-2 phase structure.

    Attributes
    ----------
    phase_lengths:
        Rounds per phase (each phase lasts ``2 * sample_size`` rounds).
    sample_sizes:
        The per-phase sample size ``L`` (``l`` for the short phases, ``l'``
        for the final long phase); a node only updates its opinion at the end
        of a phase if it received at least ``L`` messages.
    epsilon:
        The noise parameter the schedule was built for.
    """

    phase_lengths: List[int]
    sample_sizes: List[int]
    epsilon: float

    def __post_init__(self) -> None:
        if len(self.phase_lengths) != len(self.sample_sizes):
            raise ValueError(
                "phase_lengths and sample_sizes must have the same length"
            )

    @property
    def num_phases(self) -> int:
        """Number of Stage-2 phases ``T' + 1``."""
        return len(self.phase_lengths)

    @property
    def total_rounds(self) -> int:
        """Total number of Stage-2 rounds."""
        return int(sum(self.phase_lengths))

    @classmethod
    def for_population(
        cls,
        num_nodes: int,
        epsilon: float,
        *,
        c: float = DEFAULT_C,
        c_final: float = DEFAULT_C_FINAL,
        odd_sample_size: bool = True,
        round_scale: float = 1.0,
    ) -> "Stage2Schedule":
        """Build the Stage-2 schedule for an ``n``-node population.

        Parameters
        ----------
        num_nodes, epsilon:
            Population size and noise parameter.
        c, c_final:
            The constants defining the short-phase sample size
            ``l = ceil(c / eps^2)`` and the final-phase sample size
            ``l' = ceil(c_final * log n / eps^2)``.
        odd_sample_size:
            Round sample sizes up to an odd number (the analysis assumes odd
            ``l``; Appendix C shows the assumption is harmless, and the
            parity experiment E10 verifies it).
        round_scale:
            Multiplier on the number of *phases* is never touched, but phase
            lengths/sample sizes are scaled by this factor (values below 1
            weaken the w.h.p. guarantee).
        """
        num_nodes = require_positive_int(num_nodes, "num_nodes")
        epsilon = require_positive(epsilon, "epsilon")
        round_scale = require_positive(round_scale, "round_scale")
        require_positive(c, "c")
        require_positive(c_final, "c_final")

        log_n = max(_log2(num_nodes), 1.0)
        inv_eps_sq = 1.0 / (epsilon * epsilon)

        def as_sample(value: float) -> int:
            size = max(1, int(math.ceil(value * round_scale)))
            if odd_sample_size and size % 2 == 0:
                size += 1
            return size

        short_sample = as_sample(c * inv_eps_sq)
        final_sample = as_sample(c_final * inv_eps_sq * log_n)
        # T' = ceil(log(sqrt(n)/log n)) short phases, plus one extra phase of
        # slack: the per-phase amplification factor is a constant > 1 rather
        # than exactly 2 at small n, and the extra 2*l rounds are negligible
        # next to the final phase.
        num_short_phases = 1 + max(
            1, int(math.ceil(_log2(max(math.sqrt(num_nodes) / log_n, 2.0))))
        )
        sample_sizes = [short_sample] * num_short_phases + [final_sample]
        phase_lengths = [2 * size for size in sample_sizes]
        return cls(
            phase_lengths=phase_lengths,
            sample_sizes=sample_sizes,
            epsilon=epsilon,
        )


@dataclass(frozen=True)
class ProtocolSchedule:
    """The full two-stage schedule."""

    stage1: Stage1Schedule
    stage2: Stage2Schedule

    @property
    def total_rounds(self) -> int:
        """Total number of rounds over both stages."""
        return self.stage1.total_rounds + self.stage2.total_rounds

    @classmethod
    def for_population(
        cls,
        num_nodes: int,
        epsilon: float,
        *,
        initial_opinionated: int = 1,
        round_scale: float = 1.0,
        stage1_constants: Optional[tuple] = None,
        stage2_constants: Optional[tuple] = None,
    ) -> "ProtocolSchedule":
        """Build both stages' schedules with consistent parameters."""
        s, beta, phi = stage1_constants or (DEFAULT_S, DEFAULT_BETA, DEFAULT_PHI)
        c, c_final = stage2_constants or (DEFAULT_C, DEFAULT_C_FINAL)
        stage1 = Stage1Schedule.for_population(
            num_nodes,
            epsilon,
            initial_opinionated=initial_opinionated,
            s=s,
            beta=beta,
            phi=phi,
            round_scale=round_scale,
        )
        stage2 = Stage2Schedule.for_population(
            num_nodes,
            epsilon,
            c=c,
            c_final=c_final,
            round_scale=round_scale,
        )
        return cls(stage1=stage1, stage2=stage2)
