"""The noisy rumor-spreading problem (Theorem 1).

One source node starts with the *correct* opinion ``m`` in ``{1, …, k}`` and
every other node is undecided; the goal is that after ``O(log n / eps^2)``
rounds every node supports ``m`` w.h.p., despite every transmitted opinion
being perturbed by an ``(eps, delta)``-majority-preserving noise matrix.

:class:`RumorSpreading` is a thin convenience wrapper that builds the
single-source initial state, runs the two-stage protocol, and reports the
outcome in problem-level terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.protocol import EnsembleResult, ProtocolResult, TwoStageProtocol
from repro.core.schedule import ProtocolSchedule
from repro.core.state import PopulationState
from repro.noise.matrix import NoiseMatrix
from repro.utils.rng import RandomState
from repro.utils.validation import require_positive_int

__all__ = ["RumorSpreading", "RumorSpreadingInstance"]


@dataclass(frozen=True)
class RumorSpreadingInstance:
    """A rumor-spreading problem instance.

    Attributes
    ----------
    num_nodes:
        Population size ``n``.
    num_opinions:
        Number of possible opinions ``k``.
    correct_opinion:
        The source's opinion ``m``.
    source_node:
        Index of the source node (irrelevant on the complete graph, kept for
        reproducibility of traces).
    """

    num_nodes: int
    num_opinions: int
    correct_opinion: int
    source_node: int = 0

    def initial_state(self) -> PopulationState:
        """The initial population: one source, everyone else undecided."""
        return PopulationState.single_source(
            self.num_nodes, self.num_opinions, self.correct_opinion, self.source_node
        )


class RumorSpreading:
    """Solve noisy rumor spreading with the paper's two-stage protocol.

    Parameters
    ----------
    num_nodes, num_opinions:
        Population size ``n`` and opinion-space size ``k``.
    noise:
        The noise matrix (must have ``k`` opinions).
    epsilon:
        The majority-preservation parameter used for the schedule; for the
        canonical uniform-noise family this is the matrix's ``eps``, for an
        arbitrary matrix use
        :func:`repro.noise.majority_preserving.epsilon_for_delta`.
    correct_opinion:
        The opinion held by the source.
    """

    def __init__(
        self,
        num_nodes: int,
        num_opinions: int,
        noise: NoiseMatrix,
        epsilon: float,
        *,
        correct_opinion: int = 1,
        source_node: int = 0,
        schedule: Optional[ProtocolSchedule] = None,
        process: str = "push",
        random_state: RandomState = None,
        round_scale: float = 1.0,
    ) -> None:
        num_nodes = require_positive_int(num_nodes, "num_nodes")
        num_opinions = require_positive_int(num_opinions, "num_opinions")
        if noise.num_opinions != num_opinions:
            raise ValueError(
                f"noise matrix has {noise.num_opinions} opinions, expected {num_opinions}"
            )
        if not (1 <= correct_opinion <= num_opinions):
            raise ValueError(
                f"correct_opinion must be in [1, {num_opinions}], got {correct_opinion}"
            )
        self.instance = RumorSpreadingInstance(
            num_nodes=num_nodes,
            num_opinions=num_opinions,
            correct_opinion=correct_opinion,
            source_node=source_node,
        )
        self.protocol = TwoStageProtocol(
            num_nodes,
            noise,
            schedule=schedule,
            epsilon=epsilon,
            process=process,
            random_state=random_state,
            round_scale=round_scale,
        )

    def run(self, *, stop_at_consensus: bool = False) -> ProtocolResult:
        """Run the protocol on a fresh single-source initial state."""
        return self.protocol.run(
            self.instance.initial_state(),
            target_opinion=self.instance.correct_opinion,
            stop_at_consensus=stop_at_consensus,
        )

    def run_ensemble(
        self, num_trials: int, *, rng_mode: str = "per_trial"
    ) -> EnsembleResult:
        """Run ``num_trials`` independent instances as one batched computation.

        All trials start from the same single-source state; see
        :class:`~repro.core.protocol.EnsembleProtocol` for the batching and
        reproducibility contract.
        """
        return self.protocol.run_ensemble(
            self.instance.initial_state(),
            num_trials,
            target_opinion=self.instance.correct_opinion,
            rng_mode=rng_mode,
        )
