"""Analytic (sampling-free) engine for the two-stage protocol.

The counts protocol already reduces a phase to closed-form per-node laws
(Claim-1 recoloring plus the Poissonized Definition-4 delivery); this
module evolves the *distribution* over opinion-count states through those
laws instead of sampling them:

* Stage 1: an undecided node stays undecided with probability
  ``e^{-Lambda}`` and otherwise adopts color ``j`` with probability
  ``h_j / B`` (``B`` the phase's message total — preserved exactly by
  recoloring — and ``Lambda = B / n``); opinionated nodes never change.
* Stage 2: a node re-votes with probability ``P(Poisson(Lambda) >= L)``
  and a re-voter's vote follows the closed-form ``maj()`` law of ``L``
  i.i.d. draws from the noisy histogram's color law.

One approximation separates this tier from the counts engine: the noisy
histogram is replaced by its *expectation* ``h P``.  Stage-1 adoption
probabilities are linear in the histogram, so their per-node marginals
are unchanged; the Stage-2 ``maj()`` law is nonlinear in the recolored
shares, and all nodes of a sampled trial share one recolor realization
(a cross-node correlation the product-form evolution drops).  Both
effects vanish as the phase message totals grow; the agreement suite
therefore asserts the protocol tier against a documented, looser TVD
threshold than the dynamics tier (which is exact outright).

A mean-field tier (:class:`MeanFieldProtocol`) integrates the same phase
laws at the share level with a Gaussian-diffusion correction for
populations far beyond the exact state budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.analytic.simplex import (
    DEFAULT_STATE_BUDGET,
    enumerate_states,
    next_state_distribution,
    state_indices,
    state_space_size,
    states_within_budget,
)
from repro.core.schedule import ProtocolSchedule
from repro.dynamics.base import _bias_from_counts
from repro.network.balls_bins import poisson_tail_probability
from repro.network.pull_model import majority_vote_law, vote_table_is_tractable
from repro.noise.matrix import NoiseMatrix
from repro.utils.validation import require_positive_int

__all__ = [
    "exact_protocol_is_tractable",
    "AnalyticProtocolResult",
    "AnalyticProtocol",
    "MeanFieldProtocol",
]


def _expected_noisy_shares(
    histogram: np.ndarray, noise: NoiseMatrix
) -> Tuple[float, np.ndarray]:
    """``(B, E[h~] / B)`` of a phase histogram under exact recoloring.

    Recoloring preserves row totals, so ``B`` (and hence ``Lambda``) is
    deterministic; only the color split is replaced by its expectation.
    """
    histogram = np.asarray(histogram, dtype=float)
    total = float(histogram.sum())
    if total <= 0.0:
        return 0.0, np.zeros(histogram.shape[0])
    return total, (histogram @ noise.matrix) / total


def _stage1_group_laws(
    counts: np.ndarray, num_rounds: int, num_nodes: int, noise: NoiseMatrix
) -> np.ndarray:
    """Per-group outcome laws of one Stage-1 phase from count vector."""
    width = counts.shape[0] + 1
    laws = np.zeros((width, width))
    total, shares = _expected_noisy_shares(counts * num_rounds, noise)
    if total <= 0.0:
        laws[0, 0] = 1.0
    else:
        stay = math.exp(-total / num_nodes)
        laws[0, 0] = stay
        laws[0, 1:] = (1.0 - stay) * shares
    for group in range(1, width):
        laws[group, group] = 1.0  # opinionated nodes never change in Stage 1
    return laws


def _approximate_vote_pmf(shares: np.ndarray, sample_size: int) -> np.ndarray:
    """Gaussian plurality approximation of the ``maj()`` law for huge ``L``.

    Beyond the exact composition-table budget the winner of ``L`` i.i.d.
    draws from ``shares`` is estimated pairwise against the strongest
    rival: the count difference is asymptotically
    ``N(L (w_j - w_r), L (w_j + w_r - (w_j - w_r)^2))``.  The pairwise
    tail probabilities are normalized into a pmf — only the mean-field
    tier uses this path, and at these sample sizes the law is within
    ``O(1/sqrt(L))`` of a point mass on the plurality color anyway.
    """
    num_opinions = shares.shape[0]
    if num_opinions == 1:
        return np.ones(1)
    tails = np.empty(num_opinions)
    for opinion in range(num_opinions):
        rivals = np.delete(shares, opinion)
        rival_share = float(rivals.max())
        margin = sample_size * (shares[opinion] - rival_share)
        variance = sample_size * (
            shares[opinion] + rival_share - (shares[opinion] - rival_share) ** 2
        )
        if variance <= 1e-30:
            tails[opinion] = 1.0 if margin > 0 else (0.5 if margin == 0 else 0.0)
        else:
            tails[opinion] = 0.5 * (
                1.0 + math.erf(margin / math.sqrt(2.0 * variance))
            )
    total = tails.sum()
    if total <= 0.0:
        return np.full(num_opinions, 1.0 / num_opinions)
    return tails / total


def _stage2_group_laws(
    counts: np.ndarray,
    num_rounds: int,
    sample_size: int,
    num_nodes: int,
    noise: NoiseMatrix,
    *,
    allow_approximate_votes: bool = False,
) -> np.ndarray:
    """Per-group outcome laws of one Stage-2 phase from count vector."""
    width = counts.shape[0] + 1
    num_opinions = width - 1
    laws = np.zeros((width, width))
    total, shares = _expected_noisy_shares(counts * num_rounds, noise)
    if total <= 0.0:
        # No messages: nobody is eligible to re-vote.
        laws[np.arange(width), np.arange(width)] = 1.0
        return laws
    update = float(
        poisson_tail_probability(
            int(sample_size), np.asarray([total / num_nodes])
        )[0]
    )
    if vote_table_is_tractable(int(sample_size), num_opinions):
        observation = np.concatenate([[0.0], shares])
        vote_pmf = np.clip(
            majority_vote_law(observation[np.newaxis, :], int(sample_size)),
            0.0,
            1.0,
        )[0, 1:]
        # Mirror sample_vote_counts: renormalize away the rounding dust
        # (the no-vote mass is exactly zero — every sampled message has a
        # color).
        row_sum = vote_pmf.sum()
        vote_pmf = (
            vote_pmf / row_sum
            if row_sum > 0
            else np.full(num_opinions, 1.0 / num_opinions)
        )
    elif allow_approximate_votes:
        vote_pmf = _approximate_vote_pmf(shares, int(sample_size))
    else:
        raise ValueError(
            f"the exact Stage-2 vote law needs the closed-form maj() "
            f"table, which is intractable for sample_size={int(sample_size)}, "
            f"k={num_opinions}"
        )
    laws[0, 0] = 1.0 - update
    laws[0, 1:] = update * vote_pmf
    for group in range(1, width):
        laws[group, 1:] = update * vote_pmf
        laws[group, group] += 1.0 - update
    return laws


def exact_protocol_is_tractable(
    num_nodes: int,
    num_opinions: int,
    epsilon: float,
    *,
    initial_opinionated: int = 1,
    round_scale: float = 1.0,
    state_budget: int = DEFAULT_STATE_BUDGET,
) -> bool:
    """Whether :class:`AnalyticProtocol` can run this scenario exactly.

    Needs the count simplex within the dense-kernel budget *and* a
    tractable closed-form ``maj()`` table for every Stage-2 sample size
    of the schedule (the final phase's ``L' ~ log n / eps^2`` is the
    binding constraint).
    """
    if not states_within_budget(num_nodes, num_opinions, state_budget):
        return False
    try:
        schedule = ProtocolSchedule.for_population(
            num_nodes,
            float(epsilon),
            initial_opinionated=max(1, int(initial_opinionated)),
            round_scale=round_scale,
        )
    except ValueError:
        return False
    return all(
        vote_table_is_tractable(int(size), num_opinions)
        for size in schedule.stage2.sample_sizes
    )


@dataclass(frozen=True)
class AnalyticProtocolResult:
    """Outcome of an analytic protocol run (no per-trial arrays).

    ``phase_biases`` holds the expected bias toward the target after each
    phase, Stage-1 phases first — entry ``stage1_phases - 1`` is the
    expected bias after Stage 1.
    """

    num_nodes: int
    num_opinions: int
    target_opinion: int
    method: str
    success_probability: float
    convergence_probability: float
    expected_bias_after_stage1: float
    expected_final_bias: float
    expected_final_counts: np.ndarray
    phase_biases: np.ndarray
    stage1_phases: int
    stage1_rounds: int
    total_rounds: int
    state_space_size: Optional[int] = None


class AnalyticProtocol:
    """Evolve the exact count-state distribution through both stages.

    The analytic mirror of :class:`~repro.core.protocol.CountsProtocol`
    under the expected-recoloring approximation discussed in the module
    docstring.  Construction mirrors the counts protocol; tractability is
    checked lazily per run (the schedule depends on the initial state).
    """

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        *,
        epsilon: Optional[float] = None,
        schedule: Optional[ProtocolSchedule] = None,
        round_scale: float = 1.0,
        state_budget: int = DEFAULT_STATE_BUDGET,
    ) -> None:
        if schedule is None and epsilon is None:
            raise ValueError("either schedule or epsilon must be provided")
        self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        if not isinstance(noise, NoiseMatrix):
            raise TypeError(
                f"noise must be a NoiseMatrix, got {type(noise).__name__}"
            )
        self.noise = noise
        self.epsilon = epsilon
        self.round_scale = round_scale
        self.state_budget = state_budget
        self._schedule = schedule

    @property
    def num_opinions(self) -> int:
        """Number of opinions ``k``."""
        return self.noise.num_opinions

    def build_schedule(self, initial_opinionated: int = 1) -> ProtocolSchedule:
        """The schedule used by :meth:`run` (built lazily when not supplied)."""
        if self._schedule is not None:
            return self._schedule
        return ProtocolSchedule.for_population(
            self.num_nodes,
            float(self.epsilon),
            initial_opinionated=max(1, initial_opinionated),
            round_scale=self.round_scale,
        )

    def initial_distribution(self, counts: np.ndarray) -> np.ndarray:
        """A point mass at ``counts`` over the state enumeration."""
        index = int(
            state_indices(
                np.asarray(counts, dtype=np.int64),
                self.num_nodes,
                self.num_opinions,
            )
        )
        if index < 0:
            raise ValueError(
                # Error display only: show the offending value in its raw
                # dtype rather than coercing it.
                f"counts {np.asarray(counts).tolist()} are not a valid "  # reprolint: disable=int64-dtype-pin
                f"state for n={self.num_nodes}"
            )
        distribution = np.zeros(
            state_space_size(self.num_nodes, self.num_opinions)
        )
        distribution[index] = 1.0
        return distribution

    def _evolve(self, distribution: np.ndarray, laws_of_state) -> np.ndarray:
        states = enumerate_states(self.num_nodes, self.num_opinions)
        evolved = np.zeros_like(distribution)
        for index in np.nonzero(distribution)[0]:
            counts = states[index]
            group_sizes = np.concatenate(
                [[self.num_nodes - int(counts.sum())], counts]
            )
            evolved += distribution[index] * next_state_distribution(
                group_sizes,
                laws_of_state(counts),
                self.num_nodes,
                self.num_opinions,
            )
        return evolved

    def evolve_stage1_phase(
        self, distribution: np.ndarray, num_rounds: int
    ) -> np.ndarray:
        """One Stage-1 phase applied to a state distribution."""
        return self._evolve(
            distribution,
            lambda counts: _stage1_group_laws(
                counts, int(num_rounds), self.num_nodes, self.noise
            ),
        )

    def evolve_stage2_phase(
        self, distribution: np.ndarray, num_rounds: int, sample_size: int
    ) -> np.ndarray:
        """One Stage-2 phase applied to a state distribution."""
        return self._evolve(
            distribution,
            lambda counts: _stage2_group_laws(
                counts,
                int(num_rounds),
                int(sample_size),
                self.num_nodes,
                self.noise,
            ),
        )

    def run(
        self,
        initial_counts: np.ndarray,
        *,
        target_opinion: Optional[int] = None,
    ) -> AnalyticProtocolResult:
        """Run both stages from a single initial count vector."""
        counts = np.asarray(initial_counts, dtype=np.int64).ravel()
        if counts.shape[0] != self.num_opinions:
            raise ValueError(
                f"initial_counts must have length {self.num_opinions}, "
                f"got {counts.shape[0]}"
            )
        if target_opinion is None:
            target_opinion = int(counts.argmax()) + 1 if counts.max() > 0 else 0
        target_opinion = int(target_opinion)
        if target_opinion <= 0:
            raise ValueError(
                "target_opinion could not be inferred: the initial state "
                "has no opinionated node"
            )
        opinionated = int(counts.sum())
        schedule = self.build_schedule(opinionated)
        if not states_within_budget(
            self.num_nodes, self.num_opinions, self.state_budget
        ):
            raise ValueError(
                f"exact protocol needs C(n + k, k) <= {self.state_budget} "
                f"states, got "
                f"{state_space_size(self.num_nodes, self.num_opinions)}; "
                "use the mean-field tier instead"
            )
        for size in schedule.stage2.sample_sizes:
            if not vote_table_is_tractable(int(size), self.num_opinions):
                raise ValueError(
                    f"the analytic engine needs the closed-form maj() table "
                    f"for every Stage-2 phase, which is intractable for "
                    f"sample_size={int(size)}, k={self.num_opinions}"
                )

        states = enumerate_states(self.num_nodes, self.num_opinions)
        bias = _bias_from_counts(states, target_opinion, self.num_nodes)
        distribution = self.initial_distribution(counts)
        phase_biases: List[float] = []
        for num_rounds in schedule.stage1.phase_lengths:
            distribution = self.evolve_stage1_phase(distribution, num_rounds)
            phase_biases.append(float(bias @ distribution))
        bias_after_stage1 = phase_biases[-1]
        for num_rounds, sample_size in zip(
            schedule.stage2.phase_lengths, schedule.stage2.sample_sizes
        ):
            distribution = self.evolve_stage2_phase(
                distribution, num_rounds, sample_size
            )
            phase_biases.append(float(bias @ distribution))

        consensus = states.max(axis=1) == self.num_nodes
        success_state = np.zeros(self.num_opinions, dtype=np.int64)
        success_state[target_opinion - 1] = self.num_nodes
        success_index = int(
            state_indices(success_state, self.num_nodes, self.num_opinions)
        )
        return AnalyticProtocolResult(
            num_nodes=self.num_nodes,
            num_opinions=self.num_opinions,
            target_opinion=target_opinion,
            method="exact",
            success_probability=float(distribution[success_index]),
            convergence_probability=float(distribution[consensus].sum()),
            expected_bias_after_stage1=bias_after_stage1,
            expected_final_bias=float(bias @ distribution),
            expected_final_counts=distribution @ states,
            phase_biases=np.asarray(phase_biases, dtype=float),
            stage1_phases=schedule.stage1.num_phases,
            stage1_rounds=schedule.stage1.total_rounds,
            total_rounds=schedule.total_rounds,
            state_space_size=states.shape[0],
        )


class MeanFieldProtocol:
    """Share-level integration of the protocol's phase laws for huge ``n``.

    Propagates the expected group shares and their Gaussian-diffusion
    covariance phase by phase through the same Stage-1/Stage-2 laws as
    :class:`AnalyticProtocol`; success and convergence probabilities are
    Gaussian-tail estimates of the lead events after the final phase.
    """

    method = "mean-field"

    _JACOBIAN_STEP = 1e-6

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        *,
        epsilon: Optional[float] = None,
        schedule: Optional[ProtocolSchedule] = None,
        round_scale: float = 1.0,
    ) -> None:
        if schedule is None and epsilon is None:
            raise ValueError("either schedule or epsilon must be provided")
        self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        if not isinstance(noise, NoiseMatrix):
            raise TypeError(
                f"noise must be a NoiseMatrix, got {type(noise).__name__}"
            )
        self.noise = noise
        self.epsilon = epsilon
        self.round_scale = round_scale
        self._schedule = schedule

    @property
    def num_opinions(self) -> int:
        """Number of opinions ``k``."""
        return self.noise.num_opinions

    def build_schedule(self, initial_opinionated: int = 1) -> ProtocolSchedule:
        """The schedule used by :meth:`run` (built lazily when not supplied)."""
        if self._schedule is not None:
            return self._schedule
        return ProtocolSchedule.for_population(
            self.num_nodes,
            float(self.epsilon),
            initial_opinionated=max(1, initial_opinionated),
            round_scale=self.round_scale,
        )

    def _phase_laws(
        self, group_shares: np.ndarray, num_rounds: int, sample_size: Optional[int]
    ) -> np.ndarray:
        counts = group_shares[1:] * self.num_nodes
        if sample_size is None:
            return _stage1_group_laws(
                counts, num_rounds, self.num_nodes, self.noise
            )
        return _stage2_group_laws(
            counts,
            num_rounds,
            sample_size,
            self.num_nodes,
            self.noise,
            allow_approximate_votes=True,
        )

    def _phase_step(
        self,
        group_shares: np.ndarray,
        covariance: np.ndarray,
        num_rounds: int,
        sample_size: Optional[int],
    ) -> Tuple[np.ndarray, np.ndarray]:
        def mean_map(shares: np.ndarray) -> np.ndarray:
            return shares @ self._phase_laws(shares, num_rounds, sample_size)

        width = group_shares.shape[0]
        step = self._JACOBIAN_STEP
        jacobian = np.empty((width, width))
        for column in range(width):
            forward = group_shares.copy()
            backward = group_shares.copy()
            forward[column] += step
            backward[column] -= step
            jacobian[:, column] = (mean_map(forward) - mean_map(backward)) / (
                2.0 * step
            )
        laws = self._phase_laws(group_shares, num_rounds, sample_size)
        outcome_covariance = np.zeros((width, width))
        for group in range(width):
            law = laws[group]
            outcome_covariance += group_shares[group] * (
                np.diag(law) - np.outer(law, law)
            )
        outcome_covariance /= self.num_nodes
        return (
            mean_map(group_shares),
            jacobian @ covariance @ jacobian.T + outcome_covariance,
        )

    @staticmethod
    def _bias_of(group_shares: np.ndarray, target_opinion: int) -> float:
        opinion_shares = group_shares[1:]
        if opinion_shares.shape[0] == 1:
            return float(opinion_shares[0])
        rivals = np.delete(opinion_shares, target_opinion - 1)
        return float(opinion_shares[target_opinion - 1] - rivals.max())

    def _lead_probability(
        self,
        group_shares: np.ndarray,
        covariance: np.ndarray,
        opinion: int,
    ) -> float:
        if self.num_opinions == 1:
            rival = 0
        else:
            rival_groups = [
                g for g in range(1, self.num_opinions + 1) if g != opinion
            ]
            rival = max(rival_groups, key=lambda g: group_shares[g])
        margin = float(group_shares[opinion] - group_shares[rival])
        variance = float(
            covariance[opinion, opinion]
            + covariance[rival, rival]
            - 2.0 * covariance[opinion, rival]
        )
        if variance <= 1e-30:
            return 1.0 if margin > 0 else (0.5 if margin == 0 else 0.0)
        return 0.5 * (1.0 + math.erf(margin / math.sqrt(2.0 * variance)))

    def run(
        self,
        initial_counts: np.ndarray,
        *,
        target_opinion: Optional[int] = None,
    ) -> AnalyticProtocolResult:
        """Integrate both stages from a single initial count vector."""
        counts = np.asarray(initial_counts, dtype=float).ravel()
        if counts.shape[0] != self.num_opinions:
            raise ValueError(
                f"initial_counts must have length {self.num_opinions}, "
                f"got {counts.shape[0]}"
            )
        if target_opinion is None:
            target_opinion = int(counts.argmax()) + 1 if counts.max() > 0 else 0
        target_opinion = int(target_opinion)
        if target_opinion <= 0:
            raise ValueError(
                "target_opinion could not be inferred: the initial state "
                "has no opinionated node"
            )
        schedule = self.build_schedule(int(counts.sum()))
        undecided = self.num_nodes - counts.sum()
        shares = np.concatenate([[undecided], counts]) / self.num_nodes
        width = shares.shape[0]
        covariance = np.zeros((width, width))
        phase_biases: List[float] = []
        for num_rounds in schedule.stage1.phase_lengths:
            shares, covariance = self._phase_step(
                shares, covariance, int(num_rounds), None
            )
            phase_biases.append(self._bias_of(shares, target_opinion))
        bias_after_stage1 = phase_biases[-1]
        for num_rounds, sample_size in zip(
            schedule.stage2.phase_lengths, schedule.stage2.sample_sizes
        ):
            shares, covariance = self._phase_step(
                shares, covariance, int(num_rounds), int(sample_size)
            )
            phase_biases.append(self._bias_of(shares, target_opinion))

        lead = [
            self._lead_probability(shares, covariance, opinion)
            for opinion in range(1, self.num_opinions + 1)
        ]
        return AnalyticProtocolResult(
            num_nodes=self.num_nodes,
            num_opinions=self.num_opinions,
            target_opinion=target_opinion,
            method=self.method,
            success_probability=lead[target_opinion - 1],
            convergence_probability=min(1.0, float(sum(lead))),
            expected_bias_after_stage1=bias_after_stage1,
            expected_final_bias=self._bias_of(shares, target_opinion),
            expected_final_counts=shares[1:] * self.num_nodes,
            phase_biases=np.asarray(phase_biases, dtype=float),
            stage1_phases=schedule.stage1.num_phases,
            stage1_rounds=schedule.stage1.total_rounds,
            total_rounds=schedule.total_rounds,
            state_space_size=None,
        )
