"""Stage 2 of the protocol: amplifying the bias via sample majorities.

Rule of Stage 2 (paper, Section 3.1.2).  During each phase of length ``2L``:

* every opinionated node pushes its current opinion in every round;
* every node maintains a uniform random sample ``S(u)`` of size ``L`` of the
  messages it receives during the phase (a size-``L`` reservoir);
* at the end of the phase, every node that received at least ``L`` messages
  switches its opinion to ``maj(S(u))`` — the most frequent opinion in the
  sample, ties broken uniformly at random.

Proposition 1 shows each such phase multiplies the bias toward the plurality
opinion by a constant factor > 1 (w.h.p.), so after ``T' + 1 = O(log n)``
phases every node supports the plurality opinion (Lemma 12).  Experiments E5
and E6 verify the per-phase amplification and the full trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.schedule import Stage2Schedule
from repro.core.state import EnsembleCountsState, EnsembleState, PopulationState
from repro.network.balls_bins import CompiledPhaseLaw, CountsDeliveryModel
from repro.network.delivery import (
    deliver_ensemble_phase,
    deliver_phase,
    supports_ensemble_delivery,
    supports_population_delivery,
)
from repro.utils.rng import (
    EnsembleRandomState,
    RandomState,
    as_generator,
    as_trial_generators,
    is_generator_sequence,
    normalize_ensemble_random_state,
)

__all__ = [
    "Stage2Executor",
    "Stage2PhaseRecord",
    "EnsembleStage2Executor",
    "EnsembleStage2PhaseRecord",
    "CountsStage2Executor",
]


@dataclass(frozen=True)
class Stage2PhaseRecord:
    """State snapshot at the end of one Stage-2 phase.

    Attributes
    ----------
    phase_index:
        Phase number (0-based).
    num_rounds:
        Number of rounds (``2L``).
    sample_size:
        The sample size ``L`` used by the majority rule this phase.
    updated_nodes:
        Number of nodes that received at least ``L`` messages and therefore
        re-voted at the end of the phase.
    opinion_distribution:
        ``c(tau_j)`` after the phase.
    bias_before, bias_after:
        Bias toward the tracked opinion before and after the phase (``None``
        when no opinion is tracked).
    messages_sent:
        Total messages pushed during the phase.
    """

    phase_index: int
    num_rounds: int
    sample_size: int
    updated_nodes: int
    opinion_distribution: np.ndarray
    bias_before: Optional[float]
    bias_after: Optional[float]
    messages_sent: int


class Stage2Executor:
    """Run Stage 2 of the protocol on a delivery engine.

    Parameters
    ----------
    engine:
        A delivery engine exposing ``run_phase_from_senders`` (anonymous,
        complete-graph processes O/B/P) or ``run_phase_from_population``
        (topology-aware engines).
    schedule:
        The Stage-2 phase schedule (phase lengths and sample sizes).
    random_state:
        Randomness for sampling and majority tie-breaks.
    sampling_method:
        ``"without_replacement"`` (faithful reservoir semantics, default) or
        ``"with_replacement"`` — exposed for the sampling ablation E13.
    use_full_multiset:
        When ``True``, nodes vote on their *entire* received multiset instead
        of a size-``L`` sample (the memory-unbounded variant, the other arm of
        ablation E13).
    """

    def __init__(
        self,
        engine,
        schedule: Stage2Schedule,
        random_state: RandomState = None,
        *,
        sampling_method: str = "without_replacement",
        use_full_multiset: bool = False,
    ) -> None:
        if not (
            hasattr(engine, "run_phase_from_senders")
            or supports_population_delivery(engine)
        ):
            raise TypeError(
                "engine must expose run_phase_from_senders or "
                "run_phase_from_population"
            )
        if sampling_method not in {"without_replacement", "with_replacement"}:
            raise ValueError(
                "sampling_method must be 'without_replacement' or "
                f"'with_replacement', got {sampling_method!r}"
            )
        self.engine = engine
        self.schedule = schedule
        self.sampling_method = sampling_method
        self.use_full_multiset = use_full_multiset
        self._rng = as_generator(random_state)

    def run(
        self,
        state: PopulationState,
        *,
        track_opinion: Optional[int] = None,
        stop_at_consensus: bool = False,
    ) -> Tuple[PopulationState, List[Stage2PhaseRecord]]:
        """Execute every Stage-2 phase, returning the final state and history.

        Parameters
        ----------
        state:
            Initial population state (not modified; a copy is evolved).
        track_opinion:
            The opinion whose bias is recorded (defaults to the current
            plurality opinion).
        stop_at_consensus:
            Stop early once every node supports ``track_opinion`` — useful
            for convergence-time measurements; the recorded history then
            covers only the executed phases.
        """
        current = state.copy()
        if track_opinion is None:
            plurality = current.plurality_opinion()
            track_opinion = plurality if plurality > 0 else None
        records: List[Stage2PhaseRecord] = []
        for phase_index, (num_rounds, sample_size) in enumerate(
            zip(self.schedule.phase_lengths, self.schedule.sample_sizes)
        ):
            record = self.run_phase(
                current,
                phase_index,
                num_rounds,
                sample_size,
                track_opinion=track_opinion,
            )
            records.append(record)
            if (
                stop_at_consensus
                and track_opinion is not None
                and current.has_consensus_on(track_opinion)
            ):
                break
        return current, records

    def run_phase(
        self,
        state: PopulationState,
        phase_index: int,
        num_rounds: int,
        sample_size: int,
        *,
        track_opinion: Optional[int] = None,
    ) -> Stage2PhaseRecord:
        """Execute a single Stage-2 phase, mutating ``state`` in place."""
        bias_before = (
            state.bias_toward(track_opinion) if track_opinion is not None else None
        )
        updated_nodes = 0
        messages_sent = 0
        if state.opinionated_count() > 0:
            received = deliver_phase(self.engine, state.opinions, num_rounds)
            messages_sent = received.total_messages()
            votes = received.majority_votes(
                self._rng,
                sample_size=None if self.use_full_multiset else sample_size,
                sampling_method=self.sampling_method,
            )
            updaters = votes > 0
            state.opinions[updaters] = votes[updaters]
            updated_nodes = int(np.count_nonzero(updaters))
        bias_after = (
            state.bias_toward(track_opinion) if track_opinion is not None else None
        )
        return Stage2PhaseRecord(
            phase_index=phase_index,
            num_rounds=num_rounds,
            sample_size=sample_size,
            updated_nodes=updated_nodes,
            opinion_distribution=state.opinion_distribution(),
            bias_before=bias_before,
            bias_after=bias_after,
            messages_sent=messages_sent,
        )


@dataclass(frozen=True)
class EnsembleStage2PhaseRecord:
    """Per-trial state snapshots at the end of one batched Stage-2 phase.

    The fields mirror :class:`Stage2PhaseRecord` with a leading trial axis;
    ``consensus_after`` additionally records which trials sit at full
    consensus on the tracked opinion after the phase (all ``False`` when no
    opinion is tracked), so callers can reconstruct per-trial
    rounds-to-consensus without freezing the batch.
    """

    phase_index: int
    num_rounds: int
    sample_size: int
    updated_nodes: np.ndarray
    opinion_distributions: np.ndarray
    bias_before: Optional[np.ndarray]
    bias_after: Optional[np.ndarray]
    messages_sent: np.ndarray
    consensus_after: np.ndarray


class EnsembleStage2Executor:
    """Run Stage 2 for ``R`` independent trials with batched phase delivery.

    Mirrors :class:`Stage2Executor` over an
    :class:`~repro.core.state.EnsembleState`: each phase delivers every
    trial's messages at once and applies the sample-majority rule to the
    whole ``(R, n)`` batch.  Unlike the sequential executor there is no
    per-trial early stopping — the batch always runs the full schedule (the
    default behaviour of the sequential executor too) and records per-phase
    consensus masks instead.

    Parameters
    ----------
    engine:
        A delivery engine exposing ``run_ensemble_phase_from_senders``.
    schedule:
        The Stage-2 phase schedule (lengths and sample sizes).
    random_state:
        One shared randomness source, or a sequence with one source per
        trial (then trial ``r`` consumes draws from its own generator only).
    sampling_method, use_full_multiset:
        As in :class:`Stage2Executor`.
    """

    def __init__(
        self,
        engine,
        schedule: Stage2Schedule,
        random_state: EnsembleRandomState = None,
        *,
        sampling_method: str = "without_replacement",
        use_full_multiset: bool = False,
    ) -> None:
        if not supports_ensemble_delivery(engine):
            raise TypeError(
                "engine must expose run_ensemble_phase_from_senders"
            )
        if sampling_method not in {"without_replacement", "with_replacement"}:
            raise ValueError(
                "sampling_method must be 'without_replacement' or "
                f"'with_replacement', got {sampling_method!r}"
            )
        self.engine = engine
        self.schedule = schedule
        self.sampling_method = sampling_method
        self.use_full_multiset = use_full_multiset
        self._random_state = normalize_ensemble_random_state(random_state)

    def run(
        self,
        state: EnsembleState,
        *,
        track_opinion: Optional[int] = None,
    ) -> Tuple[EnsembleState, List[EnsembleStage2PhaseRecord]]:
        """Execute every Stage-2 phase on a copy of ``state``."""
        current = state.copy()
        if track_opinion is None:
            pooled = current.pooled_plurality_opinion()
            track_opinion = pooled if pooled > 0 else None
        records: List[EnsembleStage2PhaseRecord] = []
        for phase_index, (num_rounds, sample_size) in enumerate(
            zip(self.schedule.phase_lengths, self.schedule.sample_sizes)
        ):
            record = self.run_phase(
                current,
                phase_index,
                num_rounds,
                sample_size,
                track_opinion=track_opinion,
            )
            records.append(record)
        return current, records

    def run_phase(
        self,
        state: EnsembleState,
        phase_index: int,
        num_rounds: int,
        sample_size: int,
        *,
        track_opinion: Optional[int] = None,
    ) -> EnsembleStage2PhaseRecord:
        """Execute a single batched Stage-2 phase, mutating ``state`` in place."""
        bias_before = (
            state.bias_toward(track_opinion) if track_opinion is not None else None
        )
        received = deliver_ensemble_phase(
            self.engine, state.opinions, num_rounds, self._random_state
        )
        votes = received.majority_votes(
            self._random_state,
            sample_size=None if self.use_full_multiset else sample_size,
            sampling_method=self.sampling_method,
        )
        updaters = votes > 0
        state.opinions[updaters] = votes[updaters]
        bias_after = (
            state.bias_toward(track_opinion) if track_opinion is not None else None
        )
        consensus_after = (
            state.consensus_mask(track_opinion)
            if track_opinion is not None
            else np.zeros(state.num_trials, dtype=bool)
        )
        return EnsembleStage2PhaseRecord(
            phase_index=phase_index,
            num_rounds=num_rounds,
            sample_size=sample_size,
            updated_nodes=np.count_nonzero(updaters, axis=1).astype(np.int64),
            opinion_distributions=state.opinion_distributions(),
            bias_before=bias_before,
            bias_after=bias_after,
            messages_sent=received.total_messages(),
            consensus_after=consensus_after,
        )


# reprolint: counts-tier
class CountsStage2Executor:
    """Run Stage 2 on ``(R, k)`` sufficient statistics — never ``(R, n)``.

    The counts-engine executor.  Each phase re-colors the message histogram
    exactly (Claim 1) and summarizes the Poissonized delivery (Definition
    4) per node class:

    * a node re-votes iff it received at least ``L`` messages — probability
      ``P(Poisson(Lambda) >= L)``, so the number of re-voters per
      current-opinion group is one binomial draw per group;
    * by Poisson splitting, a re-voter's size-``L`` sample is ``L`` i.i.d.
      draws from the noisy histogram's color law *independent of its own
      opinion*, so the re-voters' ``maj()`` tallies are one multinomial
      over the closed-form vote law (or the bounded-chunk fallback when
      the composition table is intractable — see
      :meth:`~repro.network.balls_bins.CountsDeliveryModel.sample_vote_counts`).

    The executor supports only the faithful Stage-2 rule: the sampling
    ablations (``with_replacement``, ``use_full_multiset``) condition on
    per-node arrival totals and are served by the sequential and batched
    engines.

    Parameters
    ----------
    delivery:
        A :class:`~repro.network.balls_bins.CountsDeliveryModel`.
    schedule:
        The Stage-2 phase schedule (lengths and sample sizes).
    random_state:
        One shared randomness source, or a sequence with one per trial.
    sampling_method, use_full_multiset:
        Accepted for interface parity; anything but the defaults raises
        ``ValueError``.
    """

    def __init__(
        self,
        delivery: CountsDeliveryModel,
        schedule: Stage2Schedule,
        random_state: EnsembleRandomState = None,
        *,
        sampling_method: str = "without_replacement",
        use_full_multiset: bool = False,
    ) -> None:
        if not isinstance(delivery, CountsDeliveryModel):
            raise TypeError(
                "delivery must be a CountsDeliveryModel, got "
                f"{type(delivery).__name__}"
            )
        if sampling_method != "without_replacement":
            raise ValueError(
                "the counts engine implements only the faithful "
                "'without_replacement' Stage-2 sampling; use the batched or "
                f"sequential engine for {sampling_method!r}"
            )
        if use_full_multiset:
            raise ValueError(
                "the counts engine implements only the size-L sample rule; "
                "use the batched or sequential engine for use_full_multiset"
            )
        self.delivery = delivery
        self.schedule = schedule
        self.sampling_method = sampling_method
        self.use_full_multiset = use_full_multiset
        self._random_state = normalize_ensemble_random_state(random_state)

    def run(
        self,
        state: EnsembleCountsState,
        *,
        track_opinion: Optional[int] = None,
    ) -> Tuple[EnsembleCountsState, List[EnsembleStage2PhaseRecord]]:
        """Execute every Stage-2 phase on a copy of ``state``."""
        current = state.copy()
        if track_opinion is None:
            pooled = current.pooled_plurality_opinion()
            track_opinion = pooled if pooled > 0 else None
        # Compile each distinct (num_rounds, sample_size) once up front:
        # phases sharing a sample size (all the "short" Stage-2 phases do)
        # then share one law object, tail table and vote-path decision.
        compiled_laws = {}
        for num_rounds, sample_size in zip(
            self.schedule.phase_lengths, self.schedule.sample_sizes
        ):
            key = (int(num_rounds), int(sample_size))
            if key not in compiled_laws:
                compiled_laws[key] = self.delivery.compile_phase(
                    num_rounds, sample_size
                )
        records: List[EnsembleStage2PhaseRecord] = []
        for phase_index, (num_rounds, sample_size) in enumerate(
            zip(self.schedule.phase_lengths, self.schedule.sample_sizes)
        ):
            record = self.run_phase(
                current,
                phase_index,
                num_rounds,
                sample_size,
                track_opinion=track_opinion,
                compiled=compiled_laws[(int(num_rounds), int(sample_size))],
            )
            records.append(record)
        return current, records

    def _sample_updaters(
        self, group_sizes: np.ndarray, update_probability: np.ndarray
    ) -> np.ndarray:
        """Eligible re-voters per current-opinion group, shape ``(R, k+1)``.

        One binomial per group; in per-trial mode trial ``r`` consumes
        exactly ``k + 1`` binomial draws from its own generator.
        """
        num_trials = group_sizes.shape[0]
        if is_generator_sequence(self._random_state):
            generators = as_trial_generators(self._random_state, num_trials)
            updaters = np.empty(group_sizes.shape, dtype=np.int64)
            for trial, generator in enumerate(generators):
                updaters[trial] = generator.binomial(
                    group_sizes[trial], update_probability[trial]
                )
            return updaters
        rng = as_generator(self._random_state)
        return rng.binomial(
            group_sizes, update_probability[:, np.newaxis]
        ).astype(np.int64, copy=False)

    def run_phase(
        self,
        state: EnsembleCountsState,
        phase_index: int,
        num_rounds: int,
        sample_size: int,
        *,
        track_opinion: Optional[int] = None,
        compiled: Optional[CompiledPhaseLaw] = None,
    ) -> EnsembleStage2PhaseRecord:
        """Execute a single counts Stage-2 phase, mutating ``state`` in place.

        ``compiled`` carries the phase's precomputed law constants (vote
        path, warmed tables); :meth:`run` builds one per distinct phase
        shape.  The phase's message histogram is validated once on entry
        (in :meth:`~repro.network.balls_bins.CountsDeliveryModel.recolor`);
        the downstream law/sampler calls reuse the validated arrays without
        re-checking.
        """
        if compiled is None:
            compiled = self.delivery.compile_phase(num_rounds, sample_size)
        bias_before = (
            state.bias_toward(track_opinion) if track_opinion is not None else None
        )
        histograms = self.delivery.phase_histograms(
            state.counts, num_rounds, self._random_state
        )
        noisy = self.delivery.recolor(histograms, self._random_state)
        update_probability = self.delivery.update_probability(
            noisy, sample_size, validate=False
        )
        group_sizes = np.concatenate(
            [state.undecided_counts()[:, np.newaxis], state.counts], axis=1
        )
        updaters = self._sample_updaters(group_sizes, update_probability)
        votes = self.delivery.sample_vote_counts(
            noisy,
            updaters.sum(axis=1, dtype=np.int64),
            sample_size,
            self._random_state,
            vote_path=compiled.vote_path,
            validate=False,
        )
        state.counts += votes - updaters[:, 1:]
        bias_after = (
            state.bias_toward(track_opinion) if track_opinion is not None else None
        )
        consensus_after = (
            state.consensus_mask(track_opinion)
            if track_opinion is not None
            else np.zeros(state.num_trials, dtype=bool)
        )
        return EnsembleStage2PhaseRecord(
            phase_index=phase_index,
            num_rounds=num_rounds,
            sample_size=sample_size,
            updated_nodes=updaters.sum(axis=1, dtype=np.int64),
            opinion_distributions=state.opinion_distributions(),
            bias_before=bias_before,
            bias_after=bias_after,
            messages_sent=histograms.sum(axis=1, dtype=np.int64),
            consensus_after=consensus_after,
        )
