"""The noisy plurality-consensus problem (Theorem 2).

An initial set ``S`` of nodes hold opinions in ``{1, …, k}`` (the rest are
undecided); the goal is that every node eventually adopts the *plurality*
opinion — the opinion initially supported by more nodes than any other, not
necessarily by an absolute majority.  Theorem 2 requires
``|S| = Omega(log n / eps^2)`` and an initial plurality bias of
``Omega(sqrt(log n / |S|))`` relative to ``|S|``.

Note the bias convention: the paper's Theorem 2 measures the bias *within*
``S`` (an ``Omega(sqrt(log n / |S|))`` advantage among the opinionated
nodes), while Definition 1's distribution bias is relative to all ``n``
nodes.  :class:`PluralityInstance` exposes both views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.protocol import ProtocolResult, TwoStageProtocol
from repro.core.schedule import ProtocolSchedule
from repro.core.state import PopulationState
from repro.noise.matrix import NoiseMatrix
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import require_positive_int

__all__ = ["PluralityConsensus", "PluralityInstance"]


@dataclass(frozen=True)
class PluralityInstance:
    """A plurality-consensus problem instance.

    Attributes
    ----------
    num_nodes:
        Population size ``n``.
    num_opinions:
        Number of possible opinions ``k``.
    opinion_counts:
        ``opinion_counts[i]`` nodes initially support opinion ``i``
        (the sets ``A_i``); nodes not covered are undecided.
    """

    num_nodes: int
    num_opinions: int
    opinion_counts: Dict[int, int]

    def __post_init__(self) -> None:
        total = sum(self.opinion_counts.values())
        if total > self.num_nodes:
            raise ValueError(
                f"initial opinion counts sum to {total} > n = {self.num_nodes}"
            )
        if total == 0:
            raise ValueError("at least one node must hold an opinion initially")
        for opinion, count in self.opinion_counts.items():
            if not (1 <= opinion <= self.num_opinions):
                raise ValueError(
                    f"opinion {opinion} outside [1, {self.num_opinions}]"
                )
            if count < 0:
                raise ValueError(f"count for opinion {opinion} must be >= 0")

    @property
    def support_size(self) -> int:
        """``|S|`` — the number of initially opinionated nodes."""
        return int(sum(self.opinion_counts.values()))

    def plurality_opinion(self) -> int:
        """The initially most supported opinion (smallest label on ties)."""
        return min(
            self.opinion_counts,
            key=lambda opinion: (-self.opinion_counts[opinion], opinion),
        )

    def plurality_bias_within_support(self) -> float:
        """The Theorem-2 bias: ``(|A_m| - max_{i != m}|A_i|) / |S|``."""
        counts = sorted(self.opinion_counts.values(), reverse=True)
        top = counts[0]
        runner_up = counts[1] if len(counts) > 1 else 0
        return (top - runner_up) / self.support_size

    def plurality_bias_global(self) -> float:
        """The Definition-1 bias measured over all ``n`` nodes."""
        counts = sorted(self.opinion_counts.values(), reverse=True)
        top = counts[0]
        runner_up = counts[1] if len(counts) > 1 else 0
        return (top - runner_up) / self.num_nodes

    def initial_state(self, random_state: RandomState = None) -> PopulationState:
        """Materialize the instance as a population state."""
        return PopulationState.from_counts(
            self.num_nodes, self.opinion_counts, self.num_opinions, random_state
        )

    @classmethod
    def from_support_fractions(
        cls,
        num_nodes: int,
        support_size: int,
        fractions: Sequence[float],
    ) -> "PluralityInstance":
        """Build an instance from ``|S|`` and the opinion shares within ``S``.

        ``fractions[i]`` is the share of ``S`` supporting opinion ``i + 1``;
        shares must sum to 1 (up to rounding).  Rounding slack goes to the
        plurality opinion so the intended plurality is never lost.
        """
        num_nodes = require_positive_int(num_nodes, "num_nodes")
        support_size = require_positive_int(support_size, "support_size")
        if support_size > num_nodes:
            raise ValueError(
                f"support_size {support_size} exceeds num_nodes {num_nodes}"
            )
        shares = np.asarray(fractions, dtype=float)
        if shares.ndim != 1 or shares.size < 1:
            raise ValueError("fractions must be a non-empty vector")
        if np.any(shares < 0) or abs(shares.sum() - 1.0) > 1e-6:
            raise ValueError("fractions must be non-negative and sum to 1")
        counts = np.floor(shares * support_size).astype(np.int64)
        counts[int(np.argmax(shares))] += support_size - int(counts.sum())
        opinion_counts = {
            index + 1: int(count) for index, count in enumerate(counts) if count > 0
        }
        return cls(
            num_nodes=num_nodes,
            num_opinions=shares.size,
            opinion_counts=opinion_counts,
        )


class PluralityConsensus:
    """Solve noisy plurality consensus with the paper's two-stage protocol.

    Stage 1 lets the initially opinionated set ``S`` spread opinions to the
    whole population (preserving the plurality bias); Stage 2 amplifies the
    bias until consensus.  When ``S`` already covers every node, Stage 1
    degenerates to a short warm-up and the work happens in Stage 2.

    Parameters
    ----------
    instance:
        The problem instance.
    noise:
        The noise matrix (must have ``instance.num_opinions`` opinions).
    epsilon:
        The majority-preservation parameter used for the schedule.
    """

    def __init__(
        self,
        instance: PluralityInstance,
        noise: NoiseMatrix,
        epsilon: float,
        *,
        schedule: Optional[ProtocolSchedule] = None,
        process: str = "push",
        random_state: RandomState = None,
        round_scale: float = 1.0,
    ) -> None:
        if noise.num_opinions != instance.num_opinions:
            raise ValueError(
                f"noise matrix has {noise.num_opinions} opinions, expected "
                f"{instance.num_opinions}"
            )
        self.instance = instance
        self._rng = as_generator(random_state)
        self.protocol = TwoStageProtocol(
            instance.num_nodes,
            noise,
            schedule=schedule,
            epsilon=epsilon,
            process=process,
            random_state=self._rng,
            round_scale=round_scale,
        )

    def run(self, *, stop_at_consensus: bool = False) -> ProtocolResult:
        """Run the protocol on a fresh realization of the instance."""
        initial_state = self.instance.initial_state(self._rng)
        return self.protocol.run(
            initial_state,
            target_opinion=self.instance.plurality_opinion(),
            stop_at_consensus=stop_at_consensus,
        )
