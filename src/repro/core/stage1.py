"""Stage 1 of the protocol: spreading the rumor while preserving the bias.

Rule of Stage 1 (paper, Section 3.1.1).  During each phase:

* every node that already supports an opinion at the beginning of the phase
  pushes that opinion in every round of the phase (opinionated nodes never
  change opinion during Stage 1);
* every undecided node that receives at least one opinion during the phase
  adopts, at the end of the phase, one of the received opinions chosen
  uniformly at random counting multiplicities (realizable with a capacity-1
  reservoir, so no unbounded memory is needed);
* undecided nodes never push.

Lemma 4 states that after Stage 1 all nodes are opinionated w.h.p. and the
opinion distribution is ``Omega(sqrt(log n / n))``-biased toward the correct
opinion; experiments E3 and E4 verify this and the per-phase growth claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.schedule import Stage1Schedule
from repro.core.state import EnsembleCountsState, EnsembleState, PopulationState
from repro.network.balls_bins import CountsDeliveryModel
from repro.network.delivery import (
    deliver_ensemble_phase,
    deliver_phase,
    supports_ensemble_delivery,
    supports_population_delivery,
)
from repro.utils.rng import (
    EnsembleRandomState,
    RandomState,
    as_generator,
    normalize_ensemble_random_state,
)

__all__ = [
    "Stage1Executor",
    "Stage1PhaseRecord",
    "EnsembleStage1Executor",
    "EnsembleStage1PhaseRecord",
    "CountsStage1Executor",
]


@dataclass(frozen=True)
class Stage1PhaseRecord:
    """State snapshot at the end of one Stage-1 phase.

    Attributes
    ----------
    phase_index:
        Phase number (0-based; the paper's phase ``j``).
    num_rounds:
        Number of rounds the phase lasted.
    opinionated_before, opinionated_after:
        Number of opinionated nodes at the beginning and end of the phase.
    newly_opinionated:
        Number of undecided nodes that adopted an opinion at the end of the
        phase (the paper's ``|S_j|``).
    opinion_distribution:
        ``c(tau_j)`` — per-opinion fraction of all nodes after the phase.
    bias:
        Bias of ``c(tau_j)`` toward the tracked opinion ``m`` (``None`` when
        no opinion is tracked).
    messages_sent:
        Total messages pushed during the phase.
    """

    phase_index: int
    num_rounds: int
    opinionated_before: int
    opinionated_after: int
    newly_opinionated: int
    opinion_distribution: np.ndarray
    bias: Optional[float]
    messages_sent: int


class Stage1Executor:
    """Run Stage 1 of the protocol on a delivery engine.

    Parameters
    ----------
    engine:
        A delivery engine — normally the :class:`~repro.network.push_model.
        UniformPushModel` (process O), but the balls-into-bins and Poissonized
        engines (the E8 experiment runs the protocol under all three) and the
        topology-aware :class:`~repro.network.topology.GraphPushModel` are
        accepted too.  The engine must expose either
        ``run_phase_from_senders`` or ``run_phase_from_population``.
    schedule:
        The Stage-1 phase schedule.
    random_state:
        Randomness used for the end-of-phase uniform opinion adoption.
    """

    def __init__(
        self,
        engine,
        schedule: Stage1Schedule,
        random_state: RandomState = None,
    ) -> None:
        if not (
            hasattr(engine, "run_phase_from_senders")
            or supports_population_delivery(engine)
        ):
            raise TypeError(
                "engine must expose run_phase_from_senders or "
                "run_phase_from_population"
            )
        self.engine = engine
        self.schedule = schedule
        self._rng = as_generator(random_state)

    def run(
        self,
        state: PopulationState,
        *,
        track_opinion: Optional[int] = None,
    ) -> Tuple[PopulationState, List[Stage1PhaseRecord]]:
        """Execute every Stage-1 phase, returning the final state and history.

        Parameters
        ----------
        state:
            Initial population state; it is not modified (a copy is evolved).
        track_opinion:
            The opinion ``m`` whose bias is recorded per phase (defaults to
            the initial plurality opinion, if any).

        Returns
        -------
        (final_state, records):
            The population state after the last phase and one
            :class:`Stage1PhaseRecord` per phase.
        """
        current = state.copy()
        if track_opinion is None:
            plurality = current.plurality_opinion()
            track_opinion = plurality if plurality > 0 else None
        records: List[Stage1PhaseRecord] = []
        for phase_index, num_rounds in enumerate(self.schedule.phase_lengths):
            record = self.run_phase(
                current, phase_index, num_rounds, track_opinion=track_opinion
            )
            records.append(record)
        return current, records

    def run_phase(
        self,
        state: PopulationState,
        phase_index: int,
        num_rounds: int,
        *,
        track_opinion: Optional[int] = None,
    ) -> Stage1PhaseRecord:
        """Execute a single Stage-1 phase, mutating ``state`` in place."""
        opinionated_before = state.opinionated_count()
        if opinionated_before > 0:
            received = deliver_phase(self.engine, state.opinions, num_rounds)
            # Only undecided nodes act on what they received; each adopts one
            # received opinion u.a.r. (counting multiplicities) at phase end.
            adopted = received.uniform_opinion_choice(self._rng)
            undecided = ~state.opinionated_mask()
            adopters = undecided & (adopted > 0)
            state.opinions[adopters] = adopted[adopters]
            newly_opinionated = int(np.count_nonzero(adopters))
            messages_sent = received.total_messages()
        else:
            newly_opinionated = 0
            messages_sent = 0
        bias = (
            state.bias_toward(track_opinion) if track_opinion is not None else None
        )
        return Stage1PhaseRecord(
            phase_index=phase_index,
            num_rounds=num_rounds,
            opinionated_before=opinionated_before,
            opinionated_after=state.opinionated_count(),
            newly_opinionated=newly_opinionated,
            opinion_distribution=state.opinion_distribution(),
            bias=bias,
            messages_sent=messages_sent,
        )


@dataclass(frozen=True)
class EnsembleStage1PhaseRecord:
    """Per-trial state snapshots at the end of one batched Stage-1 phase.

    The fields mirror :class:`Stage1PhaseRecord` with a leading trial axis:
    scalars become ``(R,)`` arrays and the distribution becomes ``(R, k)``.
    """

    phase_index: int
    num_rounds: int
    opinionated_before: np.ndarray
    opinionated_after: np.ndarray
    newly_opinionated: np.ndarray
    opinion_distributions: np.ndarray
    bias: Optional[np.ndarray]
    messages_sent: np.ndarray


class EnsembleStage1Executor:
    """Run Stage 1 for ``R`` independent trials with batched phase delivery.

    The executor mirrors :class:`Stage1Executor` but evolves an
    :class:`~repro.core.state.EnsembleState`: every phase delivers all
    trials' messages through the engine's batched entry point and applies
    the end-of-phase adoption rule to the whole ``(R, n)`` batch at once.
    Trials never interact — a trial's evolution depends only on its own row
    and (in per-trial randomness mode) its own generator, which is what the
    batched-equals-sequential equivalence tests rely on.

    Parameters
    ----------
    engine:
        A delivery engine exposing ``run_ensemble_phase_from_senders``
        (processes O, B and P all do).
    schedule:
        The Stage-1 phase schedule, shared by every trial.
    random_state:
        One shared randomness source, or a sequence with one source per
        trial (then trial ``r`` consumes draws from its own generator only).
    """

    def __init__(
        self,
        engine,
        schedule: Stage1Schedule,
        random_state: EnsembleRandomState = None,
    ) -> None:
        if not supports_ensemble_delivery(engine):
            raise TypeError(
                "engine must expose run_ensemble_phase_from_senders"
            )
        self.engine = engine
        self.schedule = schedule
        self._random_state = normalize_ensemble_random_state(random_state)

    def run(
        self,
        state: EnsembleState,
        *,
        track_opinion: Optional[int] = None,
    ) -> Tuple[EnsembleState, List[EnsembleStage1PhaseRecord]]:
        """Execute every Stage-1 phase on a copy of ``state``.

        ``track_opinion`` defaults to the plurality opinion of the pooled
        initial counts (summed over trials), matching the single-trial
        executor on homogeneous ensembles.
        """
        current = state.copy()
        if track_opinion is None:
            pooled = current.pooled_plurality_opinion()
            track_opinion = pooled if pooled > 0 else None
        records: List[EnsembleStage1PhaseRecord] = []
        for phase_index, num_rounds in enumerate(self.schedule.phase_lengths):
            record = self.run_phase(
                current, phase_index, num_rounds, track_opinion=track_opinion
            )
            records.append(record)
        return current, records

    def run_phase(
        self,
        state: EnsembleState,
        phase_index: int,
        num_rounds: int,
        *,
        track_opinion: Optional[int] = None,
    ) -> EnsembleStage1PhaseRecord:
        """Execute a single batched Stage-1 phase, mutating ``state`` in place."""
        opinionated_before = state.opinionated_counts()
        received = deliver_ensemble_phase(
            self.engine, state.opinions, num_rounds, self._random_state
        )
        # Only undecided nodes act on what they received; each adopts one
        # received opinion u.a.r. (counting multiplicities) at phase end.
        adopted = received.uniform_opinion_choice(self._random_state)
        undecided = ~state.opinionated_mask()
        adopters = undecided & (adopted > 0)
        state.opinions[adopters] = adopted[adopters]
        bias = (
            state.bias_toward(track_opinion) if track_opinion is not None else None
        )
        return EnsembleStage1PhaseRecord(
            phase_index=phase_index,
            num_rounds=num_rounds,
            opinionated_before=opinionated_before,
            opinionated_after=state.opinionated_counts(),
            newly_opinionated=np.count_nonzero(adopters, axis=1).astype(np.int64),
            opinion_distributions=state.opinion_distributions(),
            bias=bias,
            messages_sent=received.total_messages(),
        )


# reprolint: counts-tier
class CountsStage1Executor:
    """Run Stage 1 on ``(R, k)`` sufficient statistics — never ``(R, n)``.

    The counts-engine executor: each phase reduces to its message histogram
    (``num_rounds`` balls per opinionated node, Claim 1), applies the noise
    re-coloring *exactly* (one multinomial per color), and draws the
    end-of-phase adoptions of the undecided nodes from the closed-form
    per-node outcome law of the Poissonized throw (Definition 4) — one
    multinomial per trial.  Per-phase cost is ``O(k^2)`` per trial,
    independent of ``n``; see
    :class:`~repro.network.balls_bins.CountsDeliveryModel` for the
    exactness discussion.

    Parameters
    ----------
    delivery:
        A :class:`~repro.network.balls_bins.CountsDeliveryModel`.
    schedule:
        The Stage-1 phase schedule, shared by every trial.
    random_state:
        One shared randomness source, or a sequence with one source per
        trial (trial ``r`` then consumes draws from its own source only).
    """

    def __init__(
        self,
        delivery: CountsDeliveryModel,
        schedule: Stage1Schedule,
        random_state: EnsembleRandomState = None,
    ) -> None:
        if not isinstance(delivery, CountsDeliveryModel):
            raise TypeError(
                "delivery must be a CountsDeliveryModel, got "
                f"{type(delivery).__name__}"
            )
        self.delivery = delivery
        self.schedule = schedule
        self._random_state = normalize_ensemble_random_state(random_state)

    def run(
        self,
        state: EnsembleCountsState,
        *,
        track_opinion: Optional[int] = None,
    ) -> Tuple[EnsembleCountsState, List[EnsembleStage1PhaseRecord]]:
        """Execute every Stage-1 phase on a copy of ``state``."""
        current = state.copy()
        if track_opinion is None:
            pooled = current.pooled_plurality_opinion()
            track_opinion = pooled if pooled > 0 else None
        records: List[EnsembleStage1PhaseRecord] = []
        for phase_index, num_rounds in enumerate(self.schedule.phase_lengths):
            record = self.run_phase(
                current, phase_index, num_rounds, track_opinion=track_opinion
            )
            records.append(record)
        return current, records

    def run_phase(
        self,
        state: EnsembleCountsState,
        phase_index: int,
        num_rounds: int,
        *,
        track_opinion: Optional[int] = None,
    ) -> EnsembleStage1PhaseRecord:
        """Execute a single counts Stage-1 phase, mutating ``state`` in place."""
        opinionated_before = state.opinionated_counts()
        histograms = self.delivery.phase_histograms(
            state.counts, num_rounds, self._random_state
        )
        # The histogram is validated once here (recolor); the adoption
        # sampler reuses the validated post-noise array without re-checking.
        noisy = self.delivery.recolor(histograms, self._random_state)
        adopted = self.delivery.sample_adoptions(
            noisy, state.undecided_counts(), self._random_state, validate=False
        )
        state.counts += adopted[:, 1:]
        bias = (
            state.bias_toward(track_opinion) if track_opinion is not None else None
        )
        return EnsembleStage1PhaseRecord(
            phase_index=phase_index,
            num_rounds=num_rounds,
            opinionated_before=opinionated_before,
            opinionated_after=state.opinionated_counts(),
            newly_opinionated=adopted[:, 1:].sum(axis=1, dtype=np.int64),
            opinion_distributions=state.opinion_distributions(),
            bias=bias,
            messages_sent=histograms.sum(axis=1, dtype=np.int64),
        )
