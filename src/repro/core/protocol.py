"""The complete two-stage protocol (Stage 1 followed by Stage 2).

:class:`TwoStageProtocol` wires together the schedule, the delivery engine
(process O by default), and the two stage executors, and reports a
:class:`ProtocolResult` containing the final state, the per-phase history of
both stages, and the headline outcome (did every node adopt the correct
opinion, and after how many rounds).

:class:`EnsembleProtocol` is the batched counterpart: it runs ``R``
independent trials of the same protocol as one vectorized computation over
an ``(R, n)`` opinion matrix, which is how repeated-trial experiments get
multi-fold speedups over a Python-level loop of :class:`TwoStageProtocol`
runs.  :meth:`TwoStageProtocol.run_ensemble` is a convenience shortcut.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.core.schedule import ProtocolSchedule
from repro.core.stage1 import (
    CountsStage1Executor,
    EnsembleStage1Executor,
    EnsembleStage1PhaseRecord,
    Stage1Executor,
    Stage1PhaseRecord,
)
from repro.core.stage2 import (
    CountsStage2Executor,
    EnsembleStage2Executor,
    EnsembleStage2PhaseRecord,
    Stage2Executor,
    Stage2PhaseRecord,
)
from repro.core.state import (
    CountsState,
    EnsembleCountsState,
    EnsembleState,
    PopulationState,
    coerce_to_ensemble_counts,
)
from repro.network.balls_bins import CountsDeliveryModel
from repro.network.delivery import make_delivery_engine
from repro.noise.matrix import NoiseMatrix
from repro.utils.rng import (
    EnsembleRandomState,
    RandomState,
    as_generator,
    resolve_trial_randomness,
)

__all__ = [
    "TwoStageProtocol",
    "ProtocolResult",
    "EnsembleProtocol",
    "EnsembleResult",
    "CountsProtocol",
    "CountsProtocolTask",
    "run_heterogeneous_counts_protocol",
    "make_engine",
]


def make_engine(
    process: str,
    num_nodes: int,
    noise: NoiseMatrix,
    random_state: RandomState = None,
):
    """Deprecated alias of
    :func:`repro.network.delivery.make_delivery_engine`.

    Kept for backwards compatibility; new code should build engines through
    the :mod:`repro.sim` facade (or call ``make_delivery_engine`` directly).
    The returned engine is identical to what this function always produced,
    so existing seeded runs stay bitwise reproducible.
    """
    import warnings

    warnings.warn(
        "repro.core.protocol.make_engine is deprecated; use "
        "repro.network.delivery.make_delivery_engine or the repro.sim "
        "facade (simulate(Scenario(...))) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return make_delivery_engine(process, num_nodes, noise, random_state)


@dataclass
class ProtocolResult:
    """Outcome of a full protocol execution.

    Attributes
    ----------
    final_state:
        The population state after the last executed phase.
    target_opinion:
        The correct/plurality opinion ``m`` the run was tracking.
    success:
        ``True`` iff every node supports ``target_opinion`` at the end.
    total_rounds:
        Total number of communication rounds executed.
    stage1_records, stage2_records:
        Per-phase histories of the two stages.
    """

    final_state: PopulationState
    target_opinion: int
    success: bool
    total_rounds: int
    stage1_records: List[Stage1PhaseRecord] = field(default_factory=list)
    stage2_records: List[Stage2PhaseRecord] = field(default_factory=list)

    @property
    def stage1_rounds(self) -> int:
        """Rounds spent in Stage 1."""
        return int(sum(record.num_rounds for record in self.stage1_records))

    @property
    def stage2_rounds(self) -> int:
        """Rounds spent in Stage 2."""
        return int(sum(record.num_rounds for record in self.stage2_records))

    @property
    def final_bias(self) -> float:
        """Bias of the final distribution toward the target opinion."""
        return self.final_state.bias_toward(self.target_opinion)

    @property
    def bias_after_stage1(self) -> Optional[float]:
        """Bias toward the target opinion at the end of Stage 1."""
        if not self.stage1_records:
            return None
        return self.stage1_records[-1].bias

    @property
    def opinionated_after_stage1(self) -> Optional[int]:
        """Number of opinionated nodes at the end of Stage 1."""
        if not self.stage1_records:
            return None
        return self.stage1_records[-1].opinionated_after

    def bias_trajectory(self) -> np.ndarray:
        """The per-phase bias toward the target opinion over both stages."""
        values = []
        for record in self.stage1_records:
            if record.bias is not None:
                values.append(record.bias)
        for record in self.stage2_records:
            if record.bias_after is not None:
                values.append(record.bias_after)
        return np.asarray(values, dtype=float)

    def correct_fraction(self) -> float:
        """Fraction of nodes supporting the target opinion at the end."""
        return float(
            np.count_nonzero(self.final_state.opinions == self.target_opinion)
            / self.final_state.num_nodes
        )


class TwoStageProtocol:
    """The paper's protocol: Stage 1 (spread) followed by Stage 2 (amplify).

    Parameters
    ----------
    num_nodes:
        Population size ``n``.
    noise:
        The noise matrix ``P`` of the channel.
    schedule:
        The phase schedule; when omitted, a default schedule is built from
        ``num_nodes``, ``epsilon`` and the initial state at run time.
    epsilon:
        The noise parameter used to build the default schedule; mandatory
        when ``schedule`` is omitted.
    process:
        Delivery process name (``"push"``, ``"balls_bins"`` or ``"poisson"``).
    engine:
        A pre-built delivery engine to use instead of ``process`` — e.g. a
        :class:`~repro.network.topology.GraphPushModel` for non-complete
        topologies.  Must expose ``run_phase_from_senders`` or
        ``run_phase_from_population``.
    random_state:
        Randomness for the engine and both stages.
    round_scale:
        Multiplier for phase lengths of the default schedule.
    sampling_method, use_full_multiset:
        Passed through to :class:`~repro.core.stage2.Stage2Executor`
        (ablation knobs).
    """

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        *,
        schedule: Optional[ProtocolSchedule] = None,
        epsilon: Optional[float] = None,
        process: str = "push",
        engine=None,
        random_state: RandomState = None,
        round_scale: float = 1.0,
        sampling_method: str = "without_replacement",
        use_full_multiset: bool = False,
    ) -> None:
        if schedule is None and epsilon is None:
            raise ValueError("either schedule or epsilon must be provided")
        self.num_nodes = int(num_nodes)
        self.noise = noise
        self.epsilon = epsilon
        self.process = process
        self.engine = engine
        if engine is not None:
            engine_nodes = getattr(engine, "num_nodes", None)
            if engine_nodes is not None and int(engine_nodes) != self.num_nodes:
                raise ValueError(
                    f"engine is built for {engine_nodes} nodes but the protocol "
                    f"was asked to run on {self.num_nodes}"
                )
        self.round_scale = round_scale
        self.sampling_method = sampling_method
        self.use_full_multiset = use_full_multiset
        self._schedule = schedule
        self._rng = as_generator(random_state)

    def build_schedule(self, initial_opinionated: int = 1) -> ProtocolSchedule:
        """The schedule used by :meth:`run` (built lazily when not supplied)."""
        if self._schedule is not None:
            return self._schedule
        return ProtocolSchedule.for_population(
            self.num_nodes,
            float(self.epsilon),
            initial_opinionated=max(1, initial_opinionated),
            round_scale=self.round_scale,
        )

    def run(
        self,
        initial_state: PopulationState,
        *,
        target_opinion: Optional[int] = None,
        stop_at_consensus: bool = False,
    ) -> ProtocolResult:
        """Execute the protocol from ``initial_state``.

        Parameters
        ----------
        initial_state:
            The starting population (rumor source or plurality instance).
        target_opinion:
            The correct opinion ``m``; defaults to the initial plurality.
        stop_at_consensus:
            Stop Stage 2 early once consensus on ``target_opinion`` is
            reached (the success criterion is unaffected).
        """
        if initial_state.num_nodes != self.num_nodes:
            raise ValueError(
                f"initial_state has {initial_state.num_nodes} nodes but the "
                f"protocol was built for {self.num_nodes}"
            )
        if initial_state.num_opinions != self.noise.num_opinions:
            raise ValueError(
                "initial_state and noise matrix disagree on the number of "
                f"opinions ({initial_state.num_opinions} vs {self.noise.num_opinions})"
            )
        if target_opinion is None:
            target_opinion = initial_state.plurality_opinion()
        if target_opinion <= 0:
            raise ValueError(
                "target_opinion could not be inferred: the initial state has "
                "no opinionated node"
            )
        schedule = self.build_schedule(initial_state.opinionated_count())
        if self.engine is not None:
            engine = self.engine
        else:
            engine = make_delivery_engine(
                self.process, self.num_nodes, self.noise, self._rng
            )
        stage1 = Stage1Executor(engine, schedule.stage1, self._rng)
        state_after_stage1, stage1_records = stage1.run(
            initial_state, track_opinion=target_opinion
        )
        stage2 = Stage2Executor(
            engine,
            schedule.stage2,
            self._rng,
            sampling_method=self.sampling_method,
            use_full_multiset=self.use_full_multiset,
        )
        final_state, stage2_records = stage2.run(
            state_after_stage1,
            track_opinion=target_opinion,
            stop_at_consensus=stop_at_consensus,
        )
        total_rounds = int(
            sum(record.num_rounds for record in stage1_records)
            + sum(record.num_rounds for record in stage2_records)
        )
        return ProtocolResult(
            final_state=final_state,
            target_opinion=target_opinion,
            success=final_state.has_consensus_on(target_opinion),
            total_rounds=total_rounds,
            stage1_records=stage1_records,
            stage2_records=stage2_records,
        )

    def run_ensemble(
        self,
        initial_state: Union[PopulationState, EnsembleState],
        num_trials: Optional[int] = None,
        *,
        target_opinion: Optional[int] = None,
        rng_mode: str = "per_trial",
    ) -> "EnsembleResult":
        """Run ``num_trials`` independent trials as one batched computation.

        Convenience shortcut constructing an :class:`EnsembleProtocol` with
        this protocol's parameters; see there for the full contract.
        """
        ensemble = EnsembleProtocol(
            self.num_nodes,
            self.noise,
            schedule=self._schedule,
            epsilon=self.epsilon,
            process=self.process,
            engine=self.engine,
            random_state=self._rng,
            rng_mode=rng_mode,
            round_scale=self.round_scale,
            sampling_method=self.sampling_method,
            use_full_multiset=self.use_full_multiset,
        )
        return ensemble.run(
            initial_state, num_trials, target_opinion=target_opinion
        )


@dataclass
class EnsembleResult:
    """Outcome of a batched multi-trial protocol execution.

    Attributes
    ----------
    final_states:
        The ensemble state after the last phase (one row per trial).
    target_opinion:
        The correct/plurality opinion ``m`` every trial was tracking.
    successes:
        Boolean ``(R,)`` array; entry ``r`` is ``True`` iff every node of
        trial ``r`` supports ``target_opinion`` at the end.
    total_rounds:
        Communication rounds executed (identical for every trial — the
        schedule is shared and the batch never stops early).
    stage1_records, stage2_records:
        Per-phase batched histories of the two stages.
    """

    final_states: EnsembleState
    target_opinion: int
    successes: np.ndarray
    total_rounds: int
    stage1_records: List[EnsembleStage1PhaseRecord] = field(default_factory=list)
    stage2_records: List[EnsembleStage2PhaseRecord] = field(default_factory=list)

    @property
    def num_trials(self) -> int:
        """Number of trials ``R`` in the batch."""
        return self.final_states.num_trials

    @property
    def success_count(self) -> int:
        """Number of trials that reached consensus on the target opinion."""
        return int(np.count_nonzero(self.successes))

    @property
    def success_rate(self) -> float:
        """Empirical success probability over the batch."""
        return self.success_count / self.num_trials

    @property
    def stage1_rounds(self) -> int:
        """Rounds spent in Stage 1."""
        return int(sum(record.num_rounds for record in self.stage1_records))

    @property
    def stage2_rounds(self) -> int:
        """Rounds spent in Stage 2."""
        return int(sum(record.num_rounds for record in self.stage2_records))

    @property
    def final_biases(self) -> np.ndarray:
        """Per-trial bias of the final distribution toward the target."""
        return self.final_states.bias_toward(self.target_opinion)

    @property
    def biases_after_stage1(self) -> Optional[np.ndarray]:
        """Per-trial bias toward the target at the end of Stage 1."""
        if not self.stage1_records:
            return None
        return self.stage1_records[-1].bias

    @property
    def opinionated_after_stage1(self) -> Optional[np.ndarray]:
        """Per-trial number of opinionated nodes at the end of Stage 1."""
        if not self.stage1_records:
            return None
        return self.stage1_records[-1].opinionated_after

    def correct_fractions(self) -> np.ndarray:
        """Per-trial fraction of nodes supporting the target at the end."""
        return self.final_states.correct_fractions(self.target_opinion)

    def summary(self) -> dict:
        """Headline statistics of the batch."""
        return {
            "num_trials": self.num_trials,
            "target_opinion": self.target_opinion,
            "success_rate": self.success_rate,
            "total_rounds": self.total_rounds,
            "mean_final_bias": float(self.final_biases.mean()),
            "mean_correct_fraction": float(self.correct_fractions().mean()),
        }


class EnsembleProtocol:
    """Run ``R`` independent two-stage protocol trials as one vectorized batch.

    Every trial follows exactly the protocol of :class:`TwoStageProtocol`
    (same schedule, same per-phase rules); the trial axis is simply carried
    through every numpy operation, and the per-round delivery loop collapses
    into per-phase sampling of the balls-into-bins reformulation (Claim 1),
    so the wall-clock cost grows far slower than linearly in ``R``.

    Parameters
    ----------
    num_nodes, noise, schedule, epsilon, process, engine, round_scale,
    sampling_method, use_full_multiset:
        As in :class:`TwoStageProtocol`.  ``engine`` (or ``process``) must be
        an anonymous complete-graph engine exposing
        ``run_ensemble_phase_from_senders``; topology-aware engines must use
        the sequential protocol.
    random_state:
        Either a single :data:`~repro.utils.rng.RandomState` or a sequence
        with one entry per trial.  With a sequence, trial ``r`` consumes
        randomness exclusively from its own source — a batched run is then
        *bitwise identical* to ``R`` separate batch-size-1 runs with the same
        per-trial sources (the equivalence the test-suite checks).
    rng_mode:
        ``"per_trial"`` (default): when ``random_state`` is a single source,
        spawn one independent child generator per trial, preserving the
        trial-by-trial reproducibility guarantee.  ``"shared"``: drive the
        whole batch from one generator with fully batched draws — slightly
        faster, but individual trials are not reproducible in isolation.
    """

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        *,
        schedule: Optional[ProtocolSchedule] = None,
        epsilon: Optional[float] = None,
        process: str = "push",
        engine=None,
        random_state: EnsembleRandomState = None,
        rng_mode: str = "per_trial",
        round_scale: float = 1.0,
        sampling_method: str = "without_replacement",
        use_full_multiset: bool = False,
    ) -> None:
        if schedule is None and epsilon is None:
            raise ValueError("either schedule or epsilon must be provided")
        if rng_mode not in {"per_trial", "shared"}:
            raise ValueError(
                f"rng_mode must be 'per_trial' or 'shared', got {rng_mode!r}"
            )
        self.num_nodes = int(num_nodes)
        self.noise = noise
        self.epsilon = epsilon
        self.process = process
        self.engine = engine
        if engine is not None:
            engine_nodes = getattr(engine, "num_nodes", None)
            if engine_nodes is not None and int(engine_nodes) != self.num_nodes:
                raise ValueError(
                    f"engine is built for {engine_nodes} nodes but the protocol "
                    f"was asked to run on {self.num_nodes}"
                )
        self.rng_mode = rng_mode
        self.round_scale = round_scale
        self.sampling_method = sampling_method
        self.use_full_multiset = use_full_multiset
        self._schedule = schedule
        self._random_state = random_state

    def build_schedule(self, initial_opinionated: int = 1) -> ProtocolSchedule:
        """The schedule used by :meth:`run` (built lazily when not supplied)."""
        if self._schedule is not None:
            return self._schedule
        return ProtocolSchedule.for_population(
            self.num_nodes,
            float(self.epsilon),
            initial_opinionated=max(1, initial_opinionated),
            round_scale=self.round_scale,
        )

    def _trial_randomness(self, num_trials: int) -> EnsembleRandomState:
        return resolve_trial_randomness(
            self._random_state, num_trials, self.rng_mode
        )

    def run(
        self,
        initial_state: Union[PopulationState, EnsembleState],
        num_trials: Optional[int] = None,
        *,
        target_opinion: Optional[int] = None,
    ) -> EnsembleResult:
        """Execute ``num_trials`` trials from ``initial_state``.

        Parameters
        ----------
        initial_state:
            Either one :class:`PopulationState` (tiled into ``num_trials``
            identical starting points — the usual repeated-trial setting) or
            a pre-built :class:`EnsembleState` with per-trial initial
            conditions (``num_trials`` is then inferred).
        num_trials:
            Number of trials ``R``; required when ``initial_state`` is a
            single population.
        target_opinion:
            The correct opinion ``m``; defaults to the plurality opinion of
            the pooled initial counts.
        """
        if isinstance(initial_state, PopulationState):
            if num_trials is None:
                raise ValueError(
                    "num_trials is required when initial_state is a single "
                    "PopulationState"
                )
            ensemble = EnsembleState.from_state(initial_state, num_trials)
        elif isinstance(initial_state, EnsembleState):
            if num_trials is not None and num_trials != initial_state.num_trials:
                raise ValueError(
                    f"num_trials = {num_trials} disagrees with the ensemble's "
                    f"{initial_state.num_trials} trials"
                )
            ensemble = initial_state.copy()
        else:
            raise TypeError(
                "initial_state must be a PopulationState or an EnsembleState, "
                f"got {type(initial_state).__name__}"
            )
        if ensemble.num_nodes != self.num_nodes:
            raise ValueError(
                f"initial state has {ensemble.num_nodes} nodes but the "
                f"protocol was built for {self.num_nodes}"
            )
        if ensemble.num_opinions != self.noise.num_opinions:
            raise ValueError(
                "initial state and noise matrix disagree on the number of "
                f"opinions ({ensemble.num_opinions} vs {self.noise.num_opinions})"
            )
        if target_opinion is None:
            target_opinion = ensemble.pooled_plurality_opinion()
        if target_opinion <= 0:
            raise ValueError(
                "target_opinion could not be inferred: the initial ensemble "
                "has no opinionated node"
            )
        schedule = self.build_schedule(
            int(ensemble.opinionated_counts().min())
        )
        if self.engine is not None:
            engine = self.engine
        else:
            engine = make_delivery_engine(
                self.process, self.num_nodes, self.noise, None
            )
        randomness = self._trial_randomness(ensemble.num_trials)
        stage1 = EnsembleStage1Executor(engine, schedule.stage1, randomness)
        state_after_stage1, stage1_records = stage1.run(
            ensemble, track_opinion=target_opinion
        )
        stage2 = EnsembleStage2Executor(
            engine,
            schedule.stage2,
            randomness,
            sampling_method=self.sampling_method,
            use_full_multiset=self.use_full_multiset,
        )
        final_states, stage2_records = stage2.run(
            state_after_stage1, track_opinion=target_opinion
        )
        total_rounds = int(
            sum(record.num_rounds for record in stage1_records)
            + sum(record.num_rounds for record in stage2_records)
        )
        return EnsembleResult(
            final_states=final_states,
            target_opinion=target_opinion,
            successes=final_states.consensus_mask(target_opinion),
            total_rounds=total_rounds,
            stage1_records=stage1_records,
            stage2_records=stage2_records,
        )


# reprolint: counts-tier
class CountsProtocol:
    """Run ``R`` protocol trials on ``(R, k)`` sufficient statistics.

    The third engine tier of the two-stage protocol: per-phase cost is
    ``O(k^2)`` per trial — *independent of the population size* — because
    both stages are driven entirely by the opinion-count vector.  Phase
    message histograms are re-colored exactly (Claim 1's balls-into-bins
    reformulation) and the bin-throwing step is summarized under the
    Poissonized process P (Definition 4), the paper's own analysis device;
    Lemma 2 bounds its distance from the real push process, and the
    engine-agreement test-suite checks the resulting statistics against the
    ``batched``/``sequential`` engines.  This is the engine that runs
    ``n = 10^6`` (and beyond) protocol ensembles in seconds.

    The constructor mirrors :class:`EnsembleProtocol` minus the delivery
    knobs that require per-node state: there is no ``process``/``engine``
    choice (delivery is always the counts model) and the Stage-2 sampling
    ablations are rejected by :class:`~repro.core.stage2.CountsStage2Executor`.

    Parameters
    ----------
    num_nodes, noise, schedule, epsilon, round_scale:
        As in :class:`TwoStageProtocol`.
    random_state, rng_mode:
        As in :class:`EnsembleProtocol` (per-trial child streams by
        default, so a counts batch is bitwise reproducible trial by trial).
    """

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        *,
        schedule: Optional[ProtocolSchedule] = None,
        epsilon: Optional[float] = None,
        random_state: EnsembleRandomState = None,
        rng_mode: str = "per_trial",
        round_scale: float = 1.0,
        delivery: Optional[CountsDeliveryModel] = None,
    ) -> None:
        if schedule is None and epsilon is None:
            raise ValueError("either schedule or epsilon must be provided")
        if rng_mode not in {"per_trial", "shared"}:
            raise ValueError(
                f"rng_mode must be 'per_trial' or 'shared', got {rng_mode!r}"
            )
        self.num_nodes = int(num_nodes)
        self.noise = noise
        self.epsilon = epsilon
        self.rng_mode = rng_mode
        self.round_scale = round_scale
        self._schedule = schedule
        self._random_state = random_state
        if delivery is None:
            delivery = CountsDeliveryModel(self.num_nodes, noise)
        elif not isinstance(delivery, CountsDeliveryModel):
            raise TypeError(
                f"delivery must be a CountsDeliveryModel, got "
                f"{type(delivery).__name__}"
            )
        # A fault-injecting delivery may span more bins than the (honest)
        # state the protocol tracks, so num_nodes equality is not enforced.
        self.delivery = delivery

    def build_schedule(self, initial_opinionated: int = 1) -> ProtocolSchedule:
        """The schedule used by :meth:`run` (built lazily when not supplied)."""
        if self._schedule is not None:
            return self._schedule
        return ProtocolSchedule.for_population(
            self.num_nodes,
            float(self.epsilon),
            initial_opinionated=max(1, initial_opinionated),
            round_scale=self.round_scale,
        )

    def _trial_randomness(self, num_trials: int) -> EnsembleRandomState:
        return resolve_trial_randomness(
            self._random_state, num_trials, self.rng_mode
        )

    def run(
        self,
        initial_state: Union[
            PopulationState, EnsembleState, CountsState, EnsembleCountsState
        ],
        num_trials: Optional[int] = None,
        *,
        target_opinion: Optional[int] = None,
    ) -> EnsembleResult:
        """Execute ``num_trials`` trials from ``initial_state``.

        The counts mirror of :meth:`EnsembleProtocol.run`; per-node initial
        states are reduced to their sufficient statistics on entry, and the
        returned :class:`EnsembleResult` carries an
        :class:`~repro.core.state.EnsembleCountsState` as ``final_states``
        (same accessor API as the batched result).
        """
        ensemble = coerce_to_ensemble_counts(initial_state, num_trials)
        if ensemble.num_nodes != self.num_nodes:
            raise ValueError(
                f"initial state has {ensemble.num_nodes} nodes but the "
                f"protocol was built for {self.num_nodes}"
            )
        if ensemble.num_opinions != self.noise.num_opinions:
            raise ValueError(
                "initial state and noise matrix disagree on the number of "
                f"opinions ({ensemble.num_opinions} vs {self.noise.num_opinions})"
            )
        if target_opinion is None:
            target_opinion = ensemble.pooled_plurality_opinion()
        if target_opinion <= 0:
            raise ValueError(
                "target_opinion could not be inferred: the initial ensemble "
                "has no opinionated node"
            )
        schedule = self.build_schedule(
            int(ensemble.opinionated_counts().min())
        )
        randomness = self._trial_randomness(ensemble.num_trials)
        stage1 = CountsStage1Executor(self.delivery, schedule.stage1, randomness)
        state_after_stage1, stage1_records = stage1.run(
            ensemble, track_opinion=target_opinion
        )
        stage2 = CountsStage2Executor(self.delivery, schedule.stage2, randomness)
        final_states, stage2_records = stage2.run(
            state_after_stage1, track_opinion=target_opinion
        )
        total_rounds = int(
            sum(record.num_rounds for record in stage1_records)
            + sum(record.num_rounds for record in stage2_records)
        )
        return EnsembleResult(
            final_states=final_states,
            target_opinion=target_opinion,
            successes=final_states.consensus_mask(target_opinion),
            total_rounds=total_rounds,
            stage1_records=stage1_records,
            stage2_records=stage2_records,
        )


# reprolint: counts-tier
@dataclass
class CountsProtocolTask:
    """One grid point of a heterogeneous counts-protocol batch.

    Carries exactly the arguments a serial per-point run would pass to
    :class:`CountsProtocol` and :meth:`CountsProtocol.run`; see
    :func:`run_heterogeneous_counts_protocol` for the equivalence contract.
    """

    num_nodes: int
    noise: NoiseMatrix
    initial_state: Union[
        PopulationState, EnsembleState, CountsState, EnsembleCountsState
    ]
    num_trials: Optional[int] = None
    epsilon: Optional[float] = None
    schedule: Optional[ProtocolSchedule] = None
    target_opinion: Optional[int] = None
    random_state: EnsembleRandomState = None
    round_scale: float = 1.0


def _block_bias(distributions: np.ndarray, target: int) -> np.ndarray:
    """Per-trial Definition-1 bias of one block toward its own target.

    Evaluates the exact expression of
    :meth:`~repro.core.state.EnsembleCountsState.bias_toward` on the block's
    rows, so merged runs record bitwise-identical biases.
    """
    if distributions.shape[1] == 1:
        return distributions[:, 0]
    rivals = distributions.copy()
    rivals[:, target - 1] = -np.inf
    return distributions[:, target - 1] - rivals.max(axis=1)


@dataclass
class _PreparedPoint:
    """A grid point resolved to the state a serial run would start from."""

    task: CountsProtocolTask
    ensemble: EnsembleCountsState
    target_opinion: int
    generators: list
    plan: list  # [("s1", phase_index, num_rounds)] + [("s2", j, nr, L)]
    slice: Optional[slice] = None
    stage1_records: list = field(default_factory=list)
    stage2_records: list = field(default_factory=list)


def _prepare_point(
    task: CountsProtocolTask, *, spawn_generators: bool = True
) -> _PreparedPoint:
    """Replicate :meth:`CountsProtocol.run`'s entry work for one point.

    ``spawn_generators=False`` skips resolving the per-trial streams —
    batched-draw runs never touch them (only the shared stream of the
    batch's first point), so spawning one child generator per trial per
    point would be pure setup waste.
    """
    if task.schedule is None and task.epsilon is None:
        raise ValueError("either schedule or epsilon must be provided")
    num_nodes = int(task.num_nodes)
    ensemble = coerce_to_ensemble_counts(task.initial_state, task.num_trials)
    if ensemble.num_nodes != num_nodes:
        raise ValueError(
            f"initial state has {ensemble.num_nodes} nodes but the "
            f"protocol was built for {num_nodes}"
        )
    if ensemble.num_opinions != task.noise.num_opinions:
        raise ValueError(
            "initial state and noise matrix disagree on the number of "
            f"opinions ({ensemble.num_opinions} vs {task.noise.num_opinions})"
        )
    target_opinion = task.target_opinion
    if target_opinion is None:
        target_opinion = ensemble.pooled_plurality_opinion()
    if target_opinion <= 0:
        raise ValueError(
            "target_opinion could not be inferred: the initial ensemble "
            "has no opinionated node"
        )
    if task.schedule is not None:
        schedule = task.schedule
    else:
        schedule = ProtocolSchedule.for_population(
            num_nodes,
            float(task.epsilon),
            initial_opinionated=max(1, int(ensemble.opinionated_counts().min())),
            round_scale=task.round_scale,
        )
    if spawn_generators:
        generators = resolve_trial_randomness(
            task.random_state, ensemble.num_trials, "per_trial"
        )
    else:
        generators = []
    plan = [
        ("s1", phase_index, int(num_rounds))
        for phase_index, num_rounds in enumerate(schedule.stage1.phase_lengths)
    ] + [
        ("s2", phase_index, int(num_rounds), int(sample_size))
        for phase_index, (num_rounds, sample_size) in enumerate(
            zip(schedule.stage2.phase_lengths, schedule.stage2.sample_sizes)
        )
    ]
    return _PreparedPoint(
        task=task,
        ensemble=ensemble,
        target_opinion=int(target_opinion),
        generators=list(generators),
        plan=plan,
    )


def _gather_submodel(parts, cache=None):
    """Gathered rows, local slices and a delivery model for one substep.

    The active point set is stable across most substeps (points retire only
    when their schedule ends), so callers pass a ``cache`` dict and the
    rows/slices/model triple is rebuilt only when the participating points
    change — the lazy-assembly rebuild that used to run every substep.
    """
    from repro.network.balls_bins import HeterogeneousCountsDeliveryModel

    key = tuple(id(point) for point in parts)
    if cache is not None:
        cached = cache.get(key)
        if cached is not None:
            return cached
    rows = []
    local_slices = []
    offset = 0
    for point in parts:
        sl = point.slice
        size = sl.stop - sl.start
        rows.append(np.arange(sl.start, sl.stop))
        local_slices.append(slice(offset, offset + size))
        offset += size
    sub_model = HeterogeneousCountsDeliveryModel(
        local_slices,
        [point.task.num_nodes for point in parts],
        [point.task.noise for point in parts],
    )
    gathered = (np.concatenate(rows), local_slices, sub_model)
    if cache is not None:
        cache[key] = gathered
    return gathered


def _substep_randomness(generators, rows):
    """The randomness a merged substep hands the delivery model.

    Per-trial mode (a list of one generator per merged row) gathers the
    active rows' own streams; batched mode (a single shared generator)
    passes the stream through untouched.
    """
    if isinstance(generators, list):
        return [generators[row] for row in rows]
    return generators


def _run_stage1_substep(counts, generators, parts, step, cache=None) -> None:
    """One merged Stage-1 phase over every block whose plan says "s1" now."""
    rows, local_slices, sub_model = _gather_submodel(parts, cache)
    num_rounds = np.repeat(
        np.asarray([point.plan[step][2] for point in parts], dtype=np.int64),
        [sl.stop - sl.start for sl in local_slices],
    )
    counts_sub = counts[rows]
    histograms = counts_sub * num_rounds[:, np.newaxis]
    gens_sub = _substep_randomness(generators, rows)
    noisy = sub_model.recolor(histograms, gens_sub)
    undecided = sub_model.num_nodes - counts_sub.sum(axis=1, dtype=np.int64)
    adopted = sub_model.sample_adoptions(noisy, undecided, gens_sub)
    new_counts = counts_sub + adopted[:, 1:]
    counts[rows] = new_counts
    for point, lsl in zip(parts, local_slices):
        _, phase_index, phase_rounds = point.plan[step]
        distributions = new_counts[lsl] / point.task.num_nodes
        point.stage1_records.append(
            EnsembleStage1PhaseRecord(
                phase_index=phase_index,
                num_rounds=phase_rounds,
                opinionated_before=counts_sub[lsl].sum(axis=1, dtype=np.int64),
                opinionated_after=new_counts[lsl].sum(axis=1, dtype=np.int64),
                newly_opinionated=adopted[lsl, 1:].sum(axis=1, dtype=np.int64),
                opinion_distributions=distributions,
                bias=_block_bias(distributions, point.target_opinion),
                messages_sent=histograms[lsl].sum(axis=1, dtype=np.int64),
            )
        )


def _run_stage2_substep(counts, generators, parts, step, cache=None) -> None:
    """One merged Stage-2 phase over every block whose plan says "s2" now."""
    rows, local_slices, sub_model = _gather_submodel(parts, cache)
    sizes = [sl.stop - sl.start for sl in local_slices]
    num_rounds = np.repeat(
        np.asarray([point.plan[step][2] for point in parts], dtype=np.int64),
        sizes,
    )
    sample_sizes = [point.plan[step][3] for point in parts]
    sample_sizes_rows = np.repeat(
        np.asarray(sample_sizes, dtype=np.int64), sizes
    )
    counts_sub = counts[rows]
    distributions_before = counts_sub / sub_model.num_nodes[:, np.newaxis]
    histograms = counts_sub * num_rounds[:, np.newaxis]
    gens_sub = _substep_randomness(generators, rows)
    noisy = sub_model.recolor(histograms, gens_sub)
    update_probability = sub_model.update_probability(noisy, sample_sizes_rows)
    undecided = sub_model.num_nodes - counts_sub.sum(axis=1, dtype=np.int64)
    group_sizes = np.concatenate([undecided[:, np.newaxis], counts_sub], axis=1)
    updaters = sub_model.sample_updaters(
        group_sizes, update_probability, gens_sub
    )
    votes = sub_model.sample_vote_counts(
        noisy,
        updaters.sum(axis=1, dtype=np.int64),
        sample_sizes,
        gens_sub,
    )
    new_counts = counts_sub + votes - updaters[:, 1:]
    counts[rows] = new_counts
    for point, lsl in zip(parts, local_slices):
        _, phase_index, phase_rounds, sample_size = point.plan[step]
        target = point.target_opinion
        distributions = new_counts[lsl] / point.task.num_nodes
        point.stage2_records.append(
            EnsembleStage2PhaseRecord(
                phase_index=phase_index,
                num_rounds=phase_rounds,
                sample_size=sample_size,
                updated_nodes=updaters[lsl].sum(axis=1, dtype=np.int64),
                opinion_distributions=distributions,
                bias_before=_block_bias(distributions_before[lsl], target),
                bias_after=_block_bias(distributions, target),
                messages_sent=histograms[lsl].sum(axis=1, dtype=np.int64),
                consensus_after=new_counts[lsl, target - 1]
                == point.task.num_nodes,
            )
        )


# reprolint: counts-tier
def run_heterogeneous_counts_protocol(
    tasks: List[CountsProtocolTask],
    *,
    draw_mode: str = "per-trial",
) -> List[EnsembleResult]:
    """Run many counts-protocol grid points as one merged batched computation.

    The sweep engine's protocol executor.  Each task is one grid point; the
    per-point :class:`EnsembleResult` is **bitwise identical** to what

    .. code-block:: python

        CountsProtocol(
            task.num_nodes, task.noise,
            schedule=task.schedule, epsilon=task.epsilon,
            random_state=task.random_state, round_scale=task.round_scale,
        ).run(task.initial_state, task.num_trials,
              target_opinion=task.target_opinion)

    would return — same values, same random draws.  The equivalence holds
    because randomness is always per-trial (trial ``r`` of point ``g`` draws
    only from its own spawned generator, in the same order as serially) and
    every merged floating-point operation is row-stable; the one op that is
    not (the wide ``maj()`` composition matmul) is evaluated per block at
    the block's own row shape by
    :class:`~repro.network.balls_bins.HeterogeneousCountsDeliveryModel`.

    Points advance phase-synchronously: at global step ``p`` every point
    still owning a ``p``-th phase executes it (Stage-1 and Stage-2 phases in
    separate merged substeps); points whose schedule is exhausted retire
    early and stop paying any per-step cost.  All points must share the
    number of opinions ``k`` (callers group by ``k`` first).

    ``draw_mode="batched"`` gives up the bitwise guarantee for throughput:
    every merged substep draws from one shared stream via column-wise
    batched multinomials/binomials instead of one generator call per row.
    The per-row *laws* are untouched, so results are samples of exactly the
    same distribution (verified by the ``pytest -m agreement`` TVD/Wilson
    harness); only the raw draw order differs from the serial loop.  The
    shared stream is the first point's first spawned trial generator, so
    batched runs are themselves deterministic given the task seeds.
    """
    if draw_mode not in ("per-trial", "batched"):
        raise ValueError(
            f"draw_mode must be 'per-trial' or 'batched', got {draw_mode!r}"
        )
    if not tasks:
        return []
    batched = draw_mode == "batched"
    points = [
        _prepare_point(task, spawn_generators=(not batched or index == 0))
        for index, task in enumerate(tasks)
    ]
    num_opinions = points[0].ensemble.num_opinions
    if any(p.ensemble.num_opinions != num_opinions for p in points):
        raise ValueError(
            "every task of a heterogeneous batch must share the number of "
            "opinions; group grid points by k first"
        )
    offset = 0
    per_row_nodes = []
    for point in points:
        point.slice = slice(offset, offset + point.ensemble.num_trials)
        offset += point.ensemble.num_trials
        per_row_nodes.append(
            np.full(point.ensemble.num_trials, point.task.num_nodes, dtype=np.int64)
        )
    merged = EnsembleCountsState(
        np.vstack([point.ensemble.counts for point in points]),
        np.concatenate(per_row_nodes),
    )
    counts = merged.counts
    if draw_mode == "batched":
        generators = points[0].generators[0]
    else:
        generators = [
            generator for point in points for generator in point.generators
        ]
    step = 0
    submodel_cache = {}
    while True:
        active = [point for point in points if step < len(point.plan)]
        if not active:
            break
        stage1_parts = [p for p in active if p.plan[step][0] == "s1"]
        stage2_parts = [p for p in active if p.plan[step][0] == "s2"]
        if stage1_parts:
            _run_stage1_substep(
                counts, generators, stage1_parts, step, submodel_cache
            )
        if stage2_parts:
            _run_stage2_substep(
                counts, generators, stage2_parts, step, submodel_cache
            )
        step += 1
    results = []
    for point in points:
        final_states = EnsembleCountsState(
            counts[point.slice].copy(), point.task.num_nodes
        )
        total_rounds = int(
            sum(record.num_rounds for record in point.stage1_records)
            + sum(record.num_rounds for record in point.stage2_records)
        )
        results.append(
            EnsembleResult(
                final_states=final_states,
                target_opinion=point.target_opinion,
                successes=final_states.consensus_mask(point.target_opinion),
                total_rounds=total_rounds,
                stage1_records=point.stage1_records,
                stage2_records=point.stage2_records,
            )
        )
    return results
