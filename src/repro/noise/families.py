"""Canonical noise-matrix families from the paper.

The paper discusses several concrete noise matrices:

* the binary flip matrix of Eq. (1), ``[[1/2+eps, 1/2-eps], [1/2-eps, 1/2+eps]]``;
* its k-opinion generalization (Section 4), where the sent opinion survives
  with probability ``1/k + eps`` and every other opinion is received with
  probability ``1/k - eps/(k-1)`` — this matrix is (eps', delta)-majority-
  preserving for every ``delta > 0``;
* the diagonally-dominant 3x3 counterexample of Section 4, which fails to
  preserve the majority for ``eps, delta < 1/6``;
* matrices of the "near uniform off-diagonal" form of Eq. (17), with diagonal
  ``p`` and off-diagonal entries in ``[q_l, q_u]``, for which Eq. (18) gives a
  sufficient majority-preservation condition.

Conceptually distinct noise shapes mentioned in the introduction (switching
to a *close* opinion ``i±1 mod k``, or *resetting* to opinion 1) are also
provided so that experiments can explore which noise patterns are and are not
majority preserving.
"""

from __future__ import annotations


import numpy as np

from repro.noise.matrix import NoiseMatrix
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import require_fraction, require_positive_int

__all__ = [
    "identity_matrix",
    "binary_flip_matrix",
    "uniform_noise_matrix",
    "near_uniform_matrix",
    "cyclic_shift_matrix",
    "reset_matrix",
    "diagonally_dominant_counterexample",
    "random_majority_preserving_matrix",
]


def identity_matrix(num_opinions: int) -> NoiseMatrix:
    """The noise-free channel over ``num_opinions`` opinions (``P = I``)."""
    num_opinions = require_positive_int(num_opinions, "num_opinions")
    return NoiseMatrix(np.eye(num_opinions), name=f"identity(k={num_opinions})")


def binary_flip_matrix(epsilon: float) -> NoiseMatrix:
    """The paper's Eq. (1) matrix: a bit survives with probability ``1/2 + epsilon``.

    ``epsilon`` must lie in ``(0, 1/2]``; smaller values mean noisier channels.
    """
    epsilon = require_fraction(epsilon, "epsilon", inclusive_low=False)
    if epsilon > 0.5:
        raise ValueError(f"epsilon must be at most 1/2, got {epsilon}")
    keep = 0.5 + epsilon
    flip = 0.5 - epsilon
    return NoiseMatrix(
        [[keep, flip], [flip, keep]], name=f"binary-flip(eps={epsilon:g})"
    )


def uniform_noise_matrix(num_opinions: int, epsilon: float) -> NoiseMatrix:
    """The Section-4 generalization of Eq. (1) to ``k`` opinions.

    The sent opinion is delivered intact with probability ``1/k + epsilon``
    and is switched to each of the other ``k - 1`` opinions with probability
    ``1/k - epsilon/(k-1)``.  The paper shows this matrix is
    ``(epsilon', delta)``-majority-preserving for every ``delta > 0``.

    ``epsilon`` must satisfy ``0 < epsilon <= 1 - 1/k`` so that all entries
    stay non-negative.
    """
    num_opinions = require_positive_int(num_opinions, "num_opinions")
    if num_opinions < 2:
        raise ValueError("uniform_noise_matrix requires at least 2 opinions")
    epsilon = float(epsilon)
    if not (0 < epsilon <= 1.0 - 1.0 / num_opinions + 1e-12):
        raise ValueError(
            f"epsilon must lie in (0, 1 - 1/k] = (0, {1.0 - 1.0 / num_opinions:g}], "
            f"got {epsilon}"
        )
    keep = 1.0 / num_opinions + epsilon
    leak = 1.0 / num_opinions - epsilon / (num_opinions - 1)
    matrix = np.full((num_opinions, num_opinions), leak)
    np.fill_diagonal(matrix, keep)
    return NoiseMatrix(
        matrix, name=f"uniform-noise(k={num_opinions}, eps={epsilon:g})"
    )


def near_uniform_matrix(
    num_opinions: int,
    diagonal: float,
    off_diagonal_low: float,
    off_diagonal_high: float,
    random_state: RandomState = None,
) -> NoiseMatrix:
    """A random matrix of the Eq. (17) form: fixed diagonal, bounded off-diagonal.

    Each row has diagonal entry ``diagonal`` and off-diagonal entries drawn
    uniformly from ``[off_diagonal_low, off_diagonal_high]``, then rescaled so
    the row sums to 1 while keeping the diagonal fixed.  Eq. (18) of the paper
    gives a sufficient condition for such matrices to be
    ``(epsilon, delta)``-majority-preserving with
    ``epsilon = (p - q_u) / 2`` whenever ``(p - q_u) * delta / 2 >= q_u - q_l``.
    """
    num_opinions = require_positive_int(num_opinions, "num_opinions")
    if num_opinions < 2:
        raise ValueError("near_uniform_matrix requires at least 2 opinions")
    diagonal = require_fraction(diagonal, "diagonal", inclusive_low=False)
    if not (0.0 <= off_diagonal_low <= off_diagonal_high):
        raise ValueError(
            "off-diagonal bounds must satisfy 0 <= low <= high, got "
            f"low={off_diagonal_low}, high={off_diagonal_high}"
        )
    rng = as_generator(random_state)
    matrix = np.zeros((num_opinions, num_opinions))
    remainder = 1.0 - diagonal
    if remainder < -1e-12:
        raise ValueError("diagonal entry cannot exceed 1")
    for row in range(num_opinions):
        draws = rng.uniform(off_diagonal_low, off_diagonal_high, num_opinions - 1)
        total = draws.sum()
        if total <= 0:
            scaled = np.full(num_opinions - 1, remainder / (num_opinions - 1))
        else:
            scaled = draws * (remainder / total)
        matrix[row, :] = np.insert(scaled, row, diagonal)
    return NoiseMatrix(
        matrix,
        name=(
            f"near-uniform(k={num_opinions}, p={diagonal:g}, "
            f"q in [{off_diagonal_low:g},{off_diagonal_high:g}])"
        ),
    )


def cyclic_shift_matrix(num_opinions: int, noise_probability: float) -> NoiseMatrix:
    """Noise that switches an opinion to one of its *neighbours* ``i ± 1 (mod k)``.

    With probability ``1 - noise_probability`` the opinion is delivered
    intact; otherwise it becomes ``i+1`` or ``i-1`` (mod ``k``) with equal
    probability.  This is the "close opinions" noise pattern mentioned in the
    introduction's discussion of how multi-valued noise can act.
    """
    num_opinions = require_positive_int(num_opinions, "num_opinions")
    if num_opinions < 2:
        raise ValueError("cyclic_shift_matrix requires at least 2 opinions")
    noise_probability = require_fraction(noise_probability, "noise_probability")
    matrix = np.zeros((num_opinions, num_opinions))
    for opinion in range(num_opinions):
        matrix[opinion, opinion] += 1.0 - noise_probability
        matrix[opinion, (opinion + 1) % num_opinions] += noise_probability / 2.0
        matrix[opinion, (opinion - 1) % num_opinions] += noise_probability / 2.0
    return NoiseMatrix(
        matrix,
        name=f"cyclic-shift(k={num_opinions}, q={noise_probability:g})",
    )


def reset_matrix(num_opinions: int, noise_probability: float,
                 reset_opinion: int = 1) -> NoiseMatrix:
    """Noise that "resets" a corrupted opinion to a fixed opinion.

    With probability ``1 - noise_probability`` the opinion is delivered
    intact; otherwise it is replaced by ``reset_opinion``.  This is the
    "reset to opinion 1" pattern from the introduction; it is *not* majority
    preserving with respect to any opinion other than ``reset_opinion`` once
    ``noise_probability`` is large enough, which makes it a useful negative
    example in experiments.
    """
    num_opinions = require_positive_int(num_opinions, "num_opinions")
    noise_probability = require_fraction(noise_probability, "noise_probability")
    reset_opinion = int(reset_opinion)
    if not (1 <= reset_opinion <= num_opinions):
        raise ValueError(
            f"reset_opinion must be in [1, {num_opinions}], got {reset_opinion}"
        )
    matrix = np.eye(num_opinions) * (1.0 - noise_probability)
    matrix[:, reset_opinion - 1] += noise_probability
    return NoiseMatrix(
        matrix,
        name=(
            f"reset(k={num_opinions}, q={noise_probability:g}, "
            f"target={reset_opinion})"
        ),
    )


def diagonally_dominant_counterexample(epsilon: float) -> NoiseMatrix:
    """The 3-opinion counterexample of Section 4.

    The matrix::

        [ 1/2+eps   0        1/2-eps ]
        [ 1/2-eps   1/2+eps  0       ]
        [ 0         1/2-eps  1/2+eps ]

    is diagonally dominant, yet for ``eps, delta < 1/6`` it does not even
    preserve the majority opinion: against the delta-biased distribution
    ``c = (1/2+delta, 1/2-delta, 0)`` the perturbed distribution has
    ``(cP)_1 < (cP)_3``.  Experiment E7 verifies this via the LP checker.
    """
    epsilon = require_fraction(epsilon, "epsilon", inclusive_low=False)
    if epsilon > 0.5:
        raise ValueError(f"epsilon must be at most 1/2, got {epsilon}")
    keep = 0.5 + epsilon
    leak = 0.5 - epsilon
    matrix = [
        [keep, 0.0, leak],
        [leak, keep, 0.0],
        [0.0, leak, keep],
    ]
    return NoiseMatrix(matrix, name=f"diag-dominant-counterexample(eps={epsilon:g})")


def random_majority_preserving_matrix(
    num_opinions: int,
    epsilon: float,
    delta: float,
    random_state: RandomState = None,
    max_attempts: int = 200,
) -> NoiseMatrix:
    """Sample a random noise matrix satisfying the Eq. (18) sufficient condition.

    Rows are built with a dominant diagonal ``p`` and off-diagonal entries in
    a band ``[q_l, q_u]`` tight enough that ``(p - q_u) * delta / 2 >= q_u - q_l``
    with ``epsilon = (p - q_u) / 2``.  Raises ``RuntimeError`` only if no
    feasible matrix exists for the requested parameters.
    """
    num_opinions = require_positive_int(num_opinions, "num_opinions")
    if num_opinions < 2:
        raise ValueError("need at least 2 opinions")
    epsilon = require_fraction(epsilon, "epsilon", inclusive_low=False)
    delta = require_fraction(delta, "delta", inclusive_low=False)
    rng = as_generator(random_state)

    # Choose p and q_u with p - q_u = 2 epsilon, and a band width
    # q_u - q_l <= epsilon * delta, then fill rows accordingly.
    base_off = (1.0 - 2.0 * epsilon) / num_opinions
    q_u = base_off
    p = q_u + 2.0 * epsilon
    band = min(epsilon * delta, q_u)
    q_l = q_u - band
    if p > 1.0 or q_l < 0.0:
        raise RuntimeError(
            "no feasible near-uniform matrix for "
            f"k={num_opinions}, epsilon={epsilon}, delta={delta}"
        )
    for _ in range(max_attempts):
        matrix = np.zeros((num_opinions, num_opinions))
        feasible = True
        for row in range(num_opinions):
            draws = rng.uniform(q_l, q_u, num_opinions - 1)
            total = draws.sum() + p
            # Rescale the off-diagonal mass so the row sums to one while the
            # entries remain inside [q_l, q_u].
            deficit = 1.0 - total
            draws = draws + deficit / (num_opinions - 1)
            if np.any(draws < q_l - 1e-12) or np.any(draws > q_u + 1e-12):
                feasible = False
                break
            matrix[row, :] = np.insert(np.clip(draws, q_l, q_u), row, p)
        if feasible:
            return NoiseMatrix(
                matrix,
                name=(
                    f"random-mp(k={num_opinions}, eps={epsilon:g}, delta={delta:g})"
                ),
            )
    # Deterministic fallback: the exactly uniform off-diagonal matrix always
    # satisfies the band constraints.
    matrix = np.full((num_opinions, num_opinions), base_off)
    np.fill_diagonal(matrix, p)
    matrix = matrix / matrix.sum(axis=1, keepdims=True)
    return NoiseMatrix(
        matrix,
        name=f"random-mp(k={num_opinions}, eps={epsilon:g}, delta={delta:g})",
    )
