"""The :class:`NoiseMatrix` type.

A noise matrix ``P = (p_ij)`` is a row-stochastic ``k x k`` matrix where
``p_ij`` is the probability that an opinion ``i`` in transit is delivered as
opinion ``j`` (paper, Section 2.1, constraint 2).  All simulation engines and
all of the majority-preservation analysis consume this type.

Opinions are externally labelled ``1 .. k``; internally the matrix is stored
as a dense float array indexed ``0 .. k-1``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.utils.rng import (
    EnsembleRandomState,
    RandomState,
    as_generator,
    as_trial_generators,
    is_generator_sequence,
)
from repro.utils.validation import require_positive_int

__all__ = ["NoiseMatrix"]

_ROW_SUM_ATOL = 1e-9


class NoiseMatrix:
    """A validated row-stochastic noise matrix over ``k`` opinions.

    Parameters
    ----------
    probabilities:
        A ``k x k`` array-like whose rows are probability distributions;
        entry ``(i, j)`` (0-indexed) is the probability that opinion ``i+1``
        is received as opinion ``j+1``.
    name:
        Optional human-readable name used in reports and experiment tables.

    Raises
    ------
    ValueError
        If the array is not square, contains negative or non-finite entries,
        or has a row that does not sum to 1 (within a small tolerance).
    """

    def __init__(
        self,
        probabilities: Union[Sequence[Sequence[float]], np.ndarray],
        *,
        name: Optional[str] = None,
    ) -> None:
        matrix = np.array(probabilities, dtype=float, copy=True)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(
                f"noise matrix must be square, got shape {matrix.shape}"
            )
        if matrix.shape[0] < 1:
            raise ValueError("noise matrix must have at least one opinion")
        if np.any(~np.isfinite(matrix)):
            raise ValueError("noise matrix entries must be finite")
        if np.any(matrix < -_ROW_SUM_ATOL):
            raise ValueError("noise matrix entries must be non-negative")
        row_sums = matrix.sum(axis=1)
        if np.any(np.abs(row_sums - 1.0) > 1e-6):
            raise ValueError(
                f"every row of a noise matrix must sum to 1, got sums {row_sums.tolist()}"
            )
        matrix = np.clip(matrix, 0.0, None)
        matrix /= matrix.sum(axis=1, keepdims=True)
        self._matrix = matrix
        self._matrix.setflags(write=False)
        self.name = name or f"noise[{matrix.shape[0]}]"

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def num_opinions(self) -> int:
        """The number of opinions ``k``."""
        return self._matrix.shape[0]

    @property
    def matrix(self) -> np.ndarray:
        """The underlying (read-only) ``k x k`` float array."""
        return self._matrix

    def probability(self, source: int, received: int) -> float:
        """``p_{source, received}`` using 1-based opinion labels."""
        self._check_opinion(source)
        self._check_opinion(received)
        return float(self._matrix[source - 1, received - 1])

    def row(self, source: int) -> np.ndarray:
        """The distribution of the received opinion when ``source`` is sent."""
        self._check_opinion(source)
        return self._matrix[source - 1].copy()

    def _check_opinion(self, opinion: int) -> None:
        if not (1 <= int(opinion) <= self.num_opinions):
            raise ValueError(
                f"opinion must be in [1, {self.num_opinions}], got {opinion}"
            )

    def __eq__(self, other) -> bool:
        """Value equality: same entries and same name.

        Lets declarative containers (e.g. :class:`repro.sim.Scenario`) that
        carry a noise matrix compare equal after a serialization round trip.
        """
        if not isinstance(other, NoiseMatrix):
            return NotImplemented
        return self.name == other.name and np.array_equal(
            self._matrix, other._matrix
        )

    def __hash__(self) -> int:
        return hash((self.name, self._matrix.tobytes()))

    # ------------------------------------------------------------------ #
    # Structural properties
    # ------------------------------------------------------------------ #

    def is_identity(self, *, atol: float = 1e-12) -> bool:
        """``True`` if the matrix is the identity (noise-free channel)."""
        return bool(np.allclose(self._matrix, np.eye(self.num_opinions), atol=atol))

    def is_symmetric(self, *, atol: float = 1e-12) -> bool:
        """``True`` if ``P`` equals its transpose."""
        return bool(np.allclose(self._matrix, self._matrix.T, atol=atol))

    def is_doubly_stochastic(self, *, atol: float = 1e-9) -> bool:
        """``True`` if the columns also sum to 1."""
        return bool(np.allclose(self._matrix.sum(axis=0), 1.0, atol=atol))

    def is_diagonally_dominant(self) -> bool:
        """``True`` if each diagonal entry is at least the sum of the rest of its row."""
        diagonal = np.diag(self._matrix)
        off_diagonal = self._matrix.sum(axis=1) - diagonal
        return bool(np.all(diagonal >= off_diagonal - _ROW_SUM_ATOL))

    def diagonal_advantage(self) -> float:
        """The minimum over rows of ``p_ii - max_{j != i} p_ij``.

        A positive value means that, row by row, the original opinion is the
        single most likely opinion to be delivered.
        """
        matrix = self._matrix
        k = self.num_opinions
        if k == 1:
            return float(matrix[0, 0])
        off = matrix.copy()
        np.fill_diagonal(off, -np.inf)
        return float(np.min(np.diag(matrix) - off.max(axis=1)))

    # ------------------------------------------------------------------ #
    # Actions on distributions and samples
    # ------------------------------------------------------------------ #

    def propagate(self, distribution: Sequence[float]) -> np.ndarray:
        """Return ``c . P`` for an opinion distribution ``c`` (paper Eq. (2)).

        ``distribution`` is indexed by opinion ``1..k`` (position 0 holds the
        fraction of opinion 1) and need not sum to 1 — e.g. it may sum to the
        opinionated fraction ``a(t)``.
        """
        vector = np.asarray(distribution, dtype=float)
        if vector.shape != (self.num_opinions,):
            raise ValueError(
                f"distribution must have length {self.num_opinions}, got shape {vector.shape}"
            )
        if np.any(vector < -1e-12):
            raise ValueError("distribution entries must be non-negative")
        return vector @ self._matrix

    def apply_to_opinions(
        self, opinions: np.ndarray, random_state: RandomState = None
    ) -> np.ndarray:
        """Sample the noisy delivery of each opinion in ``opinions``.

        Parameters
        ----------
        opinions:
            Integer array of opinion labels in ``1..k`` (messages in transit).
        random_state:
            Randomness source.

        Returns
        -------
        numpy.ndarray
            An array of the same shape with each entry independently
            resampled according to its row of the noise matrix.
        """
        opinions = np.asarray(opinions)
        if opinions.size == 0:
            return opinions.astype(np.int64)
        if opinions.min() < 1 or opinions.max() > self.num_opinions:
            raise ValueError(
                f"opinions must be in [1, {self.num_opinions}]; "
                f"got range [{opinions.min()}, {opinions.max()}]"
            )
        rng = as_generator(random_state)
        flat = opinions.ravel()
        uniforms = rng.random(flat.shape[0])
        return self.apply_with_uniforms(flat, uniforms).reshape(opinions.shape)

    def apply_with_uniforms(
        self, opinions: np.ndarray, uniforms: np.ndarray
    ) -> np.ndarray:
        """The deterministic kernel of :meth:`apply_to_opinions`.

        Maps each opinion (flat array, labels ``1..k``) through the channel
        using one caller-supplied ``Uniform(0,1)`` draw per message, by
        inverse-CDF sampling of the opinion's matrix row.  The batched
        ensemble engines use this to draw the uniforms per trial (preserving
        per-trial streams) while applying the channel to the concatenated
        batch in one vectorized pass; feeding it ``rng.random(m)`` reproduces
        :meth:`apply_to_opinions` bit for bit.
        """
        opinions = np.asarray(opinions)
        cumulative = np.cumsum(self._matrix, axis=1)
        cumulative[:, -1] = 1.0
        rows = cumulative[opinions - 1]
        received = (np.asarray(uniforms)[:, np.newaxis] > rows).sum(axis=1) + 1
        return received.astype(np.int64)

    def apply_to_counts(
        self, counts: Sequence[int], random_state: RandomState = None
    ) -> np.ndarray:
        """Noisy delivery of a batch of messages given per-opinion counts.

        ``counts[i]`` messages carry opinion ``i + 1``; the return value is a
        vector of the same length giving how many messages are *received* as
        each opinion after independent per-message noise (multinomial
        resampling per row).  This is the engine-facing fast path.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (self.num_opinions,):
            raise ValueError(
                f"counts must have length {self.num_opinions}, got shape {counts.shape}"
            )
        if np.any(counts < 0):
            raise ValueError("counts must be non-negative")
        rng = as_generator(random_state)
        received = np.zeros(self.num_opinions, dtype=np.int64)
        for source_index in np.nonzero(counts)[0]:
            received += rng.multinomial(
                int(counts[source_index]), self._matrix[source_index]
            )
        return received

    def recolor_rows(
        self, count_matrix: np.ndarray, generators: Sequence
    ) -> np.ndarray:
        """Per-trial noisy delivery of pre-validated per-row histograms.

        Row ``r`` consumes exactly the draws :meth:`apply_to_counts` would
        make with ``generators[r]`` — one multinomial per nonzero source
        opinion, in ascending opinion order — but the per-call shape and
        sign checks are skipped, so the caller must pass a non-negative
        integer ``(R, k)`` array.  This is the engine round-loop kernel:
        validation happens once per phase, not once per row.
        """
        counts = np.asarray(count_matrix, dtype=np.int64)
        matrix = self._matrix
        received = np.zeros_like(counts)
        count_rows = counts.tolist()
        for index, generator in enumerate(generators):
            target = received[index]
            for source_index, count in enumerate(count_rows[index]):
                if count:
                    target += generator.multinomial(count, matrix[source_index])
        return received

    def apply_to_count_matrix(
        self,
        count_matrix: np.ndarray,
        random_state: "EnsembleRandomState" = None,
    ) -> np.ndarray:
        """Noisy delivery of a whole batch of per-trial message histograms.

        ``count_matrix`` has shape ``(R, k)``: row ``r`` gives, per opinion,
        how many messages trial ``r`` sends through the channel.  The return
        value has the same shape and gives how many of each trial's messages
        are *received* as each opinion.

        ``random_state`` may be a single source (shared-stream mode: one
        broadcast multinomial per source opinion, i.e. ``k`` numpy calls for
        the entire batch) or a sequence of one source per trial (per-trial
        mode: row ``r`` consumes exactly the draws that
        :meth:`apply_to_counts` would make on it with that trial's
        generator, which is what makes batched ensembles reproducible trial
        by trial).
        """
        counts = np.asarray(count_matrix, dtype=np.int64)
        if counts.ndim != 2 or counts.shape[1] != self.num_opinions:
            raise ValueError(
                f"count_matrix must have shape (R, {self.num_opinions}), "
                f"got shape {counts.shape}"
            )
        if np.any(counts < 0):
            raise ValueError("counts must be non-negative")
        if is_generator_sequence(random_state):
            generators = as_trial_generators(random_state, counts.shape[0])
            return self.recolor_rows(counts, generators)
        rng = as_generator(random_state)
        received = np.zeros_like(counts)
        for source_index in range(self.num_opinions):
            column = counts[:, source_index]
            if column.any():
                received += rng.multinomial(
                    column, self._matrix[source_index]
                )
        return received

    # ------------------------------------------------------------------ #
    # Algebra and dunder methods
    # ------------------------------------------------------------------ #

    def compose(self, other: "NoiseMatrix") -> "NoiseMatrix":
        """The matrix describing this channel followed by ``other``."""
        if other.num_opinions != self.num_opinions:
            raise ValueError(
                "cannot compose noise matrices over different numbers of opinions"
            )
        return NoiseMatrix(
            self._matrix @ other._matrix, name=f"{self.name}∘{other.name}"
        )

    def power(self, exponent: int) -> "NoiseMatrix":
        """The channel applied ``exponent`` times in sequence."""
        exponent = require_positive_int(exponent, "exponent")
        return NoiseMatrix(
            np.linalg.matrix_power(self._matrix, exponent),
            name=f"{self.name}^{exponent}",
        )

    def stationary_distribution(self) -> np.ndarray:
        """The stationary distribution of ``P`` viewed as a Markov chain.

        Computed from the left eigenvector with eigenvalue 1; useful for
        diagnosing where repeated noise drives the opinion distribution.
        """
        eigenvalues, eigenvectors = np.linalg.eig(self._matrix.T)
        index = int(np.argmin(np.abs(eigenvalues - 1.0)))
        vector = np.real(eigenvectors[:, index])
        vector = np.abs(vector)
        return vector / vector.sum()

    def __eq__(self, other) -> bool:
        if not isinstance(other, NoiseMatrix):
            return NotImplemented
        return self.num_opinions == other.num_opinions and bool(
            np.allclose(self._matrix, other._matrix)
        )

    def __hash__(self) -> int:
        return hash((self.num_opinions, self._matrix.round(12).tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NoiseMatrix(name={self.name!r}, k={self.num_opinions})"
