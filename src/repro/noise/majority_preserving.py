"""Verification of the (epsilon, delta)-majority-preserving property.

Definition 2 of the paper: a noise matrix ``P`` is ``(epsilon, delta)``-
majority-preserving (m.p.) with respect to opinion ``m`` if, for every
opinion distribution ``c`` that is delta-biased toward ``m``
(``c_m - c_i >= delta`` for all ``i != m``), we have
``(cP)_m - (cP)_i > epsilon * delta`` for all ``i != m``.

Section 4 observes that verifying this property is a family of linear
programs: for each ``i != m``, optimize ``(cP)_m - (cP)_i`` over the polytope
``{ c : sum_j c_j = 1, c_j >= 0, c_m - c_j >= delta for j != m }``.  The
property holds iff the *worst case* (minimum) of this objective over the
polytope exceeds ``epsilon * delta`` for every ``i``.  (The paper's text
states the program with "maximize"; since the property quantifies over
*every* delta-biased distribution, the operative quantity is the minimum,
which is what we compute.  The maximum is also exposed for completeness.)

Section 4 also gives the closed-form sufficient condition of Eq. (17)/(18)
for matrices with constant diagonal ``p`` and off-diagonal entries confined
to ``[q_l, q_u]``: with ``epsilon = (p - q_u)/2``, the matrix is
``(epsilon, delta)``-m.p. whenever ``(p - q_u) * delta / 2 >= q_u - q_l``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.noise.matrix import NoiseMatrix
from repro.utils.validation import require_fraction

__all__ = [
    "MajorityPreservationReport",
    "bias_gap_bounds",
    "check_majority_preserving",
    "epsilon_for_delta",
    "minimal_bias_gap",
    "sufficient_condition_epsilon",
    "worst_case_distribution",
]


@dataclass(frozen=True)
class MajorityPreservationReport:
    """The result of an (epsilon, delta)-m.p. verification.

    Attributes
    ----------
    is_majority_preserving:
        ``True`` iff the matrix satisfies Definition 2 for the supplied
        ``epsilon``, ``delta`` and ``majority_opinion``.
    epsilon, delta, majority_opinion:
        Echo of the query parameters.
    minimal_gap:
        The minimum over rival opinions ``i`` of the worst-case
        ``(cP)_m - (cP)_i`` over all delta-biased distributions ``c``.
    required_gap:
        ``epsilon * delta`` — the threshold the minimal gap must exceed.
    per_opinion_gap:
        Worst-case gap for each rival opinion (keys are 1-based labels).
    worst_distribution:
        The delta-biased distribution achieving ``minimal_gap`` (indexed by
        opinion ``1..k``), useful as a hard initial condition in experiments.
    preserves_plurality:
        ``True`` iff even the weaker property "the noisy distribution still
        ranks ``m`` strictly first" (gap > 0) holds; a matrix can preserve
        the plurality while failing the quantitative epsilon condition.
    """

    is_majority_preserving: bool
    epsilon: float
    delta: float
    majority_opinion: int
    minimal_gap: float
    required_gap: float
    per_opinion_gap: Dict[int, float] = field(default_factory=dict)
    worst_distribution: Optional[np.ndarray] = None
    preserves_plurality: bool = False

    def summary(self) -> str:
        """A one-line human-readable verdict."""
        verdict = "IS" if self.is_majority_preserving else "is NOT"
        return (
            f"matrix {verdict} ({self.epsilon:g}, {self.delta:g})-majority-preserving "
            f"w.r.t. opinion {self.majority_opinion} "
            f"(worst gap {self.minimal_gap:.6g}, required > {self.required_gap:.6g})"
        )


def _delta_biased_polytope(
    num_opinions: int, delta: float, majority_opinion: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Constraint matrices of the delta-biased simplex for scipy ``linprog``.

    Returns ``(A_ub, b_ub, A_eq, b_eq)`` for the polytope
    ``{c >= 0, sum c = 1, c_m - c_j >= delta for j != m}`` expressed in the
    ``A_ub @ c <= b_ub`` / ``A_eq @ c == b_eq`` form.
    """
    m_index = majority_opinion - 1
    rows: List[np.ndarray] = []
    for j in range(num_opinions):
        if j == m_index:
            continue
        row = np.zeros(num_opinions)
        # c_j - c_m <= -delta
        row[j] = 1.0
        row[m_index] = -1.0
        rows.append(row)
    a_ub = np.vstack(rows) if rows else np.zeros((0, num_opinions))
    b_ub = np.full(a_ub.shape[0], -delta)
    a_eq = np.ones((1, num_opinions))
    b_eq = np.ones(1)
    return a_ub, b_ub, a_eq, b_eq


def _solve_gap_program(
    noise: NoiseMatrix,
    delta: float,
    majority_opinion: int,
    rival_opinion: int,
    *,
    maximize: bool = False,
) -> Tuple[float, np.ndarray]:
    """Optimize ``(cP)_m - (cP)_i`` over delta-biased distributions ``c``.

    Returns the optimal value and an optimizer.  Raises ``ValueError`` if the
    polytope is empty (delta too large for the given ``k``).
    """
    matrix = noise.matrix
    num_opinions = noise.num_opinions
    m_index = majority_opinion - 1
    i_index = rival_opinion - 1
    # (cP)_m - (cP)_i = c . (P[:, m] - P[:, i])
    objective = matrix[:, m_index] - matrix[:, i_index]
    sign = -1.0 if maximize else 1.0
    a_ub, b_ub, a_eq, b_eq = _delta_biased_polytope(
        num_opinions, delta, majority_opinion
    )
    result = linprog(
        sign * objective,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0.0, 1.0)] * num_opinions,
        method="highs",
    )
    if not result.success:
        raise ValueError(
            "delta-biased polytope is empty or the LP failed: "
            f"k={num_opinions}, delta={delta} ({result.message})"
        )
    value = float(sign * result.fun)
    return value, np.asarray(result.x)


def minimal_bias_gap(
    noise: NoiseMatrix, delta: float, majority_opinion: int = 1
) -> Tuple[float, Dict[int, float], np.ndarray]:
    """Worst-case post-noise bias gap over all delta-biased distributions.

    Returns ``(minimal_gap, per_opinion_gap, worst_distribution)`` where
    ``minimal_gap = min_{i != m} min_c [(cP)_m - (cP)_i]``.
    """
    delta = require_fraction(delta, "delta", inclusive_low=False)
    noise._check_opinion(majority_opinion)
    per_opinion: Dict[int, float] = {}
    worst_value = np.inf
    worst_c = None
    for rival in range(1, noise.num_opinions + 1):
        if rival == majority_opinion:
            continue
        value, distribution = _solve_gap_program(
            noise, delta, majority_opinion, rival, maximize=False
        )
        per_opinion[rival] = value
        if value < worst_value:
            worst_value = value
            worst_c = distribution
    if worst_c is None:
        # Single-opinion matrix: the property is vacuous.
        worst_value = np.inf
        worst_c = np.ones(1)
    return float(worst_value), per_opinion, worst_c


def bias_gap_bounds(
    noise: NoiseMatrix, delta: float, majority_opinion: int = 1
) -> Tuple[float, float]:
    """The (min, max) of ``(cP)_m - min_i (cP)_i`` over delta-biased ``c``.

    The minimum is the quantity Definition 2 constrains; the maximum is
    reported for diagnostic purposes (how much bias the channel can preserve
    in the best case).
    """
    delta = require_fraction(delta, "delta", inclusive_low=False)
    noise._check_opinion(majority_opinion)
    minima: List[float] = []
    maxima: List[float] = []
    for rival in range(1, noise.num_opinions + 1):
        if rival == majority_opinion:
            continue
        low, _ = _solve_gap_program(noise, delta, majority_opinion, rival,
                                    maximize=False)
        high, _ = _solve_gap_program(noise, delta, majority_opinion, rival,
                                     maximize=True)
        minima.append(low)
        maxima.append(high)
    if not minima:
        return np.inf, np.inf
    return float(min(minima)), float(max(maxima))


def check_majority_preserving(
    noise: NoiseMatrix,
    epsilon: float,
    delta: float,
    majority_opinion: int = 1,
) -> MajorityPreservationReport:
    """Decide whether ``noise`` is (epsilon, delta)-m.p. w.r.t. ``majority_opinion``.

    This is the exact LP-based check from Section 4 of the paper.
    """
    epsilon = require_fraction(epsilon, "epsilon", inclusive_low=False)
    delta = require_fraction(delta, "delta", inclusive_low=False)
    minimal_gap, per_opinion, worst_c = minimal_bias_gap(
        noise, delta, majority_opinion
    )
    required = epsilon * delta
    return MajorityPreservationReport(
        is_majority_preserving=bool(minimal_gap > required),
        epsilon=epsilon,
        delta=delta,
        majority_opinion=majority_opinion,
        minimal_gap=minimal_gap,
        required_gap=required,
        per_opinion_gap=per_opinion,
        worst_distribution=worst_c,
        preserves_plurality=bool(minimal_gap > 0.0),
    )


def epsilon_for_delta(
    noise: NoiseMatrix, delta: float, majority_opinion: int = 1
) -> float:
    """The largest ``epsilon`` for which ``noise`` is (epsilon, delta)-m.p.

    Equal to ``minimal_gap / delta`` (clamped at 0 when the matrix does not
    even preserve the plurality for some delta-biased distribution).  This is
    the natural "effective epsilon" to feed into the protocol's phase-length
    schedule when the noise matrix does not come from a parametric family.
    """
    minimal_gap, _, _ = minimal_bias_gap(noise, delta, majority_opinion)
    return max(0.0, float(minimal_gap / delta))


def worst_case_distribution(
    noise: NoiseMatrix, delta: float, majority_opinion: int = 1
) -> np.ndarray:
    """A delta-biased distribution minimizing the post-noise bias gap.

    Useful as an adversarial initial condition for plurality-consensus
    experiments (it is the hardest delta-biased starting point for the given
    noise matrix).
    """
    _, _, worst_c = minimal_bias_gap(noise, delta, majority_opinion)
    return worst_c


def sufficient_condition_epsilon(noise: NoiseMatrix) -> Tuple[float, float]:
    """Eq. (17)/(18) sufficient condition for near-uniform matrices.

    For a matrix with constant-ish diagonal ``p`` (we take ``p = min_i p_ii``)
    and off-diagonal entries within ``[q_l, q_u]``, Section 4 shows that with
    ``epsilon = (p - q_u) / 2`` the matrix is (epsilon, delta)-m.p. for every
    ``delta`` with ``(p - q_u) * delta / 2 >= q_u - q_l``.

    Returns
    -------
    (epsilon, delta_min):
        ``epsilon`` as defined above, and the smallest ``delta`` for which the
        sufficient condition guarantees the property (``inf`` if the
        condition can never hold, e.g. when ``p <= q_u``).
    """
    matrix = noise.matrix
    k = noise.num_opinions
    if k < 2:
        return np.inf, 0.0
    diagonal = float(np.min(np.diag(matrix)))
    off_mask = ~np.eye(k, dtype=bool)
    q_u = float(matrix[off_mask].max())
    q_l = float(matrix[off_mask].min())
    epsilon = (diagonal - q_u) / 2.0
    if epsilon <= 0:
        return max(epsilon, 0.0), np.inf
    if q_u == q_l:
        return epsilon, 0.0
    delta_min = 2.0 * (q_u - q_l) / (diagonal - q_u)
    return epsilon, delta_min if delta_min <= 1.0 else np.inf
