"""Estimating an unknown noise matrix from observed transmissions.

The protocol's schedule needs the parameter ``epsilon`` of the channel, but a
real deployment rarely knows the noise matrix exactly.  This module provides
the obvious empirical route:

* :func:`estimate_noise_matrix` — the maximum-likelihood (empirical
  frequency) estimate of ``P`` from paired (sent, received) observations,
  with optional Laplace smoothing so unseen transitions do not produce zero
  probabilities;
* :func:`collect_channel_observations` — generate such paired observations by
  exercising a :class:`~repro.noise.matrix.NoiseMatrix` (useful in tests and
  calibration experiments);
* :func:`estimation_error` — total-variation error per row against a ground
  truth, the quantity that controls how wrong the derived ``epsilon`` can be;
* :func:`calibrate_epsilon` — the end-to-end helper: estimate the matrix,
  then derive the effective ``epsilon`` for a target bias via the exact LP of
  :mod:`repro.noise.majority_preserving`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.noise.majority_preserving import epsilon_for_delta
from repro.noise.matrix import NoiseMatrix
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import require_positive_int

__all__ = [
    "estimate_noise_matrix",
    "collect_channel_observations",
    "estimation_error",
    "calibrate_epsilon",
]


def collect_channel_observations(
    noise: NoiseMatrix,
    num_observations: int,
    random_state: RandomState = None,
    *,
    sent_distribution: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``num_observations`` (sent, received) pairs through ``noise``.

    ``sent_distribution`` is the distribution the sent opinions are drawn
    from (uniform over the ``k`` opinions by default).  Returns two integer
    arrays of equal length with 1-based opinion labels.
    """
    num_observations = require_positive_int(num_observations, "num_observations")
    rng = as_generator(random_state)
    k = noise.num_opinions
    if sent_distribution is None:
        sent_distribution = np.full(k, 1.0 / k)
    sent_distribution = np.asarray(sent_distribution, dtype=float)
    if sent_distribution.shape != (k,) or np.any(sent_distribution < 0):
        raise ValueError(
            f"sent_distribution must be a non-negative vector of length {k}"
        )
    total = sent_distribution.sum()
    if total <= 0:
        raise ValueError("sent_distribution must have positive mass")
    sent = rng.choice(np.arange(1, k + 1), size=num_observations,
                      p=sent_distribution / total)
    received = noise.apply_to_opinions(sent, rng)
    return sent, received


def estimate_noise_matrix(
    sent: np.ndarray,
    received: np.ndarray,
    num_opinions: int,
    *,
    smoothing: float = 1.0,
    name: Optional[str] = None,
) -> NoiseMatrix:
    """Empirical estimate of the noise matrix from paired observations.

    Entry ``(i, j)`` of the estimate is
    ``(count(i -> j) + smoothing) / (count(i -> *) + k * smoothing)``
    (Laplace smoothing; set ``smoothing=0`` for the raw MLE, in which case
    every sent opinion must have been observed at least once).
    """
    num_opinions = require_positive_int(num_opinions, "num_opinions")
    if smoothing < 0:
        raise ValueError(f"smoothing must be non-negative, got {smoothing}")
    sent = np.asarray(sent, dtype=np.int64).ravel()
    received = np.asarray(received, dtype=np.int64).ravel()
    if sent.shape != received.shape:
        raise ValueError(
            f"sent and received must have the same length "
            f"({sent.shape[0]} vs {received.shape[0]})"
        )
    if sent.size == 0:
        raise ValueError("at least one observation is required")
    for label, array in (("sent", sent), ("received", received)):
        if array.min() < 1 or array.max() > num_opinions:
            raise ValueError(
                f"{label} opinions must lie in [1, {num_opinions}]"
            )
    counts = np.zeros((num_opinions, num_opinions), dtype=float)
    np.add.at(counts, (sent - 1, received - 1), 1.0)
    counts += smoothing
    row_totals = counts.sum(axis=1)
    if np.any(row_totals <= 0):
        missing = int(np.argmin(row_totals)) + 1
        raise ValueError(
            f"no observations for sent opinion {missing}; increase smoothing "
            "or provide more data"
        )
    matrix = counts / row_totals[:, np.newaxis]
    return NoiseMatrix(matrix, name=name or "estimated-noise")


def estimation_error(estimate: NoiseMatrix, truth: NoiseMatrix) -> float:
    """Maximum per-row total-variation distance between estimate and truth."""
    if estimate.num_opinions != truth.num_opinions:
        raise ValueError(
            "estimate and truth must have the same number of opinions"
        )
    per_row = 0.5 * np.abs(estimate.matrix - truth.matrix).sum(axis=1)
    return float(per_row.max())


def calibrate_epsilon(
    sent: np.ndarray,
    received: np.ndarray,
    num_opinions: int,
    delta: float,
    *,
    majority_opinion: int = 1,
    smoothing: float = 1.0,
    safety_factor: float = 0.9,
) -> Tuple[float, NoiseMatrix]:
    """Estimate the channel and derive a schedule ``epsilon`` for a target bias.

    Returns ``(epsilon, estimated_matrix)`` where ``epsilon`` is the LP-exact
    effective epsilon of the *estimated* matrix at bias ``delta``, multiplied
    by ``safety_factor`` to absorb estimation error (a smaller epsilon only
    lengthens the schedule, it never invalidates it).
    """
    if not (0 < safety_factor <= 1):
        raise ValueError(f"safety_factor must lie in (0, 1], got {safety_factor}")
    estimate = estimate_noise_matrix(
        sent, received, num_opinions, smoothing=smoothing
    )
    epsilon = epsilon_for_delta(estimate, delta, majority_opinion)
    return safety_factor * epsilon, estimate
