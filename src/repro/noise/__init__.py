"""Noise matrices and the (epsilon, delta)-majority-preserving property.

This subpackage implements Section 2.1/2.2 and Section 4 of the paper:

* :class:`~repro.noise.matrix.NoiseMatrix` — a validated row-stochastic
  ``k x k`` matrix describing how an opinion in transit is perturbed;
* the canonical matrix families used in the paper
  (:mod:`repro.noise.families`): the binary flip matrix of Eq. (1), its
  uniform-noise generalization, cyclic-shift noise, "reset" noise, and the
  diagonally-dominant counterexample of Section 4;
* verification of the ``(epsilon, delta)``-majority-preserving property
  (:mod:`repro.noise.majority_preserving`), both exactly via the paper's
  linear program and via the Eq. (17)/(18) sufficient condition.
"""

from repro.noise.estimation import (
    calibrate_epsilon,
    collect_channel_observations,
    estimate_noise_matrix,
    estimation_error,
)
from repro.noise.families import (
    binary_flip_matrix,
    cyclic_shift_matrix,
    diagonally_dominant_counterexample,
    identity_matrix,
    near_uniform_matrix,
    reset_matrix,
    uniform_noise_matrix,
)
from repro.noise.majority_preserving import (
    MajorityPreservationReport,
    check_majority_preserving,
    epsilon_for_delta,
    minimal_bias_gap,
    sufficient_condition_epsilon,
    worst_case_distribution,
)
from repro.noise.matrix import NoiseMatrix

__all__ = [
    "MajorityPreservationReport",
    "NoiseMatrix",
    "binary_flip_matrix",
    "calibrate_epsilon",
    "check_majority_preserving",
    "collect_channel_observations",
    "estimate_noise_matrix",
    "estimation_error",
    "cyclic_shift_matrix",
    "diagonally_dominant_counterexample",
    "epsilon_for_delta",
    "identity_matrix",
    "minimal_bias_gap",
    "near_uniform_matrix",
    "reset_matrix",
    "sufficient_condition_epsilon",
    "uniform_noise_matrix",
    "worst_case_distribution",
]
