"""Command-line interface.

The CLI exposes the most common workflows without writing Python:

* ``python -m repro list-experiments`` — show the experiment index (E1–E15)
  with each experiment's supported trial engines and, when a result store is
  present, its cache status;
* ``python -m repro run-experiment E5 [--full] [--seed 0]`` — regenerate one
  experiment table and print it;
* ``python -m repro run-all [--jobs 4] [--out results] [--resume]`` — run
  every registered experiment (or an explicit subset) through the
  orchestration layer: deterministic per-experiment seeds, optional process
  parallelism, persistent content-keyed result artifacts, and
  resume/skip-unchanged semantics;
* ``python -m repro simulate --workload rumor --nodes 2000 --trials 32`` —
  the generic facade entry point: build one declarative
  :class:`~repro.sim.Scenario` (any workload, any engine tier) and run it
  through :func:`~repro.sim.simulate`, printing the unified summary
  (``--json`` emits the full :class:`~repro.sim.SimulationResult`;
  ``--faults KIND:F[:PARAM]`` injects a crash/omission/liar/adaptive
  adversary at faulty fraction F);
* ``python -m repro sweep --workload rumor --axis epsilon=0.2,0.3,0.4`` —
  run a whole parameter grid as one batched
  :func:`~repro.sim.simulate_sweep` call (repeat ``--axis NAME=V1,V2,...``
  per swept Scenario field; ``--store DIR`` resumes cached points,
  ``--json`` emits the per-point summaries);
* ``python -m repro rumor --nodes 2000 --opinions 4 --epsilon 0.3`` — run one
  rumor-spreading instance and print the outcome;
* ``python -m repro plurality --nodes 2000 --opinions 3 --epsilon 0.3
  --support 400 --bias 0.2`` — run one plurality-consensus instance;
* ``python -m repro ensemble --nodes 2000 --opinions 3 --epsilon 0.3
  --trials 32`` — run a batch of independent rumor-spreading trials through
  the vectorized ensemble engine (``--engine counts`` for the
  sufficient-statistics engine that scales to millions of nodes,
  ``--engine sequential`` for the reference loop, ``--engine analytic``
  for the sampling-free exact-Markov/mean-field tier, ``--engine auto``
  to prefer analytic when exactly tractable and otherwise switch to
  counts above ``--counts-threshold`` nodes) and print the batch
  statistics plus throughput;
* ``python -m repro dynamics --rule 3-majority --nodes 2000 --trials 32`` —
  run a batch of independent baseline-dynamics trials (voter, 3-majority,
  h-majority, undecided-state, median rule) on the noisy pull substrate,
  with the same ``--engine`` choices.

``rumor``, ``plurality``, ``ensemble`` and ``dynamics`` are thin wrappers
over Scenario construction — every one of them routes through
``simulate(Scenario(...))``; they only differ in defaults and in what the
summary prints.

``run-experiment`` and ``run-all`` accept the same ``--engine`` /
``--counts-threshold`` pair and override the experiment configs' trial
engine with it; an engine an experiment does not support is rejected with
an explicit error naming the supported engines (``run-all`` skips such
experiments instead).  Every command accepts ``--seed`` for
reproducibility.  The CLI is a thin layer over the public API; anything it
prints can also be obtained programmatically (see README).
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
import time
from typing import Optional, Sequence

import numpy as np

import repro.experiments  # noqa: F401  (imports populate the spec registry)
from repro.dynamics import DYNAMICS_RULES
from repro.faults import FAULT_KINDS, FaultModel
from repro.experiments.orchestrator import (
    DEFAULT_STORE_DIR,
    ExperimentJob,
    ResultStore,
    job_seed,
    run_all,
)
from repro.experiments.runner import TRIAL_ENGINE_CHOICES
from repro.experiments.spec import all_specs, get_spec, registered_ids
from repro.sim import WORKLOADS, Scenario, ScenarioGrid, simulate, simulate_sweep

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Noisy rumor spreading and plurality consensus (PODC 2016) - reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list-experiments",
        help="list the reproducible experiments (E1-E15) with their engines "
             "and cache status",
    )
    list_parser.add_argument(
        "--out", default=DEFAULT_STORE_DIR, metavar="DIR",
        help="result-store directory to check cache status against "
             f"(default {DEFAULT_STORE_DIR}/)",
    )
    list_parser.add_argument(
        "--full", action="store_true",
        help="check cache status for the full() configurations",
    )
    list_parser.add_argument("--seed", type=int, default=0)

    run_parser = subparsers.add_parser(
        "run-experiment", help="regenerate one experiment table"
    )
    run_parser.add_argument("experiment", choices=registered_ids())
    run_parser.add_argument(
        "--full", action="store_true",
        help="use the full() configuration instead of quick()",
    )
    run_parser.add_argument("--seed", type=int, default=0)
    _add_engine_arguments(run_parser, default=None)

    run_all_parser = subparsers.add_parser(
        "run-all",
        help="run every registered experiment (or a subset) through the "
             "orchestrator, with parallelism and persistent results",
    )
    run_all_parser.add_argument(
        "experiments", nargs="*", metavar="EXPERIMENT",
        help="experiment ids to run (default: all registered)",
    )
    run_all_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep (default 1 = serial)",
    )
    run_all_parser.add_argument(
        "--full", action="store_true",
        help="use the full() configurations instead of quick()",
    )
    run_all_parser.add_argument("--seed", type=int, default=0)
    run_all_parser.add_argument(
        "--seeds", type=int, nargs="+", default=None, metavar="N",
        help="replication sweep: run every experiment once per base seed "
             "(overrides --seed)",
    )
    run_all_parser.add_argument(
        "--out", default=DEFAULT_STORE_DIR, metavar="DIR",
        help="directory for the persistent result artifacts "
             f"(default {DEFAULT_STORE_DIR}/); 'none' disables persistence",
    )
    run_all_parser.add_argument(
        "--resume", action="store_true",
        help="skip experiments whose identity (id + config + seed + engine "
             "+ code version) already has a stored result",
    )
    run_all_parser.add_argument(
        "--print-tables", action="store_true",
        help="print every experiment table after the status summary",
    )
    _add_engine_arguments(run_all_parser, default=None)

    simulate_parser = subparsers.add_parser(
        "simulate",
        help="run any workload on any engine tier through the unified "
             "Scenario facade",
    )
    simulate_parser.add_argument(
        "--workload", choices=WORKLOADS, default="rumor",
        help="what to simulate (default rumor)",
    )
    _add_common_instance_arguments(simulate_parser)
    simulate_parser.add_argument(
        "--trials", type=int, default=32,
        help="number of independent trials R (default 32)",
    )
    simulate_parser.add_argument(
        "--correct-opinion", type=int, default=1,
        help="the rumor source's opinion (workload rumor, default 1)",
    )
    simulate_parser.add_argument(
        "--support", type=int, default=None,
        help="initially opinionated nodes (plurality/dynamics; "
             "default: all nodes)",
    )
    simulate_parser.add_argument(
        "--bias", type=float, default=0.2,
        help="plurality bias within the support (default 0.2)",
    )
    simulate_parser.add_argument(
        "--rule", choices=DYNAMICS_RULES, default=None,
        help="baseline update rule (workload dynamics)",
    )
    simulate_parser.add_argument(
        "--sample-size", type=int, default=None,
        help="observations per round for the h-majority rule",
    )
    simulate_parser.add_argument(
        "--max-rounds", type=int, default=300,
        help="round budget per dynamics trial (default 300)",
    )
    simulate_parser.add_argument(
        "--process", choices=("push", "balls_bins", "poisson"),
        default="push",
        help="delivery process for the protocol workloads (default push)",
    )
    simulate_parser.add_argument(
        "--faults", default=None, metavar="KIND:F[:PARAM]",
        help="inject faulty nodes into the protocol workloads: KIND one of "
             f"{'/'.join(FAULT_KINDS)}, F the faulty fraction, PARAM the "
             "crash round (crash) or per-message drop rate (omission) — "
             "e.g. liar:0.1, crash:0.2:3, omission:0.1:0.5",
    )
    simulate_parser.add_argument(
        "--json", action="store_true",
        help="print the full SimulationResult as JSON instead of the summary",
    )
    simulate_parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top-20 cumulative-time "
             "functions to stderr after the summary",
    )
    _add_engine_arguments(simulate_parser, default="auto")

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run a whole parameter grid as one batched sweep "
             "(simulate_sweep over a ScenarioGrid)",
    )
    sweep_parser.add_argument(
        "--workload", choices=WORKLOADS, default="rumor",
        help="what to simulate at every grid point (default rumor)",
    )
    sweep_parser.add_argument(
        "--axis", action="append", default=[], metavar="NAME=V1,V2,...",
        help="swept Scenario field and its values, e.g. "
             "--axis epsilon=0.1,0.2,0.3; repeat for a multi-axis grid "
             "(the last axis varies fastest)",
    )
    _add_common_instance_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--trials", type=int, default=32,
        help="number of independent trials R per grid point (default 32)",
    )
    sweep_parser.add_argument(
        "--correct-opinion", type=int, default=1,
        help="the rumor source's opinion (workload rumor, default 1)",
    )
    sweep_parser.add_argument(
        "--support", type=int, default=None,
        help="initially opinionated nodes (plurality/dynamics; "
             "default: all nodes)",
    )
    sweep_parser.add_argument(
        "--bias", type=float, default=0.2,
        help="plurality bias within the support (default 0.2)",
    )
    sweep_parser.add_argument(
        "--rule", choices=DYNAMICS_RULES, default=None,
        help="baseline update rule (workload dynamics)",
    )
    sweep_parser.add_argument(
        "--sample-size", type=int, default=None,
        help="observations per round for the h-majority rule",
    )
    sweep_parser.add_argument(
        "--max-rounds", type=int, default=300,
        help="round budget per dynamics trial (default 300)",
    )
    sweep_parser.add_argument(
        "--process", choices=("push", "balls_bins", "poisson"),
        default="push",
        help="delivery process for the protocol workloads (default push)",
    )
    sweep_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="result-store directory: cached grid points are sliced out "
             "of the batch and merged back into the sweep result",
    )
    sweep_parser.add_argument(
        "--json", action="store_true",
        help="print the sweep summary as JSON instead of the table",
    )
    _add_engine_arguments(sweep_parser, default="auto")

    rumor_parser = subparsers.add_parser(
        "rumor", help="run one noisy rumor-spreading instance"
    )
    _add_common_instance_arguments(rumor_parser)
    rumor_parser.add_argument(
        "--correct-opinion", type=int, default=1,
        help="the opinion held by the source (default 1)",
    )

    plurality_parser = subparsers.add_parser(
        "plurality", help="run one noisy plurality-consensus instance"
    )
    _add_common_instance_arguments(plurality_parser)
    plurality_parser.add_argument(
        "--support", type=int, default=None,
        help="number of initially opinionated nodes (default: all nodes)",
    )
    plurality_parser.add_argument(
        "--bias", type=float, default=0.2,
        help="plurality bias within the support (default 0.2)",
    )

    ensemble_parser = subparsers.add_parser(
        "ensemble",
        help="run a batch of independent rumor-spreading trials at once",
    )
    _add_common_instance_arguments(ensemble_parser)
    ensemble_parser.add_argument(
        "--trials", type=int, default=32,
        help="number of independent trials R (default 32)",
    )
    _add_engine_arguments(ensemble_parser)

    dynamics_parser = subparsers.add_parser(
        "dynamics",
        help="run a batch of independent baseline-dynamics trials at once",
    )
    _add_common_instance_arguments(dynamics_parser)
    dynamics_parser.add_argument(
        "--rule", choices=DYNAMICS_RULES, default="3-majority",
        help="the baseline update rule (default 3-majority)",
    )
    dynamics_parser.add_argument(
        "--sample-size", type=int, default=None,
        help="observations per round for the h-majority rule",
    )
    dynamics_parser.add_argument(
        "--bias", type=float, default=0.1,
        help="initial bias toward opinion 1 (default 0.1)",
    )
    dynamics_parser.add_argument(
        "--max-rounds", type=int, default=300,
        help="round budget per trial (default 300)",
    )
    dynamics_parser.add_argument(
        "--trials", type=int, default=32,
        help="number of independent trials R (default 32)",
    )
    _add_engine_arguments(dynamics_parser)
    return parser


def _add_engine_arguments(
    parser: argparse.ArgumentParser, default: Optional[str] = "batched"
) -> None:
    """The shared ``--engine`` / ``--counts-threshold`` options.

    Every trial-running subcommand (``ensemble``, ``dynamics``,
    ``run-experiment``, ``run-all``) accepts the same engine vocabulary;
    for ``run-experiment`` and ``run-all`` the default is ``None`` (keep
    the experiment configs' own engine choice).
    """
    parser.add_argument(
        "--engine", choices=TRIAL_ENGINE_CHOICES, default=default,
        help="trial engine: batched (R,n) vectorized ensemble, counts "
             "(R,k) sufficient statistics, sequential reference loop, "
             "analytic (exact Markov chain / mean-field, no sampling; "
             "simulate/ensemble/dynamics only), or auto (analytic when "
             "exactly tractable, else counts above --counts-threshold "
             "nodes)"
             + ("" if default is None else f" (default {default})"),
    )
    parser.add_argument(
        "--counts-threshold", type=int, default=None, metavar="N",
        help="population size at which --engine auto switches to the "
             "counts engine (default: runner.DEFAULT_COUNTS_THRESHOLD)",
    )


def _validate_engine_arguments(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> None:
    """Uniform validation of the shared engine options."""
    if args.counts_threshold is not None and args.counts_threshold < 1:
        parser.error("--counts-threshold must be >= 1")
    if args.counts_threshold is not None and args.engine != "auto":
        parser.error("--counts-threshold only applies to --engine auto")


def _add_common_instance_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=2000, help="population size n")
    parser.add_argument("--opinions", type=int, default=3, help="number of opinions k")
    parser.add_argument(
        "--epsilon", type=float, default=0.3,
        help="noise parameter of the uniform-noise matrix (default 0.3)",
    )
    parser.add_argument("--seed", type=int, default=0)


def _command_list_experiments(args: argparse.Namespace) -> int:
    store = ResultStore(args.out)
    specs = all_specs()
    id_width = max(len(spec.experiment_id) for spec in specs)
    description_width = max(len(spec.description) for spec in specs)
    engines_width = max(
        len(", ".join(spec.supported_engines)) for spec in specs
    )
    for spec in specs:
        job = ExperimentJob(
            experiment_id=spec.experiment_id,
            full=args.full,
            seed=job_seed(args.seed, spec),
        )
        cached = "cached" if store.has(job) else "-"
        print(
            f"{spec.experiment_id.ljust(id_width)}  "
            f"{spec.description.ljust(description_width)}  "
            f"engines: {', '.join(spec.supported_engines).ljust(engines_width)}  "
            f"[{cached}]"
        )
    return 0


def _apply_engine_override(
    spec, config, engine: Optional[str], parser: argparse.ArgumentParser
):
    """Validate ``--engine`` against the spec and apply it to the config."""
    if engine is None:
        return config
    if not spec.supports_engine(engine):
        parser.error(
            f"experiment {spec.experiment_id} does not support "
            f"--engine {engine}; supported engines: "
            f"{', '.join(spec.supported_engines)}"
        )
    if config is not None and hasattr(config, "trial_engine"):
        config.trial_engine = engine
    return config


def _command_run_experiment(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    from repro.experiments import runner as runner_module

    spec = get_spec(args.experiment)
    config = spec.build_config(args.full)
    config = _apply_engine_override(spec, config, args.engine, parser)
    try:
        if args.counts_threshold is not None:
            # Experiment configs only carry an engine name, so the auto
            # switch-over point goes through the process default — restored
            # afterwards so programmatic main() callers are unaffected.
            runner_module.set_default_counts_threshold(args.counts_threshold)
        table = spec.run_fn(config, random_state=args.seed)
    finally:
        if args.counts_threshold is not None:
            runner_module.set_default_counts_threshold(None)
    print(table.to_text())
    return 0


def _command_run_all(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    experiment_ids = args.experiments or None
    if experiment_ids is not None:
        known = set(registered_ids())
        unknown = [i for i in experiment_ids if i not in known]
        if unknown:
            parser.error(
                f"unknown experiment(s): {', '.join(unknown)}; "
                f"registered: {', '.join(registered_ids())}"
            )
    store = None if args.out == "none" else ResultStore(args.out)
    if args.resume and store is None:
        parser.error("--resume requires a result store (--out DIR)")
    started = time.perf_counter()
    # The threshold travels inside every job (and its store identity), so
    # it reaches worker processes and never aliases cached artifacts.
    reports = run_all(
        experiment_ids,
        jobs=args.jobs,
        seed=args.seed,
        seeds=args.seeds,
        full=args.full,
        engine=args.engine,
        counts_threshold=args.counts_threshold,
        store=store,
        resume=args.resume,
        log=print,
    )
    elapsed = time.perf_counter() - started
    ran = sum(report.status == "ran" for report in reports)
    cached = sum(report.status == "cached" for report in reports)
    skipped = sum(report.status == "skipped" for report in reports)
    failed = [report for report in reports if report.status == "failed"]
    print(
        f"run-all: {ran} ran, {cached} cached, {skipped} skipped, "
        f"{len(failed)} failed in {elapsed:.2f} s"
        + (f" (results in {store.root}/)" if store is not None else "")
    )
    for report in failed:
        print(f"FAILED {report.experiment_id}: {report.error}")
    if args.print_tables:
        for report in reports:
            if report.table is not None:
                print()
                print(report.table.to_text())
    return 1 if failed else 0


def _run_scenario(
    scenario: Scenario, parser: argparse.ArgumentParser
):
    """Execute a scenario, turning validation errors into parser errors."""
    try:
        return simulate(scenario)
    except ValueError as error:
        parser.error(str(error))


def _profile_report(profiler: cProfile.Profile, limit: int = 20) -> str:
    """The top-``limit`` cumulative-time functions of a finished profile."""
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(limit)
    return stream.getvalue().rstrip()


def _result_exit_code(result) -> int:
    """0 when every sampled trial succeeded (analytic runs always return 0:
    they report probabilities, not per-trial verdicts)."""
    if result.is_analytic:
        return 0
    return 0 if result.success_count == result.num_trials else 1


def _parse_faults(spec: str) -> FaultModel:
    """Parse ``--faults KIND:FRACTION[:PARAM]`` into a :class:`FaultModel`.

    ``PARAM`` is the crash round for ``crash`` and the per-message drop
    rate for ``omission``; the liar and adaptive adversaries take none.
    """
    parts = [part.strip() for part in spec.split(":")]
    if len(parts) not in (2, 3) or not parts[0]:
        raise ValueError(
            f"--faults must look like KIND:FRACTION[:PARAM], e.g. liar:0.1 "
            f"or crash:0.2:3 (got {spec!r})"
        )
    kind = parts[0]
    try:
        knobs = {"kind": kind, "fraction": float(parts[1])}
        if len(parts) == 3:
            if kind == "crash":
                knobs["crash_round"] = int(parts[2])
            elif kind == "omission":
                knobs["drop_rate"] = float(parts[2])
            else:
                raise ValueError(
                    f"--faults {kind} takes no extra parameter; only crash "
                    "(crash round) and omission (drop rate) do"
                )
    except ValueError as error:
        raise ValueError(f"--faults {spec!r}: {error}") from None
    return FaultModel(**knobs)


def _command_simulate(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    try:
        faults = _parse_faults(args.faults) if args.faults else None
        scenario = Scenario(
            workload=args.workload,
            num_nodes=args.nodes,
            num_opinions=args.opinions,
            epsilon=args.epsilon,
            engine=args.engine,
            num_trials=args.trials,
            seed=args.seed,
            counts_threshold=args.counts_threshold,
            correct_opinion=args.correct_opinion,
            support_size=args.support,
            bias=args.bias,
            rule=args.rule,
            sample_size=args.sample_size,
            max_rounds=args.max_rounds,
            process=args.process,
            faults=faults,
        )
    except ValueError as error:
        parser.error(str(error))
    profiler = cProfile.Profile() if args.profile else None
    if profiler is not None:
        profiler.enable()
        try:
            result = _run_scenario(scenario, parser)
        finally:
            profiler.disable()
        # Stats go to stderr so ``--json`` output stays parseable.
        print(_profile_report(profiler), file=sys.stderr)
    else:
        result = _run_scenario(scenario, parser)
    if args.json:
        print(result.to_json())
        return _result_exit_code(result)
    print(f"workload              : {result.workload}")
    print(f"nodes                 : {result.num_nodes}")
    print(f"opinions              : {result.num_opinions}")
    print(f"noise matrix          : {scenario.build_noise().name}")
    if faults is not None:
        print(
            f"faults                : {faults.kind} "
            f"(f={faults.fraction:g}, {scenario.faulty_count()} nodes)"
        )
    print(f"engine                : {result.engine}")
    degraded = result.provenance.get("engine_degraded_reason")
    if degraded:
        print(f"engine degraded       : {degraded}")
    if result.is_analytic:
        print(f"analytic method       : {result.analytic_method}")
        if result.state_space_size is not None:
            print(f"state space           : {result.state_space_size}")
    else:
        print(f"trials                : {result.num_trials}")
    print(f"target opinion        : {result.target_opinion}")
    print(f"convergence rate      : {result.convergence_rate:.4f}")
    print(f"success rate          : {result.success_rate:.4f}")
    print(f"mean rounds           : {result.mean_rounds:.1f}")
    print(f"mean final bias       : {result.mean_final_bias:.4f}")
    elapsed = result.provenance["wall_time_seconds"]
    print(f"wall time             : {elapsed:.3f} s")
    if not result.is_analytic:
        print(
            f"throughput            : {result.num_trials / elapsed:.2f} "
            "trials/s"
        )
    return _result_exit_code(result)


def _parse_axis_values(raw: str) -> list:
    """Parse a ``--axis`` value list: int, then float, then bare string."""
    values = []
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            values.append(int(token))
            continue
        except ValueError:
            pass
        try:
            values.append(float(token))
            continue
        except ValueError:
            pass
        values.append(token)
    return values


def _command_sweep(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    import json as json_module

    axes = {}
    for spec in args.axis:
        name, separator, raw = spec.partition("=")
        name = name.strip()
        if not separator or not name:
            parser.error(f"--axis must look like NAME=V1,V2,... (got {spec!r})")
        values = _parse_axis_values(raw)
        if not values:
            parser.error(f"--axis {name} needs at least one value")
        axes[name] = values
    if not axes:
        parser.error("sweep needs at least one --axis NAME=V1,V2,...")
    try:
        base = Scenario(
            workload=args.workload,
            num_nodes=args.nodes,
            num_opinions=args.opinions,
            epsilon=args.epsilon,
            engine=args.engine,
            num_trials=args.trials,
            seed=args.seed,
            counts_threshold=args.counts_threshold,
            correct_opinion=args.correct_opinion,
            support_size=args.support,
            bias=args.bias,
            rule=args.rule,
            sample_size=args.sample_size,
            max_rounds=args.max_rounds,
            process=args.process,
        )
        grid = ScenarioGrid(base, axes)
        store = None if args.store is None else ResultStore(args.store)
        sweep = simulate_sweep(grid, store=store)
    except ValueError as error:
        parser.error(str(error))
    rows = sweep.summary()
    if args.json:
        print(json_module.dumps(
            {
                "grid": grid.to_dict(),
                "wall_time_seconds": sweep.wall_time_seconds,
                "cache_hits": sweep.cache_hits,
                "points": rows,
            },
            indent=2,
        ))
        return 0
    axis_names = list(grid.axis_names)
    header = axis_names + ["engine", "cached", "success_rate", "mean_rounds"]
    widths = [max(len(name), 12) for name in header]
    print("  ".join(name.ljust(width) for name, width in zip(header, widths)))
    for row in rows:
        cells = [f"{row[name]:g}" if isinstance(row[name], float) else str(row[name])
                 for name in axis_names]
        cells += [
            str(row["engine"]),
            "yes" if row["from_cache"] else "-",
            f"{row['success_rate']:.4f}",
            f"{row['mean_rounds']:.1f}",
        ]
        print("  ".join(cell.ljust(width) for cell, width in zip(cells, widths)))
    print(
        f"sweep: {len(rows)} points ({sweep.cache_hits} cached) in "
        f"{sweep.wall_time_seconds:.2f} s"
    )
    return 0


def _command_rumor(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    scenario = Scenario(
        workload="rumor",
        num_nodes=args.nodes,
        num_opinions=args.opinions,
        epsilon=args.epsilon,
        engine="sequential",
        num_trials=1,
        seed=args.seed,
        correct_opinion=args.correct_opinion,
    )
    result = _run_scenario(scenario, parser)
    success = bool(result.successes[0])
    print(f"nodes                 : {args.nodes}")
    print(f"opinions              : {args.opinions}")
    print(f"noise matrix          : {scenario.build_noise().name}")
    print(f"rounds                : {int(result.rounds[0])}")
    print(f"bias after Stage 1    : {float(result.bias_after_stage1[0]):.4f}")
    print(f"success               : {success}")
    print(f"correct fraction      : {float(result.correct_fractions()[0]):.4f}")
    return 0 if success else 1


def _command_plurality(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    scenario = Scenario(
        workload="plurality",
        num_nodes=args.nodes,
        num_opinions=args.opinions,
        epsilon=args.epsilon,
        engine="sequential",
        num_trials=1,
        seed=args.seed,
        support_size=args.support,
        bias=args.bias,
    )
    instance = scenario.plurality_instance()
    result = _run_scenario(scenario, parser)
    success = bool(result.successes[0])
    print(f"nodes                 : {args.nodes}")
    print(f"initially opinionated : {instance.support_size}")
    print(f"plurality opinion     : {instance.plurality_opinion()}")
    print(f"bias within support   : {instance.plurality_bias_within_support():.4f}")
    print(f"rounds                : {int(result.rounds[0])}")
    print(f"success               : {success}")
    print(f"correct fraction      : {float(result.correct_fractions()[0]):.4f}")
    return 0 if success else 1


def _command_ensemble(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    scenario = Scenario(
        workload="rumor",
        num_nodes=args.nodes,
        num_opinions=args.opinions,
        epsilon=args.epsilon,
        engine=args.engine,
        counts_threshold=args.counts_threshold,
        num_trials=args.trials,
        seed=args.seed,
    )
    result = _run_scenario(scenario, parser)
    elapsed = result.provenance["wall_time_seconds"]
    print(f"nodes                 : {args.nodes}")
    print(f"opinions              : {args.opinions}")
    print(f"noise matrix          : {scenario.build_noise().name}")
    print(f"trials                : {args.trials}")
    print(f"engine                : {result.engine}")
    if result.is_analytic:
        print(f"analytic method       : {result.analytic_method}")
    print(f"success rate          : {result.success_rate:.4f}")
    print(f"mean rounds           : {result.mean_rounds:.1f}")
    if result.bias_after_stage1 is not None:
        print(
            "mean Stage-1 bias     : "
            f"{float(np.mean(result.bias_after_stage1)):.4f}"
        )
    elif result.expected_bias_after_stage1 is not None:
        print(
            "mean Stage-1 bias     : "
            f"{result.expected_bias_after_stage1:.4f}"
        )
    print(f"wall time             : {elapsed:.3f} s")
    if not result.is_analytic:
        print(f"throughput            : {args.trials / elapsed:.2f} trials/s")
    return _result_exit_code(result)


def _command_dynamics(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if args.rule == "h-majority" and args.sample_size is None:
        parser.error("--rule h-majority requires --sample-size")
    if args.rule != "h-majority" and args.sample_size is not None:
        parser.error(
            f"--sample-size only applies to --rule h-majority (got {args.rule})"
        )
    # The engine policy (including "auto") goes straight into the scenario:
    # an explicit --engine counts with an intractable maj() table is a
    # validation error, while "auto" degrades to the batched tier exactly
    # like `repro simulate` does.
    try:
        scenario = Scenario(
            workload="dynamics",
            num_nodes=args.nodes,
            num_opinions=args.opinions,
            epsilon=args.epsilon,
            engine=args.engine,
            counts_threshold=args.counts_threshold,
            num_trials=args.trials,
            seed=args.seed,
            bias=args.bias,
            rule=args.rule,
            sample_size=args.sample_size,
            max_rounds=args.max_rounds,
        )
    except ValueError as error:
        parser.error(str(error))
    result = _run_scenario(scenario, parser)
    elapsed = result.provenance["wall_time_seconds"]
    print(f"nodes                 : {args.nodes}")
    print(f"opinions              : {args.opinions}")
    print(f"noise matrix          : {scenario.build_noise().name}")
    print(f"rule                  : {args.rule}")
    print(f"trials                : {args.trials}")
    print(f"engine                : {result.engine}")
    if result.is_analytic:
        print(f"analytic method       : {result.analytic_method}")
    print(f"convergence rate      : {result.convergence_rate:.4f}")
    print(f"success rate          : {result.success_rate:.4f}")
    print(f"mean rounds           : {result.mean_rounds:.1f}")
    print(f"mean final bias       : {result.mean_final_bias:.4f}")
    print(f"wall time             : {elapsed:.3f} s")
    if not result.is_analytic:
        print(f"throughput            : {args.trials / elapsed:.2f} trials/s")
    return _result_exit_code(result)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if hasattr(args, "engine") and hasattr(args, "counts_threshold"):
        _validate_engine_arguments(args, parser)
    if args.command == "list-experiments":
        return _command_list_experiments(args)
    if args.command == "run-experiment":
        return _command_run_experiment(args, parser)
    if args.command == "run-all":
        return _command_run_all(args, parser)
    if args.command == "simulate":
        return _command_simulate(args, parser)
    if args.command == "sweep":
        return _command_sweep(args, parser)
    if args.command == "rumor":
        return _command_rumor(args, parser)
    if args.command == "plurality":
        return _command_plurality(args, parser)
    if args.command == "ensemble":
        return _command_ensemble(args, parser)
    if args.command == "dynamics":
        return _command_dynamics(args, parser)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
