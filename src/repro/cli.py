"""Command-line interface.

The CLI exposes the most common workflows without writing Python:

* ``python -m repro list-experiments`` — show the experiment index (E1–E14);
* ``python -m repro run-experiment E5 [--full] [--seed 0]`` — regenerate one
  experiment table and print it;
* ``python -m repro rumor --nodes 2000 --opinions 4 --epsilon 0.3`` — run one
  rumor-spreading instance and print the outcome;
* ``python -m repro plurality --nodes 2000 --opinions 3 --epsilon 0.3
  --support 400 --bias 0.2`` — run one plurality-consensus instance;
* ``python -m repro ensemble --nodes 2000 --opinions 3 --epsilon 0.3
  --trials 32`` — run a batch of independent rumor-spreading trials through
  the vectorized ensemble engine (``--engine counts`` for the
  sufficient-statistics engine that scales to millions of nodes,
  ``--engine sequential`` for the reference loop, ``--engine auto`` to
  switch to counts above ``--counts-threshold`` nodes) and print the batch
  statistics plus throughput;
* ``python -m repro dynamics --rule 3-majority --nodes 2000 --trials 32`` —
  run a batch of independent baseline-dynamics trials (voter, 3-majority,
  h-majority, undecided-state, median rule) on the noisy pull substrate,
  with the same ``--engine`` choices.

``run-experiment`` accepts the same ``--engine`` / ``--counts-threshold``
pair and overrides the experiment config's trial engine with it.  Every
command accepts ``--seed`` for reproducibility.  The CLI is a thin layer
over the public API; anything it prints can also be obtained
programmatically (see README).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

import numpy as np

from repro.core.plurality import PluralityConsensus
from repro.core.rumor import RumorSpreading
from repro.experiments import (
    exp_ablation_sampling,
    exp_amplification,
    exp_baselines,
    exp_epsilon_threshold,
    exp_memory,
    exp_noise_matrices,
    exp_parity,
    exp_plurality_consensus,
    exp_poissonization,
    exp_rumor_scaling,
    exp_stage1_bias,
    exp_stage1_growth,
    exp_stage2_trajectory,
    exp_topologies,
)
from repro.dynamics import DYNAMICS_RULES
from repro.experiments.runner import (
    TRIAL_ENGINE_CHOICES,
    dynamics_trial_outcomes,
    protocol_trial_outcomes,
    resolve_trial_engine,
)
from repro.network.pull_model import vote_table_is_tractable
from repro.experiments.workloads import (
    biased_population,
    plurality_instance_with_bias,
    rumor_instance,
)
from repro.noise.families import uniform_noise_matrix

__all__ = ["main", "build_parser", "EXPERIMENTS"]

#: Experiment id -> (module, one-line description).
EXPERIMENTS = {
    "E1": (exp_rumor_scaling, "Theorem 1: rumor-spreading scaling"),
    "E2": (exp_plurality_consensus, "Theorem 2: plurality consensus"),
    "E3": (exp_stage1_bias, "Lemma 4/6/7: Stage-1 bias"),
    "E4": (exp_stage1_growth, "Claims 2/3: Stage-1 growth"),
    "E5": (exp_amplification, "Proposition 1: amplification bound"),
    "E6": (exp_stage2_trajectory, "Lemma 12: Stage-2 trajectory"),
    "E7": (exp_noise_matrices, "Section 4: majority-preserving matrices"),
    "E8": (exp_poissonization, "Claim 1 / Lemma 2: process equivalence"),
    "E9": (exp_epsilon_threshold, "Appendix D: epsilon threshold"),
    "E10": (exp_parity, "Lemma 17: sample-size parity"),
    "E11": (exp_memory, "Memory bound"),
    "E12": (exp_baselines, "Baseline comparison under noise"),
    "E13": (exp_ablation_sampling, "Ablations: sampling rule, engine"),
    "E14": (exp_topologies, "Extension: non-complete topologies"),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Noisy rumor spreading and plurality consensus (PODC 2016) - reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "list-experiments", help="list the reproducible experiments (E1-E14)"
    )

    run_parser = subparsers.add_parser(
        "run-experiment", help="regenerate one experiment table"
    )
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS, key=_experiment_key))
    run_parser.add_argument(
        "--full", action="store_true",
        help="use the full() configuration instead of quick()",
    )
    run_parser.add_argument("--seed", type=int, default=0)
    _add_engine_arguments(run_parser, default=None)

    rumor_parser = subparsers.add_parser(
        "rumor", help="run one noisy rumor-spreading instance"
    )
    _add_common_instance_arguments(rumor_parser)
    rumor_parser.add_argument(
        "--correct-opinion", type=int, default=1,
        help="the opinion held by the source (default 1)",
    )

    plurality_parser = subparsers.add_parser(
        "plurality", help="run one noisy plurality-consensus instance"
    )
    _add_common_instance_arguments(plurality_parser)
    plurality_parser.add_argument(
        "--support", type=int, default=None,
        help="number of initially opinionated nodes (default: all nodes)",
    )
    plurality_parser.add_argument(
        "--bias", type=float, default=0.2,
        help="plurality bias within the support (default 0.2)",
    )

    ensemble_parser = subparsers.add_parser(
        "ensemble",
        help="run a batch of independent rumor-spreading trials at once",
    )
    _add_common_instance_arguments(ensemble_parser)
    ensemble_parser.add_argument(
        "--trials", type=int, default=32,
        help="number of independent trials R (default 32)",
    )
    _add_engine_arguments(ensemble_parser)

    dynamics_parser = subparsers.add_parser(
        "dynamics",
        help="run a batch of independent baseline-dynamics trials at once",
    )
    _add_common_instance_arguments(dynamics_parser)
    dynamics_parser.add_argument(
        "--rule", choices=DYNAMICS_RULES, default="3-majority",
        help="the baseline update rule (default 3-majority)",
    )
    dynamics_parser.add_argument(
        "--sample-size", type=int, default=None,
        help="observations per round for the h-majority rule",
    )
    dynamics_parser.add_argument(
        "--bias", type=float, default=0.1,
        help="initial bias toward opinion 1 (default 0.1)",
    )
    dynamics_parser.add_argument(
        "--max-rounds", type=int, default=300,
        help="round budget per trial (default 300)",
    )
    dynamics_parser.add_argument(
        "--trials", type=int, default=32,
        help="number of independent trials R (default 32)",
    )
    _add_engine_arguments(dynamics_parser)
    return parser


def _add_engine_arguments(
    parser: argparse.ArgumentParser, default: Optional[str] = "batched"
) -> None:
    """The shared ``--engine`` / ``--counts-threshold`` options.

    Every trial-running subcommand (``ensemble``, ``dynamics``,
    ``run-experiment``) accepts the same engine vocabulary; for
    ``run-experiment`` the default is ``None`` (keep the experiment
    config's own engine choice).
    """
    parser.add_argument(
        "--engine", choices=TRIAL_ENGINE_CHOICES, default=default,
        help="trial engine: batched (R,n) vectorized ensemble, counts "
             "(R,k) sufficient statistics, sequential reference loop, or "
             "auto (counts above --counts-threshold nodes)"
             + ("" if default is None else f" (default {default})"),
    )
    parser.add_argument(
        "--counts-threshold", type=int, default=None, metavar="N",
        help="population size at which --engine auto switches to the "
             "counts engine (default: runner.DEFAULT_COUNTS_THRESHOLD)",
    )


def _validate_engine_arguments(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> None:
    """Uniform validation of the shared engine options."""
    if args.counts_threshold is not None and args.counts_threshold < 1:
        parser.error("--counts-threshold must be >= 1")
    if args.counts_threshold is not None and args.engine != "auto":
        parser.error("--counts-threshold only applies to --engine auto")


def _experiment_key(experiment_id: str) -> int:
    return int(experiment_id[1:])


def _add_common_instance_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=2000, help="population size n")
    parser.add_argument("--opinions", type=int, default=3, help="number of opinions k")
    parser.add_argument(
        "--epsilon", type=float, default=0.3,
        help="noise parameter of the uniform-noise matrix (default 0.3)",
    )
    parser.add_argument("--seed", type=int, default=0)


def _command_list_experiments() -> int:
    width = max(len(identifier) for identifier in EXPERIMENTS)
    for identifier in sorted(EXPERIMENTS, key=_experiment_key):
        _, description = EXPERIMENTS[identifier]
        print(f"{identifier.ljust(width)}  {description}")
    return 0


def _command_run_experiment(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    from repro.experiments import runner as runner_module

    module, _ = EXPERIMENTS[args.experiment]
    config_cls = None
    for attribute in vars(module).values():
        if isinstance(attribute, type) and hasattr(attribute, "quick"):
            config_cls = attribute
            break
    config = None
    if config_cls is not None:
        config = config_cls.full() if args.full else config_cls.quick()
    if args.engine is not None:
        if config is None or not hasattr(config, "trial_engine"):
            parser.error(
                f"experiment {args.experiment} does not run repeated trials "
                "through a selectable engine (no trial_engine in its config)"
            )
        config.trial_engine = args.engine
    try:
        if args.counts_threshold is not None:
            # Experiment configs only carry an engine name, so the auto
            # switch-over point goes through the process default — restored
            # afterwards so programmatic main() callers are unaffected.
            runner_module.set_default_counts_threshold(args.counts_threshold)
        table = module.run(config, random_state=args.seed)
    finally:
        if args.counts_threshold is not None:
            runner_module.set_default_counts_threshold(None)
    print(table.to_text())
    return 0


def _command_rumor(args: argparse.Namespace) -> int:
    noise = uniform_noise_matrix(args.opinions, args.epsilon)
    result = RumorSpreading(
        args.nodes,
        args.opinions,
        noise,
        args.epsilon,
        correct_opinion=args.correct_opinion,
        random_state=args.seed,
    ).run()
    print(f"nodes                 : {args.nodes}")
    print(f"opinions              : {args.opinions}")
    print(f"noise matrix          : {noise.name}")
    print(f"rounds                : {result.total_rounds}")
    print(f"bias after Stage 1    : {result.bias_after_stage1:.4f}")
    print(f"success               : {result.success}")
    print(f"correct fraction      : {result.correct_fraction():.4f}")
    return 0 if result.success else 1


def _command_plurality(args: argparse.Namespace) -> int:
    noise = uniform_noise_matrix(args.opinions, args.epsilon)
    support = args.support if args.support is not None else args.nodes
    instance = plurality_instance_with_bias(
        args.nodes, support, args.opinions, args.bias
    )
    result = PluralityConsensus(
        instance, noise, args.epsilon, random_state=args.seed
    ).run()
    print(f"nodes                 : {args.nodes}")
    print(f"initially opinionated : {instance.support_size}")
    print(f"plurality opinion     : {instance.plurality_opinion()}")
    print(f"bias within support   : {instance.plurality_bias_within_support():.4f}")
    print(f"rounds                : {result.total_rounds}")
    print(f"success               : {result.success}")
    print(f"correct fraction      : {result.correct_fraction():.4f}")
    return 0 if result.success else 1


def _command_ensemble(args: argparse.Namespace) -> int:
    noise = uniform_noise_matrix(args.opinions, args.epsilon)
    initial_state = rumor_instance(args.nodes, args.opinions, 1)
    engine = resolve_trial_engine(
        args.engine, args.nodes, args.counts_threshold
    )
    started = time.perf_counter()
    outcomes = protocol_trial_outcomes(
        initial_state,
        noise,
        args.epsilon,
        args.trials,
        args.seed,
        target_opinion=1,
        trial_engine=engine,
    )
    elapsed = time.perf_counter() - started
    successes = sum(outcome.success for outcome in outcomes)
    rounds = [outcome.total_rounds for outcome in outcomes]
    biases = [
        outcome.bias_after_stage1
        for outcome in outcomes
        if outcome.bias_after_stage1 is not None
    ]
    print(f"nodes                 : {args.nodes}")
    print(f"opinions              : {args.opinions}")
    print(f"noise matrix          : {noise.name}")
    print(f"trials                : {args.trials}")
    print(f"engine                : {engine}")
    print(f"success rate          : {successes / args.trials:.4f}")
    print(f"mean rounds           : {float(np.mean(rounds)):.1f}")
    if biases:
        print(f"mean Stage-1 bias     : {float(np.mean(biases)):.4f}")
    print(f"wall time             : {elapsed:.3f} s")
    print(f"throughput            : {args.trials / elapsed:.2f} trials/s")
    return 0 if successes == args.trials else 1


def _command_dynamics(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if args.rule == "h-majority" and args.sample_size is None:
        parser.error("--rule h-majority requires --sample-size")
    if args.rule != "h-majority" and args.sample_size is not None:
        parser.error(
            f"--sample-size only applies to --rule h-majority (got {args.rule})"
        )
    noise = uniform_noise_matrix(args.opinions, args.epsilon)
    initial_state = biased_population(
        args.nodes, args.opinions, args.bias, random_state=args.seed
    )
    engine = resolve_trial_engine(
        args.engine, args.nodes, args.counts_threshold
    )
    if (
        engine == "counts"
        and args.sample_size is not None
        and not vote_table_is_tractable(args.sample_size, args.opinions)
    ):
        parser.error(
            f"--sample-size {args.sample_size} with {args.opinions} opinions "
            "exceeds the counts engine's closed-form maj() table budget; "
            "use --engine batched"
        )
    started = time.perf_counter()
    outcomes = dynamics_trial_outcomes(
        initial_state,
        noise,
        args.rule,
        args.max_rounds,
        args.trials,
        args.seed,
        sample_size=args.sample_size,
        target_opinion=1,
        trial_engine=engine,
    )
    elapsed = time.perf_counter() - started
    successes = sum(outcome.success for outcome in outcomes)
    converged = sum(outcome.converged for outcome in outcomes)
    rounds = [outcome.rounds_executed for outcome in outcomes]
    biases = [outcome.final_bias for outcome in outcomes]
    print(f"nodes                 : {args.nodes}")
    print(f"opinions              : {args.opinions}")
    print(f"noise matrix          : {noise.name}")
    print(f"rule                  : {args.rule}")
    print(f"trials                : {args.trials}")
    print(f"engine                : {engine}")
    print(f"convergence rate      : {converged / args.trials:.4f}")
    print(f"success rate          : {successes / args.trials:.4f}")
    print(f"mean rounds           : {float(np.mean(rounds)):.1f}")
    print(f"mean final bias       : {float(np.mean(biases)):.4f}")
    print(f"wall time             : {elapsed:.3f} s")
    print(f"throughput            : {args.trials / elapsed:.2f} trials/s")
    return 0 if successes == args.trials else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if hasattr(args, "engine"):
        _validate_engine_arguments(args, parser)
    if args.command == "list-experiments":
        return _command_list_experiments()
    if args.command == "run-experiment":
        return _command_run_experiment(args, parser)
    if args.command == "rumor":
        return _command_rumor(args)
    if args.command == "plurality":
        return _command_plurality(args)
    if args.command == "ensemble":
        return _command_ensemble(args)
    if args.command == "dynamics":
        return _command_dynamics(args, parser)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
