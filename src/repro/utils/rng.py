"""Random number generator management.

Every stochastic component in the library draws randomness from a
``numpy.random.Generator``.  Accepting ``None``, an integer seed, or an
existing generator everywhere keeps experiments reproducible while letting
quick interactive use stay terse.  The helpers in this module centralize that
conversion and provide deterministic "spawning" of independent generators for
multi-trial experiments.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]

#: Randomness accepted by the batched ensemble machinery: either a single
#: :data:`RandomState` (shared-stream mode, maximally vectorized) or a
#: sequence with one :data:`RandomState` per trial (per-trial-stream mode,
#: reproducible trial by trial).
EnsembleRandomState = Union[RandomState, Sequence[RandomState]]

__all__ = [
    "RandomState",
    "EnsembleRandomState",
    "as_generator",
    "spawn_generators",
    "derive_seed",
    "is_generator_sequence",
    "as_trial_generators",
    "normalize_ensemble_random_state",
    "resolve_trial_randomness",
]


def as_generator(random_state: RandomState = None) -> np.random.Generator:
    """Coerce ``random_state`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    random_state:
        ``None`` for OS entropy, an ``int`` seed, a ``SeedSequence``, or an
        already-constructed ``Generator`` (returned unchanged).

    Returns
    -------
    numpy.random.Generator
        A generator suitable for simulation use.
    """
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, np.random.SeedSequence):
        return np.random.default_rng(random_state)
    if random_state is None or isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(random_state)
    raise TypeError(
        "random_state must be None, an int, a SeedSequence, or a Generator; "
        f"got {type(random_state).__name__}"
    )


def spawn_generators(
    count: int, random_state: RandomState = None
) -> List[np.random.Generator]:
    """Create ``count`` statistically independent generators.

    The generators are derived from a single :class:`numpy.random.SeedSequence`
    so that a fixed ``random_state`` yields a fixed family of streams, which is
    what repeated-trial experiments need for reproducibility.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(random_state, np.random.SeedSequence):
        seed_seq = random_state
    elif isinstance(random_state, np.random.Generator):
        # Derive a sequence from the generator without perturbing shared state
        # more than one draw.
        seed_seq = np.random.SeedSequence(int(random_state.integers(0, 2**63 - 1)))
    else:
        seed_seq = np.random.SeedSequence(random_state)
    return [np.random.default_rng(child) for child in seed_seq.spawn(count)]


def is_generator_sequence(random_state) -> bool:
    """``True`` if ``random_state`` is a per-trial sequence of RNG sources.

    The ensemble engines accept either one shared randomness source or a
    list/tuple with one source per trial; this predicate is how they tell the
    two apart (strings and arrays are not treated as sequences).
    """
    return isinstance(random_state, (list, tuple))


def as_trial_generators(
    random_state: "EnsembleRandomState", num_trials: int
) -> List[np.random.Generator]:
    """Coerce ``random_state`` into exactly ``num_trials`` generators.

    A list/tuple is validated (length must match) and coerced element-wise,
    so callers can pin per-trial seeds; any other :data:`RandomState` is
    expanded via :func:`spawn_generators` into independent child streams.
    """
    if num_trials < 1:
        raise ValueError(f"num_trials must be >= 1, got {num_trials}")
    if is_generator_sequence(random_state):
        if len(random_state) != num_trials:
            raise ValueError(
                f"expected {num_trials} per-trial random states, "
                f"got {len(random_state)}"
            )
        return [as_generator(entry) for entry in random_state]
    return spawn_generators(num_trials, random_state)


def normalize_ensemble_random_state(
    random_state: "EnsembleRandomState",
) -> "EnsembleRandomState":
    """Coerce an ensemble randomness source into generators, preserving mode.

    A per-trial sequence becomes a list of generators (one per entry); any
    other :data:`RandomState` becomes a single shared generator.  This is the
    normalization every batched executor applies on construction.
    """
    if is_generator_sequence(random_state):
        return [as_generator(entry) for entry in random_state]
    return as_generator(random_state)


def resolve_trial_randomness(
    random_state: "EnsembleRandomState", num_trials: int, rng_mode: str
) -> "EnsembleRandomState":
    """The randomness an ensemble engine uses for a ``num_trials`` batch.

    The shared policy of every batched engine: an explicit per-trial
    sequence always wins; otherwise ``rng_mode`` decides between spawning
    one independent child generator per trial (``"per_trial"``, the
    trial-by-trial-reproducible default) and driving the whole batch from
    one shared generator (``"shared"``, fully batched draws).
    """
    if is_generator_sequence(random_state):
        return as_trial_generators(random_state, num_trials)
    if rng_mode == "per_trial":
        return as_trial_generators(random_state, num_trials)
    return as_generator(random_state)


def derive_seed(random_state: RandomState, index: int) -> int:
    """Derive a stable integer seed for trial ``index`` of an experiment.

    This is used by experiment runners that want to record, per trial, an
    integer seed that can later reproduce that trial in isolation.
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    if isinstance(random_state, np.random.Generator):
        base = int(random_state.integers(0, 2**31 - 1))
    elif isinstance(random_state, np.random.SeedSequence):
        base = int(random_state.generate_state(1)[0])
    elif random_state is None:
        base = 0
    else:
        base = int(random_state)
    mix = np.random.SeedSequence(entropy=base, spawn_key=(index,))
    return int(mix.generate_state(1)[0])
