"""Argument-validation helpers shared across the library.

The public API validates its inputs eagerly with clear error messages; these
helpers keep that validation uniform and keep the individual modules short.
All helpers raise ``ValueError`` (or ``TypeError`` for wrong types) and return
the validated, possibly-normalized value so they can be used inline.
"""

from __future__ import annotations

from numbers import Integral, Real
from typing import Sequence

import numpy as np

__all__ = [
    "require_positive_int",
    "require_non_negative_int",
    "require_positive",
    "require_fraction",
    "require_in_range",
    "require_probability_vector",
    "require_opinion",
]


def require_positive_int(value, name: str) -> int:
    """Validate that ``value`` is an integer >= 1 and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def require_non_negative_int(value, name: str) -> int:
    """Validate that ``value`` is an integer >= 0 and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def require_positive(value, name: str) -> float:
    """Validate that ``value`` is a finite real number > 0."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite number > 0, got {value}")
    return value


def require_fraction(value, name: str, *, inclusive_low: bool = True,
                     inclusive_high: bool = True) -> float:
    """Validate that ``value`` lies in the unit interval [0, 1]."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    high_ok = value <= 1.0 if inclusive_high else value < 1.0
    if not (np.isfinite(value) and low_ok and high_ok):
        low_bracket = "[" if inclusive_low else "("
        high_bracket = "]" if inclusive_high else ")"
        raise ValueError(
            f"{name} must lie in {low_bracket}0, 1{high_bracket}, got {value}"
        )
    return value


def require_in_range(value, name: str, low: float, high: float) -> float:
    """Validate that ``low <= value <= high``."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not (np.isfinite(value) and low <= value <= high):
        raise ValueError(f"{name} must lie in [{low}, {high}], got {value}")
    return value


def require_probability_vector(values: Sequence[float], name: str,
                               *, atol: float = 1e-9) -> np.ndarray:
    """Validate that ``values`` is a non-negative vector summing to 1."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {array.shape}")
    if array.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if np.any(~np.isfinite(array)):
        raise ValueError(f"{name} must contain only finite values")
    if np.any(array < -atol):
        raise ValueError(f"{name} must be non-negative, got {array.tolist()}")
    total = float(array.sum())
    if abs(total - 1.0) > max(atol, 1e-9 * array.size):
        raise ValueError(f"{name} must sum to 1 (got sum={total!r})")
    array = np.clip(array, 0.0, None)
    return array / array.sum()


def require_opinion(value, name: str, num_opinions: int,
                    *, allow_undecided: bool = False) -> int:
    """Validate an opinion label in ``1..num_opinions`` (0 = undecided)."""
    if isinstance(value, bool) or not isinstance(value, Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    low = 0 if allow_undecided else 1
    if not (low <= value <= num_opinions):
        raise ValueError(
            f"{name} must be in [{low}, {num_opinions}], got {value}"
        )
    return value
