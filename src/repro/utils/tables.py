"""Plain-text table rendering for experiment and benchmark output.

The benchmark harness prints the rows recorded in ``EXPERIMENTS.md`` as
simple monospaced tables; this module is the single place that formatting
lives so that experiments, examples and benches all look the same.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_records"]


def _format_cell(value: Any, float_format: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: Optional[str] = None,
    float_format: str = ".4g",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    headers = [str(header) for header in headers]
    rendered_rows: List[List[str]] = []
    for row in rows:
        cells = [_format_cell(value, float_format) for value in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells but there are {len(headers)} headers"
            )
        rendered_rows.append(cells)

    widths = [len(header) for header in headers]
    for cells in rendered_rows:
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 2 * (len(widths) - 1)))
    lines.append(render_line(headers))
    lines.append(render_line(["-" * width for width in widths]))
    lines.extend(render_line(cells) for cells in rendered_rows)
    return "\n".join(lines)


def format_records(
    records: Sequence[Mapping[str, Any]],
    *,
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    float_format: str = ".4g",
) -> str:
    """Render a list of dictionaries (records) as a table.

    ``columns`` selects and orders the keys; by default the keys of the first
    record are used in insertion order.
    """
    records = list(records)
    if not records:
        return title or "(no records)"
    if columns is None:
        columns = list(records[0].keys())
    rows = [[record.get(column, "") for column in columns] for record in records]
    return format_table(columns, rows, title=title, float_format=float_format)
