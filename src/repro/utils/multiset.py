"""Multiset helpers used by the protocol's sample-majority rule.

The paper (Section 3.1) defines, for a finite multiset ``A`` of opinions:

* ``occ(i, A)``  — the number of occurrences of opinion ``i`` in ``A``;
* ``mode(A)``    — the set of opinions with maximum occurrence count;
* ``maj(A)``     — a random variable equal to a uniformly random element of
  ``mode(A)`` (i.e. the most frequent opinion, ties broken u.a.r.).

The helpers here implement those three definitions both for explicit
sequences of opinions and for count vectors (the vectorized representation
used by the simulation engines).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence, Set

import numpy as np

from repro.utils.rng import RandomState, as_generator

__all__ = [
    "Multiset",
    "occurrences",
    "mode_set",
    "majority_vote",
    "majority_from_counts",
    "mode_from_counts",
    "opinion_counts_matrix",
]


def opinion_counts_matrix(
    opinions: np.ndarray, num_opinions: int, *, validate: bool = True
) -> np.ndarray:
    """Per-trial opinion histograms of an ``(R, n)`` opinion matrix.

    Entry ``(r, i)`` of the result is the number of nodes of trial ``r``
    holding opinion ``i + 1``; undecided nodes (0) are not counted.  The
    whole batch is histogrammed with a single offset :func:`numpy.bincount`
    — no Python loop over trials — after validating that every entry lies in
    ``[0, num_opinions]`` (an out-of-range value would otherwise silently
    leak into a neighbouring trial's slice of the flattened bincount).
    Callers that have already range-checked the matrix may pass
    ``validate=False`` to skip the extra min/max scans on hot paths.
    """
    opinions = np.asarray(opinions, dtype=np.int64)
    if opinions.ndim != 2:
        raise ValueError(
            f"opinions must be an (R, n) matrix, got shape {opinions.shape}"
        )
    if validate and opinions.size and (
        opinions.min() < 0 or opinions.max() > num_opinions
    ):
        raise ValueError(
            f"opinions must lie in [0, {num_opinions}] (0 = undecided); "
            f"got range [{opinions.min()}, {opinions.max()}]"
        )
    num_trials = opinions.shape[0]
    width = num_opinions + 1
    offsets = np.arange(num_trials, dtype=np.int64)[:, np.newaxis] * width
    flat = np.bincount(
        (opinions + offsets).ravel(), minlength=num_trials * width
    )
    # bincount returns the platform intp; pin to int64 so count arithmetic
    # cannot silently wrap on 32-bit-int platforms once n grows past 2**31.
    return flat.reshape(num_trials, width)[:, 1:].astype(np.int64, copy=False)


class Multiset:
    """A small opinion multiset with the paper's ``occ``/``mode``/``maj`` API.

    This is a convenience wrapper used in examples, tests and the
    non-vectorized reference engine; the high-throughput engines work on
    count matrices directly via :func:`majority_from_counts`.
    """

    def __init__(self, items: Iterable[int] = ()) -> None:
        self._counts: Counter = Counter()
        for item in items:
            self.add(item)

    def add(self, item: int, multiplicity: int = 1) -> None:
        """Add ``multiplicity`` copies of ``item`` to the multiset."""
        if multiplicity < 0:
            raise ValueError(f"multiplicity must be >= 0, got {multiplicity}")
        item = int(item)
        if item < 1:
            raise ValueError(f"opinions must be positive integers, got {item}")
        if multiplicity:
            self._counts[item] += multiplicity

    def occ(self, item: int) -> int:
        """Number of occurrences of ``item`` (the paper's ``occ(i, A)``)."""
        return self._counts.get(int(item), 0)

    def mode(self) -> Set[int]:
        """The set of most frequent opinions (the paper's ``mode(A)``)."""
        if not self._counts:
            return set()
        top = max(self._counts.values())
        return {item for item, count in self._counts.items() if count == top}

    def maj(self, random_state: RandomState = None) -> int:
        """The most frequent opinion with ties broken uniformly at random."""
        candidates = sorted(self.mode())
        if not candidates:
            raise ValueError("maj() is undefined on an empty multiset")
        if len(candidates) == 1:
            return candidates[0]
        rng = as_generator(random_state)
        return int(rng.choice(candidates))

    def counts(self) -> Dict[int, int]:
        """A dictionary copy of the underlying counts."""
        return dict(self._counts)

    def to_count_vector(self, num_opinions: int) -> np.ndarray:
        """Counts as a dense vector indexed by opinion ``1..num_opinions``."""
        vector = np.zeros(num_opinions, dtype=np.int64)
        for item, count in self._counts.items():
            if item > num_opinions:
                raise ValueError(
                    f"multiset contains opinion {item} > num_opinions={num_opinions}"
                )
            vector[item - 1] = count
        return vector

    def __len__(self) -> int:
        return sum(self._counts.values())

    def __contains__(self, item: int) -> bool:
        return self._counts.get(int(item), 0) > 0

    def __iter__(self):
        for item, count in sorted(self._counts.items()):
            for _ in range(count):
                yield item

    def __eq__(self, other) -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Multiset({dict(sorted(self._counts.items()))})"


def occurrences(item: int, sample: Sequence[int]) -> int:
    """``occ(i, A)`` for an explicit sequence ``A``."""
    item = int(item)
    return int(sum(1 for value in sample if int(value) == item))


def mode_set(sample: Sequence[int]) -> Set[int]:
    """``mode(A)`` for an explicit sequence ``A``."""
    counts = Counter(int(value) for value in sample)
    if not counts:
        return set()
    top = max(counts.values())
    return {item for item, count in counts.items() if count == top}


def majority_vote(sample: Sequence[int], random_state: RandomState = None) -> int:
    """``maj(A)`` for an explicit sequence ``A`` (ties broken u.a.r.)."""
    modes = sorted(mode_set(sample))
    if not modes:
        raise ValueError("majority_vote is undefined on an empty sample")
    if len(modes) == 1:
        return modes[0]
    rng = as_generator(random_state)
    return int(rng.choice(modes))


def mode_from_counts(counts: np.ndarray) -> np.ndarray:
    """Boolean mask of the most frequent opinions in a count vector.

    ``counts[i]`` is the number of occurrences of opinion ``i + 1``.  Returns
    a boolean array of the same shape marking the mode set.  An all-zero
    count vector has an empty mode set (all-``False`` mask).
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim != 1:
        raise ValueError(f"counts must be one-dimensional, got shape {counts.shape}")
    if counts.size == 0 or counts.max(initial=0) == 0:
        return np.zeros(counts.shape, dtype=bool)
    return counts == counts.max()


def majority_from_counts(
    counts: np.ndarray, random_state: RandomState = None
) -> np.ndarray:
    """Row-wise ``maj()`` over a matrix of opinion counts.

    Parameters
    ----------
    counts:
        Integer array of shape ``(num_nodes, num_opinions)`` where entry
        ``(u, i)`` is the number of copies of opinion ``i + 1`` observed by
        node ``u``.
    random_state:
        Randomness for the uniform tie-break.

    Returns
    -------
    numpy.ndarray
        Integer vector of length ``num_nodes`` with the winning opinion
        (``1 .. num_opinions``) per row, or ``0`` for rows whose counts are
        all zero (no observation, hence no vote).
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim == 1:
        counts = counts[np.newaxis, :]
        squeeze = True
    else:
        squeeze = False
    if counts.ndim != 2:
        raise ValueError(f"counts must be 2-dimensional, got shape {counts.shape}")
    rng = as_generator(random_state)
    num_nodes, num_opinions = counts.shape
    row_max = counts.max(axis=1)
    # Uniform tie-break: perturb each count by a random key and take the
    # argmax among entries achieving the row maximum.
    tie_keys = rng.random(counts.shape)
    masked_keys = np.where(counts == row_max[:, np.newaxis], tie_keys, -1.0)
    winners = masked_keys.argmax(axis=1) + 1
    winners = np.where(row_max > 0, winners, 0).astype(np.int64)
    if squeeze:
        return winners[0]
    return winners
