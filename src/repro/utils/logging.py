"""Logging helpers.

The library logs through the standard :mod:`logging` module under the
``repro`` namespace and never configures the root logger; applications and
the experiment harness decide where the records go.
"""

from __future__ import annotations

import logging
from typing import Optional

__all__ = ["get_logger", "configure_console_logging"]

_BASE_LOGGER_NAME = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a library logger, namespaced under ``repro``."""
    if not name:
        return logging.getLogger(_BASE_LOGGER_NAME)
    if name.startswith(_BASE_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_BASE_LOGGER_NAME}.{name}")


def configure_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a console handler to the library logger (idempotent).

    Intended for examples and command-line experiment runs; library code
    itself never calls this.
    """
    logger = get_logger()
    logger.setLevel(level)
    has_console = any(
        isinstance(handler, logging.StreamHandler) for handler in logger.handlers
    )
    if not has_console:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
    return logger
