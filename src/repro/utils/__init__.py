"""Shared utilities: RNG management, validation, multisets, tables, logging."""

from repro.utils.logging import get_logger
from repro.utils.multiset import Multiset, majority_vote, mode_set, occurrences
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.tables import format_table
from repro.utils.validation import (
    require_fraction,
    require_in_range,
    require_positive,
    require_positive_int,
    require_probability_vector,
)

__all__ = [
    "Multiset",
    "as_generator",
    "format_table",
    "get_logger",
    "majority_vote",
    "mode_set",
    "occurrences",
    "require_fraction",
    "require_in_range",
    "require_positive",
    "require_positive_int",
    "require_probability_vector",
    "spawn_generators",
]
