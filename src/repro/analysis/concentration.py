"""Concentration inequalities used in the analysis.

The paper's probabilistic machinery rests on standard Chernoff/Hoeffding
bounds plus the specialized three-point-variable bound of Lemma 16, which is
what turns the per-node amplification gap of Proposition 1 into a
whole-population statement.  The functions here compute the *bound values*
(not simulations) so that experiments can juxtapose measured tail frequencies
with the guaranteed exponents.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.utils.validation import require_fraction, require_positive_int

__all__ = [
    "chernoff_upper_tail",
    "chernoff_lower_tail",
    "hoeffding_bound",
    "three_point_chernoff_bound",
]


def chernoff_upper_tail(mean: float, deviation: float) -> float:
    """Multiplicative Chernoff bound ``Pr[X >= (1+d) mu] <= exp(-d^2 mu / 3)``.

    Valid for sums of independent ``[0, 1]``-valued random variables with mean
    ``mu`` and ``0 < d <= 1``.
    """
    if mean < 0:
        raise ValueError(f"mean must be non-negative, got {mean}")
    if not (0 < deviation <= 1):
        raise ValueError(f"deviation must lie in (0, 1], got {deviation}")
    return math.exp(-deviation * deviation * mean / 3.0)


def chernoff_lower_tail(mean: float, deviation: float) -> float:
    """Multiplicative Chernoff bound ``Pr[X <= (1-d) mu] <= exp(-d^2 mu / 2)``."""
    if mean < 0:
        raise ValueError(f"mean must be non-negative, got {mean}")
    if not (0 < deviation <= 1):
        raise ValueError(f"deviation must lie in (0, 1], got {deviation}")
    return math.exp(-deviation * deviation * mean / 2.0)


def hoeffding_bound(num_samples: int, deviation: float) -> float:
    """Hoeffding's inequality ``Pr[|X/n - E| >= t] <= 2 exp(-2 n t^2)``."""
    num_samples = require_positive_int(num_samples, "num_samples")
    if deviation <= 0:
        raise ValueError(f"deviation must be positive, got {deviation}")
    return min(1.0, 2.0 * math.exp(-2.0 * num_samples * deviation * deviation))


def three_point_chernoff_bound(
    num_variables: int,
    probability_plus: float,
    probability_zero: float,
    probability_minus: float,
    theta: float,
) -> Tuple[float, float]:
    """Lemma 16's bound for i.i.d. variables taking values in ``{-1, 0, +1}``.

    For ``X_t`` equal to ``+1`` with probability ``p``, ``0`` with probability
    ``r`` and ``-1`` with probability ``q`` (``p + r + q = 1``), Lemma 16
    states::

        Pr[ sum X_t <= (1 - theta) E[sum X_t] - theta n ]
            <= exp( -theta^2 / 4 * (E[sum X_t] + n) ).

    Returns ``(threshold, bound)``: the deviation threshold appearing on the
    left-hand side and the probability bound on the right-hand side.  The
    tests check the bound empirically by direct simulation.
    """
    num_variables = require_positive_int(num_variables, "num_variables")
    probability_plus = require_fraction(probability_plus, "probability_plus")
    probability_zero = require_fraction(probability_zero, "probability_zero")
    probability_minus = require_fraction(probability_minus, "probability_minus")
    total = probability_plus + probability_zero + probability_minus
    if abs(total - 1.0) > 1e-9:
        raise ValueError(
            f"the three probabilities must sum to 1, got {total!r}"
        )
    if not (0 < theta < 1):
        raise ValueError(f"theta must lie in (0, 1), got {theta}")
    expected_sum = num_variables * (probability_plus - probability_minus)
    threshold = (1.0 - theta) * expected_sum - theta * num_variables
    bound = math.exp(-theta * theta / 4.0 * (expected_sum + num_variables))
    return threshold, min(1.0, bound)
