"""Success-rate estimation and running-time scaling fits.

Theorems 1 and 2 are "w.h.p., within ``O(log n / eps^2)`` rounds" statements.
The experiment harness turns them into two measurable quantities:

* the empirical success probability over repeated independent trials (with a
  Wilson confidence interval, so small trial counts are reported honestly);
* the scaling of the measured number of rounds against the theoretical
  ``log(n) / eps^2`` clock, summarized by a least-squares proportionality
  constant and the residual quality of the fit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "wilson_interval",
    "estimate_success_probability",
    "fit_round_complexity",
    "RoundComplexityFit",
]


def wilson_interval(
    successes: int, trials: int, *, confidence_z: float = 1.96
) -> Tuple[float, float]:
    """The Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not (0 <= successes <= trials):
        raise ValueError(
            f"successes must lie in [0, {trials}], got {successes}"
        )
    z = confidence_z
    phat = successes / trials
    denominator = 1.0 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    return max(0.0, center - margin), min(1.0, center + margin)


def estimate_success_probability(
    outcomes: Sequence[bool], *, confidence_z: float = 1.96
) -> Tuple[float, Tuple[float, float]]:
    """Empirical success probability and its Wilson interval."""
    outcomes = [bool(outcome) for outcome in outcomes]
    if not outcomes:
        raise ValueError("at least one outcome is required")
    successes = sum(outcomes)
    trials = len(outcomes)
    return successes / trials, wilson_interval(
        successes, trials, confidence_z=confidence_z
    )


@dataclass(frozen=True)
class RoundComplexityFit:
    """Result of fitting measured rounds against the theoretical clock.

    Attributes
    ----------
    constant:
        The least-squares proportionality constant ``C`` in
        ``rounds ~ C * log(n) / eps^2``.
    relative_residual:
        Root-mean-square relative deviation of the measurements from the fit;
        small values mean the measured runtime scales like the theory says.
    predictions:
        The fitted values ``C * clock`` for each input point.
    """

    constant: float
    relative_residual: float
    predictions: np.ndarray


def fit_round_complexity(
    num_nodes: Sequence[int],
    epsilons: Sequence[float],
    measured_rounds: Sequence[float],
) -> RoundComplexityFit:
    """Least-squares fit of measured rounds to ``C * log2(n) / eps^2``.

    All three sequences must have the same length; each position describes
    one experimental configuration and its measured running time (typically a
    mean over repeated trials).
    """
    nodes = np.asarray(num_nodes, dtype=float)
    eps = np.asarray(epsilons, dtype=float)
    rounds = np.asarray(measured_rounds, dtype=float)
    if not (nodes.shape == eps.shape == rounds.shape) or nodes.ndim != 1:
        raise ValueError("num_nodes, epsilons and measured_rounds must be "
                         "1-D sequences of equal length")
    if nodes.size == 0:
        raise ValueError("at least one measurement is required")
    if np.any(nodes < 2) or np.any(eps <= 0) or np.any(rounds <= 0):
        raise ValueError("nodes must be >= 2, epsilons and rounds positive")
    clock = np.log2(nodes) / (eps * eps)
    constant = float(np.dot(clock, rounds) / np.dot(clock, clock))
    predictions = constant * clock
    relative_residual = float(
        np.sqrt(np.mean(((rounds - predictions) / rounds) ** 2))
    )
    return RoundComplexityFit(
        constant=constant,
        relative_residual=relative_residual,
        predictions=predictions,
    )
