"""Bias and plurality statistics on opinion distributions.

These helpers operate on plain probability vectors (indexed by opinion
``1..k`` at positions ``0..k-1``) rather than on
:class:`~repro.core.state.PopulationState`, so the analytical experiments can
reason about distributions directly without materializing populations.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.noise.matrix import NoiseMatrix

__all__ = [
    "bias_toward",
    "distribution_after_noise",
    "is_delta_biased",
    "make_biased_distribution",
    "plurality_of",
]


def _as_distribution(distribution: Sequence[float]) -> np.ndarray:
    array = np.asarray(distribution, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("distribution must be a non-empty vector")
    if np.any(array < -1e-12):
        raise ValueError("distribution entries must be non-negative")
    if array.sum() > 1.0 + 1e-9:
        raise ValueError("distribution entries must sum to at most 1")
    return np.clip(array, 0.0, None)


def bias_toward(distribution: Sequence[float], opinion: int) -> float:
    """Definition 1's bias: ``min_{i != opinion} (c_opinion - c_i)``.

    For a single-opinion distribution the bias is ``c_1`` by convention.
    """
    array = _as_distribution(distribution)
    if not (1 <= opinion <= array.size):
        raise ValueError(f"opinion must be in [1, {array.size}], got {opinion}")
    if array.size == 1:
        return float(array[0])
    rivals = np.delete(array, opinion - 1)
    return float(array[opinion - 1] - rivals.max())


def is_delta_biased(distribution: Sequence[float], opinion: int, delta: float) -> bool:
    """``True`` iff the distribution is delta-biased toward ``opinion``."""
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    return bias_toward(distribution, opinion) >= delta


def plurality_of(distribution: Sequence[float]) -> int:
    """The opinion with the largest share (smallest label on ties); 0 if empty."""
    array = _as_distribution(distribution)
    if array.sum() <= 0:
        return 0
    return int(np.argmax(array)) + 1


def distribution_after_noise(
    distribution: Sequence[float], noise: NoiseMatrix
) -> np.ndarray:
    """The expected received-opinion distribution ``c . P`` (paper Eq. (2))."""
    array = _as_distribution(distribution)
    if array.size != noise.num_opinions:
        raise ValueError(
            f"distribution has {array.size} opinions but the noise matrix has "
            f"{noise.num_opinions}"
        )
    return noise.propagate(array)


def make_biased_distribution(
    num_opinions: int,
    delta: float,
    majority_opinion: int = 1,
    *,
    style: str = "uniform_rest",
) -> np.ndarray:
    """Construct a canonical delta-biased distribution over ``num_opinions``.

    Two shapes are provided:

    * ``"uniform_rest"`` — the majority opinion gets ``1/k + delta*(k-1)/k``
      and every rival gets ``1/k - delta/k``, so every rival trails the
      majority by exactly ``delta``;
    * ``"two_block"`` — only the majority opinion and a single rival are
      populated (``(1+delta)/2`` vs ``(1-delta)/2``), the hardest two-opinion
      profile embedded in ``k`` opinions.

    These are the initial conditions used throughout the amplification and
    plurality experiments.
    """
    if num_opinions < 1:
        raise ValueError("num_opinions must be >= 1")
    if not (0.0 <= delta <= 1.0):
        raise ValueError(f"delta must lie in [0, 1], got {delta}")
    if not (1 <= majority_opinion <= num_opinions):
        raise ValueError(
            f"majority_opinion must be in [1, {num_opinions}], got {majority_opinion}"
        )
    if num_opinions == 1:
        return np.ones(1)
    if style == "uniform_rest":
        rival_share = 1.0 / num_opinions - delta / num_opinions
        if rival_share < 0:
            raise ValueError(
                f"delta={delta} is too large for the uniform_rest shape with "
                f"k={num_opinions}"
            )
        distribution = np.full(num_opinions, rival_share)
        distribution[majority_opinion - 1] = (
            1.0 / num_opinions + delta * (num_opinions - 1) / num_opinions
        )
    elif style == "two_block":
        distribution = np.zeros(num_opinions)
        rival = 1 if majority_opinion != 1 else 2
        distribution[majority_opinion - 1] = (1.0 + delta) / 2.0
        distribution[rival - 1] = (1.0 - delta) / 2.0
    else:
        raise ValueError(
            f"style must be 'uniform_rest' or 'two_block', got {style!r}"
        )
    return distribution
