"""Statistical comparison of the delivery processes O, B and P.

Claim 1 states that, per phase, the real push model (process O) and the
balls-into-bins process (B) induce the same distribution of per-node received
multisets; Lemma 2/3 state that any event holding w.h.p. under the
Poissonized process (P) also holds w.h.p. under O, at a transfer cost of
``e^k * sqrt(prod_i h_i)``.

Experiment E8 validates these statements empirically: it repeatedly delivers
the same phase under each process and compares the *distribution of received
counts at a fixed node* (all nodes are exchangeable) across processes via the
total-variation distance.  This module provides the distance computation, the
empirical count-distribution extraction, and the Lemma-2 transfer factor.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.network.mailbox import ReceivedMessages
from repro.utils.validation import require_positive_int

__all__ = [
    "process_count_distribution",
    "total_variation_distance",
    "poisson_transfer_factor",
    "per_opinion_count_histograms",
]


def process_count_distribution(
    deliveries: Sequence[ReceivedMessages],
    *,
    max_count: int = 30,
) -> np.ndarray:
    """The empirical joint distribution of per-node *total* received counts.

    Pools every node of every delivery (nodes are exchangeable under all
    three processes) and histograms the total number of messages received,
    truncating at ``max_count`` (the final bucket absorbs the tail).

    Returns a probability vector of length ``max_count + 1``.
    """
    max_count = require_positive_int(max_count, "max_count")
    totals = []
    for delivery in deliveries:
        totals.append(delivery.totals())
    pooled = np.concatenate(totals) if totals else np.zeros(0, dtype=np.int64)
    clipped = np.minimum(pooled, max_count)
    histogram = np.bincount(clipped, minlength=max_count + 1).astype(float)
    if histogram.sum() == 0:
        return histogram
    return histogram / histogram.sum()


def per_opinion_count_histograms(
    deliveries: Sequence[ReceivedMessages],
    *,
    max_count: int = 30,
) -> np.ndarray:
    """Per-opinion empirical distributions of per-node received counts.

    Returns an array of shape ``(num_opinions, max_count + 1)`` whose row
    ``i`` is the distribution of "copies of opinion ``i+1`` received by a
    node" pooled over all nodes and deliveries.
    """
    max_count = require_positive_int(max_count, "max_count")
    if not deliveries:
        raise ValueError("at least one delivery is required")
    num_opinions = deliveries[0].num_opinions
    histograms = np.zeros((num_opinions, max_count + 1), dtype=float)
    for delivery in deliveries:
        if delivery.num_opinions != num_opinions:
            raise ValueError("deliveries disagree on the number of opinions")
        clipped = np.minimum(delivery.counts, max_count)
        for opinion_index in range(num_opinions):
            histograms[opinion_index] += np.bincount(
                clipped[:, opinion_index], minlength=max_count + 1
            )
    row_sums = histograms.sum(axis=1, keepdims=True)
    row_sums[row_sums == 0] = 1.0
    return histograms / row_sums


def total_variation_distance(
    distribution_p: Sequence[float], distribution_q: Sequence[float]
) -> float:
    """Total-variation distance ``0.5 * sum_i |p_i - q_i|``.

    The two vectors are padded to a common length with zeros, so empirical
    histograms with different supports compare cleanly.
    """
    p = np.asarray(distribution_p, dtype=float).ravel()
    q = np.asarray(distribution_q, dtype=float).ravel()
    if np.any(p < -1e-12) or np.any(q < -1e-12):
        raise ValueError("distributions must be non-negative")
    size = max(p.size, q.size)
    p = np.pad(p, (0, size - p.size))
    q = np.pad(q, (0, size - q.size))
    return float(0.5 * np.abs(p - q).sum())


def poisson_transfer_factor(noisy_histogram: Sequence[int]) -> float:
    """Lemma 2's transfer factor ``e^k * sqrt(prod_i h_i)``.

    ``noisy_histogram[i]`` is the number of messages carrying opinion ``i+1``
    after the noise has acted (the paper's ``h_i``); opinions with zero
    messages contribute a factor of 1 (they cannot hurt the bound).  The
    factor tells how much a failure probability proved under process P can
    blow up when transferred to process O — Lemma 3's condition
    ``b > k log h / (2 log n)`` is exactly what keeps the product
    ``factor * n^{-b}`` polynomially small.
    """
    histogram = np.asarray(noisy_histogram, dtype=float)
    if histogram.ndim != 1 or histogram.size == 0:
        raise ValueError("noisy_histogram must be a non-empty vector")
    if np.any(histogram < 0):
        raise ValueError("noisy_histogram entries must be non-negative")
    num_opinions = histogram.size
    positive = histogram[histogram > 0]
    log_factor = num_opinions + 0.5 * float(np.log(positive).sum())
    return math.exp(log_factor)
