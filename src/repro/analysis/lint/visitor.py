"""The rule base classes and the scope/import-tracking AST walker.

Two kinds of rule exist:

* :class:`FileRule` — checked one file at a time.  Most rules subclass
  the convenience :class:`ScopedVisitorRule`, whose walker resolves
  imported names to dotted module paths (``np.random.seed`` ->
  ``numpy.random.seed`` through ``import numpy as np``) and tracks the
  enclosing function/class stack, so rule code asks *what* is being
  called rather than pattern-matching surface syntax.
* :class:`ProjectRule` — checked once over all parsed files together,
  for cross-file invariants (e.g. every ``@register_experiment`` module
  is imported by the experiments package).

Findings returned by rules are filtered against per-line suppressions by
the runner, not by the rules themselves — a rule never needs to know the
suppression protocol exists.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.lint.context import FileContext
from repro.analysis.lint.findings import Finding

__all__ = [
    "FileRule",
    "ProjectRule",
    "ScopedVisitorRule",
    "ScopeInfo",
    "resolve_attribute_chain",
]


def resolve_attribute_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """The dotted-name parts of a ``Name``/``Attribute`` chain, or None.

    ``np.random.seed`` -> ``("np", "random", "seed")``; anything rooted in
    a non-name expression (a call result, a subscript) resolves to None.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class FileRule:
    """A rule checked independently on every linted file."""

    rule_id: str = ""
    description: str = ""

    def check_file(self, context: FileContext) -> Iterable[Finding]:
        raise NotImplementedError


class ProjectRule:
    """A rule checked once over the whole set of linted files."""

    rule_id: str = ""
    description: str = ""

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterable[Finding]:
        raise NotImplementedError


class ScopeInfo:
    """One entry of the walker's definition stack."""

    def __init__(
        self,
        node: ast.AST,
        name: str,
        is_function: bool,
        parameters: Tuple[str, ...],
        counts_tier: bool,
    ) -> None:
        self.node = node
        self.name = name
        self.is_function = is_function
        self.parameters = parameters
        self.counts_tier = counts_tier


def _function_parameters(
    node: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> Tuple[str, ...]:
    args = node.args
    names = [
        arg.arg
        for group in (args.posonlyargs, args.args, args.kwonlyargs)
        for arg in group
    ]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return tuple(names)


class ScopedVisitorRule(FileRule, ast.NodeVisitor):
    """A :class:`FileRule` driven by one scope-aware AST traversal.

    Subclasses override the ``visit_*`` hooks they care about (calling
    ``self.generic_visit(node)`` to keep descending) and emit findings
    with :meth:`add_finding`.  During traversal the base class maintains:

    ``self.imports``
        alias -> dotted module/object path, fed by ``import`` and
        ``from ... import`` statements (``import numpy as np`` maps
        ``np -> numpy``; ``from time import perf_counter`` maps
        ``perf_counter -> time.perf_counter``).
    ``self.scope_stack``
        the enclosing ``class``/``def`` chain, each with its parameter
        names and whether it is (or is inside) counts-tier code.
    """

    def check_file(self, context: FileContext) -> List[Finding]:
        self.context = context
        self.findings: List[Finding] = []
        self.imports: Dict[str, str] = {}
        self.scope_stack: List[ScopeInfo] = []
        self.begin_file(context)
        self.visit(context.tree)
        return self.findings

    # -- subclass surface ------------------------------------------------ #

    def begin_file(self, context: FileContext) -> None:
        """Per-file setup hook (state reset) for subclasses."""

    def add_finding(self, node: ast.AST, message: str) -> None:
        """Record a finding of this rule at ``node``'s location."""
        self.findings.append(
            Finding(
                file=self.context.path,
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0),
                rule=self.rule_id,
                message=message,
            )
        )

    def resolved_name(self, node: ast.AST) -> Optional[str]:
        """``node``'s dotted name with the import table applied.

        ``np.random.seed`` -> ``"numpy.random.seed"``;
        ``perf_counter`` (from-imported) -> ``"time.perf_counter"``;
        a local variable that shadows no import resolves to itself.
        """
        parts = resolve_attribute_chain(node)
        if parts is None:
            return None
        root = self.imports.get(parts[0], parts[0])
        return ".".join((root,) + parts[1:])

    # -- scope bookkeeping ----------------------------------------------- #

    @property
    def in_counts_tier(self) -> bool:
        """Whether the walker currently stands in counts-tier code."""
        if self.context.module_is_counts_tier:
            return True
        return any(scope.counts_tier for scope in self.scope_stack)

    @property
    def current_function(self) -> Optional[ScopeInfo]:
        """The innermost enclosing function scope, if any."""
        for scope in reversed(self.scope_stack):
            if scope.is_function:
                return scope
        return None

    def qualified_scope_name(self) -> str:
        """Dotted path of the enclosing definitions (for messages)."""
        return ".".join(scope.name for scope in self.scope_stack)

    def _enter_scope(self, node: ast.AST, is_function: bool) -> None:
        parameters: Tuple[str, ...] = ()
        if is_function and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            parameters = _function_parameters(node)
        marked = self.context.definition_is_marked_counts_tier(node)
        self.scope_stack.append(
            ScopeInfo(
                node=node,
                name=getattr(node, "name", "<scope>"),
                is_function=is_function,
                parameters=parameters,
                counts_tier=marked,
            )
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope(node, is_function=True)
        self.handle_function(node)
        self.generic_visit(node)
        self.scope_stack.pop()
        self.handle_function_exit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope(node, is_function=True)
        self.handle_function(node)
        self.generic_visit(node)
        self.scope_stack.pop()
        self.handle_function_exit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._enter_scope(node, is_function=False)
        self.handle_class(node)
        self.generic_visit(node)
        self.scope_stack.pop()

    def handle_function(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        """Hook called on entering a function scope."""

    def handle_function_exit(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        """Hook called after leaving a function scope."""

    def handle_class(self, node: ast.ClassDef) -> None:
        """Hook called on entering a class scope."""

    # -- import bookkeeping ---------------------------------------------- #

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".", 1)[0]
            target = alias.name if alias.asname else alias.name.split(".", 1)[0]
            self.imports[bound] = target
        self.handle_import(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is not None and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                self.imports[bound] = f"{node.module}.{alias.name}"
        self.handle_import_from(node)
        self.generic_visit(node)

    def handle_import(self, node: ast.Import) -> None:
        """Hook called on every ``import`` statement."""

    def handle_import_from(self, node: ast.ImportFrom) -> None:
        """Hook called on every ``from ... import`` statement."""
