"""The repository manifest: which code the scoped rules apply to.

Two rules are *scoped* rather than universal, and this module is where
their scope is declared:

* ``counts-tier-n-free`` / the counts-tier half of ``int64-dtype-pin``
  apply to the code that upholds the paper's n-independence reformulation
  (the balls-into-bins/Poissonization argument that decouples wall-clock
  from the population size).  Counts-tier code is declared two ways:
  whole modules here in :data:`COUNTS_TIER_MODULES`, and individual
  functions/classes inline with a ``# reprolint: counts-tier`` marker
  comment on (or directly above) their ``def``/``class`` line.
* ``no-wallclock-nondeterminism`` bans wall-clock reads everywhere except
  the modules in :data:`WALLCLOCK_ALLOWLIST`, each entry carrying the
  justification for why that module may legitimately observe time.

Paths are posix-style suffixes matched against the linted file's path, so
the manifest works for ``src/repro/...``, installed-package paths, and
bare relative invocations alike.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "COUNTS_TIER_MODULES",
    "WALLCLOCK_ALLOWLIST",
    "WALLCLOCK_ALLOWLIST_DIRS",
    "module_matches",
    "path_in_directory",
]

#: Modules that are counts-tier in their entirety: every function and class
#: in them evolves (R, k) sufficient statistics and must never allocate an
#: n-sized array.  Finer-grained declarations (a counts class inside a
#: mixed-tier module) use the inline ``# reprolint: counts-tier`` marker —
#: currently every counts-tier module is mixed-tier (e.g.
#: ``repro/network/balls_bins.py`` also hosts the per-node reference
#: process), so the whole-module list is empty and all declarations are
#: inline markers.
COUNTS_TIER_MODULES: Tuple[str, ...] = ()

#: Modules allowed to read the wall clock, with the reason each may.
#: Everything else in ``src/`` must not observe time at all: per-trial
#: bitwise reproducibility means a simulation's outputs are a function of
#: (scenario, seed, code version) only.
WALLCLOCK_ALLOWLIST: Dict[str, str] = {
    "repro/cli.py": "user-facing elapsed-time display on the CLI",
    "repro/sim/facade.py": "provenance wall_time_seconds stamping",
    "repro/sim/sweep.py": "per-batch wall-time provenance for fused sweeps",
    "repro/experiments/orchestrator.py": (
        "ExperimentRunReport wall-clock accounting for run-all"
    ),
    "repro/experiments/exp_ablation_sampling.py": (
        "E13 measures the vectorized-vs-naive sampling speedup; timing is "
        "the experiment's observable"
    ),
}


#: Directories whose every module may read the wall clock: measuring time
#: is their entire purpose.
WALLCLOCK_ALLOWLIST_DIRS: Dict[str, str] = {
    "benchmarks/": "benchmark harnesses exist to measure wall-clock time",
}


def path_in_directory(path: str, directory: str) -> bool:
    """Whether posix ``path`` lies under the manifest directory prefix."""
    normalized = path.replace("\\", "/")
    return normalized.startswith(directory) or ("/" + directory) in normalized


def module_matches(path: str, suffix: str) -> bool:
    """Whether posix ``path`` names the manifest module ``suffix``.

    Suffix matching on whole path components: ``repro/cli.py`` matches
    ``src/repro/cli.py`` and ``/site-packages/repro/cli.py`` but not
    ``src/repro/faults/cli.py``'s hypothetical ``faults_cli.py``.
    """
    normalized = path.replace("\\", "/")
    return normalized == suffix or normalized.endswith("/" + suffix)
