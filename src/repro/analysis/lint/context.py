"""Per-file lint context: source, AST, suppressions, and tier markers.

One :class:`FileContext` is built per linted file and shared by every
rule.  It owns the two comment-level protocols:

* **Suppressions** — ``# reprolint: disable=rule-id[,rule-id...]`` on a
  line suppresses those rules' findings *on that line* (``disable=all``
  suppresses every rule).  Suppressions are deliberately line-scoped:
  there is no block or file-wide disable, so every exemption is visible
  next to the code it exempts and can carry its justification comment.
* **Counts-tier markers** — ``# reprolint: counts-tier`` on (or directly
  above) a ``def``/``class`` line declares that definition counts-tier
  for the scoped rules, complementing the module-level manifest.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set

from repro.analysis.lint.manifest import COUNTS_TIER_MODULES, module_matches

__all__ = ["FileContext", "SUPPRESS_ALL"]

#: The wildcard accepted by ``# reprolint: disable=all``.
SUPPRESS_ALL = "all"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s-]+)"
)
_COUNTS_TIER_RE = re.compile(r"#\s*reprolint:\s*counts-tier\b")


def _parse_suppressions(source_lines: List[str]) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line number -> rule ids suppressed on that line."""
    suppressions: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source_lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        if rules:
            suppressions[lineno] = rules
    return suppressions


def _parse_counts_tier_marks(source_lines: List[str]) -> Set[int]:
    """1-based line numbers carrying a ``counts-tier`` marker comment."""
    return {
        lineno
        for lineno, line in enumerate(source_lines, start=1)
        if _COUNTS_TIER_RE.search(line)
    }


@dataclass
class FileContext:
    """Everything a rule needs to know about one parsed source file."""

    path: str
    source: str
    tree: ast.Module
    source_lines: List[str] = field(default_factory=list)
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    counts_tier_marks: Set[int] = field(default_factory=set)
    module_is_counts_tier: bool = False

    @classmethod
    def parse(cls, path: str, source: str) -> "FileContext":
        """Parse ``source`` (raises ``SyntaxError`` on unparsable input)."""
        tree = ast.parse(source, filename=path)
        lines = source.splitlines()
        return cls(
            path=path.replace("\\", "/"),
            source=source,
            tree=tree,
            source_lines=lines,
            suppressions=_parse_suppressions(lines),
            counts_tier_marks=_parse_counts_tier_marks(lines),
            module_is_counts_tier=any(
                module_matches(path, suffix) for suffix in COUNTS_TIER_MODULES
            ),
        )

    def is_suppressed(self, lineno: int, rule: str) -> bool:
        """Whether findings of ``rule`` on ``lineno`` are suppressed."""
        rules = self.suppressions.get(lineno)
        if rules is None:
            return False
        return rule in rules or SUPPRESS_ALL in rules

    def definition_is_marked_counts_tier(self, node: ast.AST) -> bool:
        """Whether a ``def``/``class`` carries a counts-tier marker.

        The marker may sit on the definition line itself, on the line
        directly above it, or on/above its first decorator.
        """
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return False
        first_line = node.lineno
        decorators = getattr(node, "decorator_list", [])
        if decorators:
            first_line = min(first_line, decorators[0].lineno)
        candidates = {first_line - 1, first_line, node.lineno}
        return bool(candidates & self.counts_tier_marks)
