"""Finding reporters: human text and machine JSON.

The text reporter prints one ``file:line:col: rule-id message`` line per
finding (clickable in editors and CI logs) plus a summary.  The JSON
reporter emits a single stable document — schema version, scan counts,
the registered rule catalog, and the findings — for tooling; its shape
is pinned by ``tests/analysis/test_lint_reporters.py``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import all_rules

__all__ = ["render_text", "render_json", "JSON_SCHEMA_VERSION"]

#: Bumped on any breaking change to the JSON document shape.
JSON_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding], files_scanned: int) -> str:
    """The text report: one line per finding, then a summary line."""
    lines: List[str] = [finding.format_text() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(
        f"reprolint: {len(findings)} {noun} in {files_scanned} files"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_scanned: int) -> str:
    """The JSON report as a compact, stable-schema document."""
    document: Dict[str, Any] = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": files_scanned,
        "rules": [
            {
                "id": rule_class.rule_id,
                "description": rule_class.description,
            }
            for rule_class in all_rules()
        ],
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(document, indent=2, sort_keys=False)
