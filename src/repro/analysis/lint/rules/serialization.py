"""``serialization-contract`` — frozen dataclasses round-trip completely.

``Scenario``, ``FaultModel`` and ``ScenarioGrid`` promise *exact*
``to_dict``/``from_dict`` round trips: the orchestrator's content-keyed
ResultStore hashes the serialized form, so a field silently dropped by
``to_dict`` (or ignored by ``from_dict``) makes two different scenarios
collide on one cache entry.  The runtime counterpart is the hypothesis
round-trip suite (``tests/sim/test_scenario_properties.py``); this rule
cross-checks the contract structurally for every frozen dataclass.

Checked per frozen dataclass that defines ``to_dict``:

* a ``from_dict`` (or ``from_json``) classmethod must exist;
* every dataclass field name must appear in ``to_dict``'s body — as a
  string literal key, or via the ``dataclasses.fields(...)``/
  ``asdict(...)`` iteration idiom which covers all fields by
  construction;
* symmetrically for ``from_dict``, where a ``cls(**...)`` splat (or the
  ``fields(...)`` idiom) also covers everything.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.lint.registry import register_rule
from repro.analysis.lint.visitor import ScopedVisitorRule, resolve_attribute_chain

__all__ = ["SerializationContractRule"]

_DATACLASS_NAMES = frozenset({"dataclass", "dataclasses.dataclass"})
_COVERING_CALLS = frozenset({"fields", "asdict", "astuple"})


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        chain = resolve_attribute_chain(target)
        if chain is None or ".".join(chain) not in _DATACLASS_NAMES:
            continue
        if not isinstance(decorator, ast.Call):
            return False  # bare @dataclass: not frozen
        for keyword in decorator.keywords:
            if keyword.arg == "frozen":
                value = keyword.value
                return isinstance(value, ast.Constant) and value.value is True
        return False
    return False


def _dataclass_fields(node: ast.ClassDef) -> List[str]:
    """Field names: annotated assignments, minus ClassVar declarations."""
    names: List[str] = []
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        annotation = ast.dump(statement.annotation)
        if "ClassVar" in annotation:
            continue
        names.append(statement.target.id)
    return names


def _find_method(node: ast.ClassDef, *names: str) -> Optional[ast.FunctionDef]:
    for statement in node.body:
        if isinstance(statement, ast.FunctionDef) and statement.name in names:
            return statement
    return None


def _uses_covering_idiom(method: ast.FunctionDef) -> bool:
    """Whether the body iterates ``fields(...)``/``asdict(...)`` or splats
    ``cls(**...)`` — idioms that cover every field by construction."""
    for node in ast.walk(method):
        if isinstance(node, ast.Call):
            chain = resolve_attribute_chain(node.func)
            if chain is not None and chain[-1] in _COVERING_CALLS:
                return True
            for keyword in node.keywords:
                if keyword.arg is None:  # cls(**values)
                    return True
    return False


def _string_constants(method: ast.FunctionDef) -> Set[str]:
    found: Set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            found.add(node.value)
    return found


def _keyword_names(method: ast.FunctionDef) -> Set[str]:
    found: Set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg is not None:
                    found.add(keyword.arg)
    return found


@register_rule
class SerializationContractRule(ScopedVisitorRule):
    rule_id = "serialization-contract"
    description = (
        "frozen dataclasses with to_dict must define from_dict, and both "
        "must cover every dataclass field (exact round-trip contract)"
    )

    def handle_class(self, node: ast.ClassDef) -> None:
        if not _is_frozen_dataclass(node):
            return
        to_dict = _find_method(node, "to_dict")
        if to_dict is None:
            return
        field_names = _dataclass_fields(node)
        from_dict = _find_method(node, "from_dict", "from_json")
        if from_dict is None:
            self.add_finding(
                node,
                f"frozen dataclass '{node.name}' defines to_dict but no "
                "from_dict; serializable scenario objects must round-trip "
                "(the ResultStore keys caches by the serialized form)",
            )
        else:
            self._check_coverage(node, from_dict, field_names, "from_dict")
        self._check_coverage(node, to_dict, field_names, "to_dict")

    def _check_coverage(
        self,
        class_node: ast.ClassDef,
        method: ast.FunctionDef,
        field_names: List[str],
        label: str,
    ) -> None:
        if _uses_covering_idiom(method):
            return
        mentioned = _string_constants(method) | _keyword_names(method)
        missing = [name for name in field_names if name not in mentioned]
        if missing:
            self.add_finding(
                method,
                f"'{class_node.name}.{label}' does not cover dataclass "
                f"field(s) {missing}: every field must be serialized/"
                "restored (or use the dataclasses.fields(...) idiom) so "
                "round trips stay exact",
            )
