"""``deprecation-shim-hygiene`` — deprecated functions actually warn.

PR 5 turned the legacy factories (``make_dynamics``, ``make_engine``,
...) into shims over the ``repro.sim`` facade, and CI gates on
``python -W error::DeprecationWarning -c "import repro"`` staying
silent while *calls* to the shims warn.  A shim whose docstring claims
deprecation but whose body forgot ``warnings.warn(...,
DeprecationWarning)`` silently un-deprecates itself — callers never
learn to migrate, and the eventual removal becomes a surprise break.

A function is *declared deprecated* when its name contains
``deprecated`` or its docstring's first line says so (or anywhere via
the Sphinx ``.. deprecated::`` directive).  Such a function must either
call ``warnings.warn`` with ``DeprecationWarning`` directly, or call a
helper whose name mentions ``deprecat`` (the shared-shim-body pattern).
"""

from __future__ import annotations

import ast
import re

from repro.analysis.lint.registry import register_rule
from repro.analysis.lint.visitor import ScopedVisitorRule, resolve_attribute_chain

__all__ = ["DeprecationShimHygieneRule"]

_DEPRECATED_WORD_RE = re.compile(r"\bdeprecated\b", re.IGNORECASE)
_HELPER_NAME_RE = re.compile(r"deprecat", re.IGNORECASE)


def _is_declared_deprecated(node: ast.FunctionDef) -> bool:
    docstring = ast.get_docstring(node)
    if docstring is None:
        return False
    first_line = docstring.strip().splitlines()[0] if docstring.strip() else ""
    if _DEPRECATED_WORD_RE.search(first_line):
        return True
    return ".. deprecated::" in docstring


def _emits_deprecation_warning(node: ast.FunctionDef) -> bool:
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        chain = resolve_attribute_chain(child.func)
        if chain is None:
            continue
        if chain[-1] == "warn":
            mentions_category = any(
                isinstance(part, ast.Name)
                and part.id in ("DeprecationWarning", "FutureWarning")
                or isinstance(part, ast.Attribute)
                and part.attr in ("DeprecationWarning", "FutureWarning")
                for argument in list(child.args) + [
                    keyword.value for keyword in child.keywords
                ]
                for part in ast.walk(argument)
            )
            if mentions_category:
                return True
        elif _HELPER_NAME_RE.search(chain[-1]):
            # Delegation to a shared shim body (e.g. _deprecated_build),
            # itself checked by this rule wherever it is defined.
            return True
    return False


@register_rule
class DeprecationShimHygieneRule(ScopedVisitorRule):
    rule_id = "deprecation-shim-hygiene"
    description = (
        "functions documented/named as deprecated must emit "
        "DeprecationWarning (directly or via a deprecation helper)"
    )

    def handle_function(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        if not isinstance(node, ast.FunctionDef):
            return
        if not _is_declared_deprecated(node):
            return
        if _emits_deprecation_warning(node):
            return
        self.add_finding(
            node,
            f"'{node.name}' is documented as deprecated but never emits "
            "DeprecationWarning; add warnings.warn(..., DeprecationWarning, "
            "stacklevel=2) so callers learn to migrate",
        )
