"""The built-in reprolint rules.

Importing this package registers every rule class with the registry
(:mod:`repro.analysis.lint.registry`); the import list below is the
single place a new rule module must be added.
"""

from repro.analysis.lint.rules import (  # noqa: F401  (imported for rule registration side effects)
    rng,
    counts_tier,
    dtype,
    wallclock,
    serialization,
    deprecation,
    registry_completeness,
)

__all__ = [
    "rng",
    "counts_tier",
    "dtype",
    "wallclock",
    "serialization",
    "deprecation",
    "registry_completeness",
]
