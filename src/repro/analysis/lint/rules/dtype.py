"""``int64-dtype-pin`` — count-state arrays are explicitly int64.

Populations beyond ``2**31`` nodes are a headline capability of the
counts tier (``n = 10**12`` runs in the integration suite).  On
platforms whose default integer is 32-bit (Windows, some ARM), an
unpinned integer array constructor (``np.zeros(k)`` is even float64;
``np.asarray(counts)`` inherits whatever the input carries;
``.astype(int)`` is C ``long``) silently overflows above ``2**31``.
The runtime counterpart is the int64 regression suite
(``tests/core/test_state.py`` large-n cases); this rule pins the
discipline at every construction site.

The rule fires on array constructions that are *recognizably count
states* — the assignment target or the source argument is named like a
count vector (``counts``, ``honest_counts``, ``counts_matrix``, ...) —
and that either omit ``dtype=`` entirely or pin an integer dtype
narrower than int64.  An explicit float dtype is not flagged: that is a
deliberate conversion to distribution space, not a count state.
"""

from __future__ import annotations

import ast
import re
from typing import Optional

from repro.analysis.lint.context import FileContext
from repro.analysis.lint.registry import register_rule
from repro.analysis.lint.visitor import ScopedVisitorRule, resolve_attribute_chain

__all__ = ["Int64DtypePinRule"]

#: Identifiers (variable names or attribute terminals) naming count states.
_COUNTS_NAME_RE = re.compile(r"(^|_)counts($|_)")

#: numpy constructors that materialize a fresh array.
_CONSTRUCTORS = frozenset(
    {"zeros", "empty", "ones", "full", "asarray", "array", "ascontiguousarray"}
)

#: Accepted spellings of the 64-bit pin.
_INT64_SPELLINGS = frozenset({"int64", "i8"})

#: Integer dtype spellings that are (or may be) narrower than 64-bit.
_NARROW_INT_SPELLINGS = frozenset(
    {"int", "intc", "int_", "int8", "int16", "int32", "uint8", "uint16",
     "uint32", "i4", "short", "long"}
)


def _matches_counts(name: Optional[str]) -> bool:
    return name is not None and _COUNTS_NAME_RE.search(name) is not None


def _terminal_identifier(node: ast.AST) -> Optional[str]:
    """The final identifier of a name/attribute expression, if any."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _dtype_spelling(node: ast.expr) -> Optional[str]:
    """A normalized spelling for a ``dtype=`` argument expression."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    parts = resolve_attribute_chain(node)
    if parts is not None:
        return parts[-1]
    if isinstance(node, ast.Call):
        # np.dtype("int64") / np.dtype(np.int64): inspect the argument.
        chain = resolve_attribute_chain(node.func)
        if chain is not None and chain[-1] == "dtype" and node.args:
            return _dtype_spelling(node.args[0])
    return None


@register_rule
class Int64DtypePinRule(ScopedVisitorRule):
    rule_id = "int64-dtype-pin"
    description = (
        "count-state array constructions must pin dtype=np.int64 so "
        ">= 2**31-node populations cannot overflow platform ints"
    )

    def begin_file(self, context: FileContext) -> None:
        # Calls are reachable both through their assignment statement and
        # through the generic traversal; check each call site once.
        self._checked: set = set()

    def visit_Assign(self, node: ast.Assign) -> None:
        target_name = None
        for target in node.targets:
            identifier = _terminal_identifier(target)
            if _matches_counts(identifier):
                target_name = identifier
                break
        self._check_expression(node.value, target_name)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            identifier = _terminal_identifier(node.target)
            self._check_expression(
                node.value,
                identifier if _matches_counts(identifier) else None,
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # Calls not handled through an assignment context: still check
        # constructor-from-counts-argument and .astype on counts.
        self._check_call(node, assigned_to=None)
        self.generic_visit(node)

    # ------------------------------------------------------------------ #

    def _check_expression(
        self, value: ast.expr, target_name: Optional[str]
    ) -> None:
        # Unwrap trailing .copy() so `np.asarray(...).copy()` is inspected.
        call = value
        if (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr == "copy"
        ):
            call = call.func.value
        if isinstance(call, ast.Call):
            self._check_call(call, assigned_to=target_name)

    def _keyword(self, node: ast.Call, name: str) -> Optional[ast.expr]:
        for keyword in node.keywords:
            if keyword.arg == name:
                return keyword.value
        return None

    def _check_call(self, node: ast.Call, assigned_to: Optional[str]) -> None:
        if id(node) in self._checked:
            return
        self._checked.add(id(node))
        if not isinstance(node.func, (ast.Attribute, ast.Name)):
            return
        method = (
            node.func.attr
            if isinstance(node.func, ast.Attribute)
            else node.func.id
        )
        if method == "astype":
            self._check_astype(node, assigned_to)
            return
        resolved = self.resolved_name(node.func)
        if resolved is None or not resolved.startswith("numpy."):
            return
        constructor = resolved.split(".")[-1]
        if constructor not in _CONSTRUCTORS:
            return
        source_name = (
            _terminal_identifier(node.args[0]) if node.args else None
        )
        if not (_matches_counts(assigned_to) or _matches_counts(source_name)):
            return
        subject = assigned_to or source_name
        dtype = self._keyword(node, "dtype")
        if dtype is None:
            self.add_finding(
                node,
                f"count-state construction 'np.{constructor}' of "
                f"'{subject}' has no dtype pin; pass dtype=np.int64 so "
                "populations beyond 2**31 nodes cannot overflow",
            )
            return
        spelling = _dtype_spelling(dtype)
        if spelling in _NARROW_INT_SPELLINGS:
            self.add_finding(
                node,
                f"count-state construction 'np.{constructor}' of "
                f"'{subject}' pins dtype '{spelling}', which is (or may "
                "be) narrower than 64-bit; pin dtype=np.int64",
            )

    def _check_astype(self, node: ast.Call, assigned_to: Optional[str]) -> None:
        assert isinstance(node.func, ast.Attribute)
        receiver = _terminal_identifier(node.func.value)
        if not (_matches_counts(assigned_to) or _matches_counts(receiver)):
            return
        subject = assigned_to or receiver or "counts"
        dtype = self._keyword(node, "dtype")
        if dtype is None and node.args:
            dtype = node.args[0]
        if dtype is None:
            return
        spelling = _dtype_spelling(dtype)
        if spelling in _NARROW_INT_SPELLINGS:
            self.add_finding(
                node,
                f"count-state conversion '.astype' of '{subject}' uses "
                f"dtype '{spelling}', which is (or may be) narrower than "
                "64-bit; use np.int64",
            )
