"""``experiment-registry-completeness`` — every experiment is reachable.

The experiment registry (:mod:`repro.experiments.spec`) populates at
import time: an ``exp_*`` module that defines ``@register_experiment``
but is not imported by ``repro/experiments/__init__.py`` silently
vanishes from ``run-all``, ``list-experiments`` and the orchestrator's
seed sweeps — the suite *looks* complete while skipping a result.  The
runtime counterpart (``tests/experiments/test_spec.py`` counting
registered ids) only catches the drop if someone remembers to bump the
expected count; this cross-file rule catches the missing import itself.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Sequence, Set

from repro.analysis.lint.context import FileContext
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import register_rule
from repro.analysis.lint.visitor import ProjectRule, resolve_attribute_chain

__all__ = ["ExperimentRegistryCompletenessRule"]

_EXP_MODULE_RE = re.compile(r"(^|/)experiments/(exp_[A-Za-z0-9_]+)\.py$")


def _registers_experiment(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            for decorator in node.decorator_list:
                target = (
                    decorator.func
                    if isinstance(decorator, ast.Call)
                    else decorator
                )
                chain = resolve_attribute_chain(target)
                if chain is not None and chain[-1] == "register_experiment":
                    return True
        elif isinstance(node, ast.Call):
            chain = resolve_attribute_chain(node.func)
            if chain is not None and chain[-1] == "register_experiment":
                return True
    return False


def _imported_experiment_modules(tree: ast.Module) -> Set[str]:
    imported: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.endswith("experiments") or node.level >= 1 and not module:
                for alias in node.names:
                    imported.add(alias.name)
            elif "experiments.exp_" in module or module.startswith("exp_"):
                imported.add(module.rsplit(".", 1)[-1])
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if ".experiments.exp_" in alias.name:
                    imported.add(alias.name.rsplit(".", 1)[-1])
    return imported


@register_rule
class ExperimentRegistryCompletenessRule(ProjectRule):
    rule_id = "experiment-registry-completeness"
    description = (
        "every experiments/exp_*.py module using @register_experiment "
        "must be imported by experiments/__init__.py"
    )

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterable[Finding]:
        # Group by package directory: each experiments/ package is checked
        # against its *own* __init__.py, so unrelated packages (or test
        # fixtures) linted in the same run never cross-contaminate.
        package_inits: Dict[str, FileContext] = {}
        registering: Dict[str, List[str]] = {}
        for context in contexts:
            path = context.path.replace("\\", "/")
            if path.endswith("experiments/__init__.py"):
                package_inits[path.rsplit("/", 1)[0]] = context
            match = _EXP_MODULE_RE.search(path)
            if match is not None and _registers_experiment(context.tree):
                package = path.rsplit("/", 1)[0]
                registering.setdefault(package, []).append(match.group(2))

        findings: List[Finding] = []
        for package, modules in sorted(registering.items()):
            package_init = package_inits.get(package)
            if package_init is None:
                # Linting a subset that lacks the package __init__: the
                # invariant is not checkable for these modules.
                continue
            imported = _imported_experiment_modules(package_init.tree)
            for module in sorted(set(modules) - imported):
                findings.append(
                    Finding(
                        file=package_init.path,
                        line=1,
                        column=0,
                        rule=self.rule_id,
                        message=(
                            f"experiment module '{module}' registers itself "
                            "via @register_experiment but is never imported "
                            "here, so it is invisible to run-all/"
                            "list-experiments; add it to the package's "
                            "experiment-module import block"
                        ),
                    )
                )
        return findings
