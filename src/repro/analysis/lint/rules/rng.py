"""``no-global-rng`` — all randomness flows through a passed Generator.

Bitwise per-trial reproducibility is the repo's foundational contract:
a simulation's outputs are a pure function of (scenario, seed, code
version).  Any draw from *global* RNG state — ``np.random.seed``/
``np.random.<sampler>`` module-level functions, or the stdlib ``random``
module — breaks that: it entangles results with import order, test
order, and whatever else touched the process-wide stream.  The runtime
counterpart is the seeded-equivalence suites (``tests/sim``,
``tests/dynamics``); this rule guarantees the discipline on paths they
never execute.

Sanctioned: explicit-state constructors (``np.random.default_rng``,
``np.random.Generator``, ``np.random.SeedSequence``, the bit
generators), which *create* the passed-around state the rest of the
code must use.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.registry import register_rule
from repro.analysis.lint.visitor import ScopedVisitorRule

__all__ = ["NoGlobalRngRule"]

#: numpy.random attributes that construct explicit, passable RNG state
#: (everything else on the module is global-state or a legacy sampler).
_SANCTIONED_NUMPY_RANDOM = frozenset(
    {
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "default_rng",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


@register_rule
class NoGlobalRngRule(ScopedVisitorRule):
    rule_id = "no-global-rng"
    description = (
        "forbid global-state randomness (np.random module-level samplers, "
        "stdlib random); randomness must flow through a passed "
        "numpy.random.Generator"
    )

    def handle_import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self.add_finding(
                    node,
                    "stdlib 'random' draws from hidden global state; pass a "
                    "numpy.random.Generator (see repro.utils.rng.as_generator)",
                )

    def handle_import_from(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and node.level == 0:
            self.add_finding(
                node,
                "stdlib 'random' draws from hidden global state; pass a "
                "numpy.random.Generator (see repro.utils.rng.as_generator)",
            )
        elif node.module == "numpy.random" and node.level == 0:
            for alias in node.names:
                if alias.name not in _SANCTIONED_NUMPY_RANDOM:
                    self.add_finding(
                        node,
                        f"'from numpy.random import {alias.name}' binds a "
                        "global-state sampler; use a passed "
                        "numpy.random.Generator method instead",
                    )

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.resolved_name(node.func)
        if resolved is not None:
            parts = resolved.split(".")
            if parts[0] == "random" and len(parts) > 1:
                self.add_finding(
                    node,
                    f"call to '{resolved}' uses the stdlib global RNG; use a "
                    "passed numpy.random.Generator method instead",
                )
            elif (
                len(parts) >= 3
                and parts[0] == "numpy"
                and parts[1] == "random"
                and parts[2] not in _SANCTIONED_NUMPY_RANDOM
            ):
                self.add_finding(
                    node,
                    f"call to '{resolved}' mutates/reads numpy's global RNG "
                    "state; use a passed numpy.random.Generator method "
                    "(create one with numpy.random.default_rng)",
                )
        self.generic_visit(node)
