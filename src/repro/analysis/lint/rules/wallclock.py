"""``no-wallclock-nondeterminism`` — simulation code never reads clocks.

Provenance-carrying results are content-addressed: the ResultStore keys
cached payloads by (scenario, seed, code version), and the engine
equivalence suites assert bitwise-identical reruns.  A wall-clock read
inside simulation logic (timeouts, time-seeded defaults, time-dependent
branching) would silently break both.  Clock reads are legitimate only
where *measuring time is the point* — the CLI's elapsed display,
provenance ``wall_time_seconds`` stamps, the orchestrator's run report,
and the benchmark harnesses — and those sites are enumerated (with
their justifications) in :data:`~repro.analysis.lint.manifest.
WALLCLOCK_ALLOWLIST`.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.context import FileContext
from repro.analysis.lint.manifest import (
    WALLCLOCK_ALLOWLIST,
    WALLCLOCK_ALLOWLIST_DIRS,
    module_matches,
    path_in_directory,
)
from repro.analysis.lint.registry import register_rule
from repro.analysis.lint.visitor import ScopedVisitorRule

__all__ = ["NoWallclockRule"]

#: Fully resolved callables that read a clock.
_FORBIDDEN_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)


@register_rule
class NoWallclockRule(ScopedVisitorRule):
    rule_id = "no-wallclock-nondeterminism"
    description = (
        "forbid wall-clock reads (time.time/perf_counter/datetime.now) "
        "outside the manifest's timing allowlist"
    )

    def begin_file(self, context: FileContext) -> None:
        self._allowlisted = any(
            module_matches(context.path, suffix)
            for suffix in WALLCLOCK_ALLOWLIST
        ) or any(
            path_in_directory(context.path, directory)
            for directory in WALLCLOCK_ALLOWLIST_DIRS
        )

    def visit_Call(self, node: ast.Call) -> None:
        if not self._allowlisted:
            resolved = self.resolved_name(node.func)
            if resolved in _FORBIDDEN_CALLS:
                self.add_finding(
                    node,
                    f"call to '{resolved}' reads the wall clock; simulation "
                    "outputs must be a function of (scenario, seed, code "
                    "version) only — if this module legitimately measures "
                    "time, add it to the WALLCLOCK_ALLOWLIST manifest with "
                    "a justification",
                )
        self.generic_visit(node)
