"""``counts-tier-n-free`` — counts-tier code never allocates O(n) arrays.

The counts tier is the paper's balls-into-bins/Poissonization
reformulation made executable: on the complete graph the opinion-count
vector is a sufficient statistic, so a round costs ``O(k^2)`` per trial
*independently of* ``n`` — which is what lets ``simulate()`` answer
``n = 10**12`` in milliseconds.  One ``np.zeros(n)`` on such a path
silently re-couples wall-clock (and memory) to the population size.  The
runtime counterpart, ``tests/integration/test_counts_no_n_arrays.py``,
traces allocations on the paths it runs; this rule covers every path.

Scope: modules in :data:`~repro.analysis.lint.manifest.
COUNTS_TIER_MODULES` plus definitions marked ``# reprolint:
counts-tier``.  Inside that scope the rule flags any array-constructor
shape (or sampler ``size=``) expression derived — through local
assignments, with a light taint analysis — from a population-size
parameter (``n``, ``num_nodes``, ...) or attribute (``*.num_nodes``).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.lint.context import FileContext
from repro.analysis.lint.registry import register_rule
from repro.analysis.lint.visitor import ScopedVisitorRule

__all__ = ["CountsTierNFreeRule"]

#: Parameter/variable names that denote a population size.
_N_NAMES = frozenset(
    {"n", "num_nodes", "n_nodes", "population_size", "num_balls", "n_h",
     "honest_nodes", "num_honest"}
)

#: Attribute terminals that denote a population size on any receiver
#: (``self.num_nodes``, ``state.num_nodes``, ...).
_N_ATTRIBUTES = frozenset({"num_nodes", "n_nodes", "population_size"})

#: numpy constructors whose first positional argument (or ``shape=``) is
#: the allocated shape.
_SHAPE_ARG0_CONSTRUCTORS = frozenset(
    {"zeros", "empty", "ones", "full", "identity", "eye", "ndarray"}
)

#: Generator/sampler method names whose ``size=`` keyword allocates.
_SAMPLER_METHODS = frozenset(
    {
        "multinomial", "binomial", "poisson", "normal", "integers",
        "random", "choice", "uniform", "exponential", "standard_normal",
        "permutation", "permuted", "gamma", "beta", "hypergeometric",
        "geometric", "dirichlet",
    }
)


@register_rule
class CountsTierNFreeRule(ScopedVisitorRule):
    rule_id = "counts-tier-n-free"
    description = (
        "in counts-tier code, forbid array allocations whose shape derives "
        "from the population size n (the tier's O(k) contract)"
    )

    def begin_file(self, context: FileContext) -> None:
        self._taint_stack: List[Set[str]] = []

    # -- taint bookkeeping ------------------------------------------------ #

    def handle_function(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        tainted = {
            name
            for name in (self.scope_stack[-1].parameters or ())
            if name in _N_NAMES
        }
        self._taint_stack.append(tainted)

    def handle_function_exit(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        self._taint_stack.pop()

    def _tainted_names(self) -> Set[str]:
        return self._taint_stack[-1] if self._taint_stack else set()

    def _taint_source(self, expression: ast.AST) -> Optional[str]:
        """The population-size identifier ``expression`` derives from."""
        tainted = self._tainted_names()
        for node in ast.walk(expression):
            if isinstance(node, ast.Name):
                if node.id in tainted or node.id in _N_NAMES:
                    return node.id
            elif isinstance(node, ast.Attribute):
                if node.attr in _N_ATTRIBUTES:
                    return f"...{node.attr}"
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        if not self._taint_stack:
            return
        if self._taint_source(node.value) is not None:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._taint_stack[-1].add(target.id)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if not self._taint_stack or node.value is None:
            return
        if self._taint_source(node.value) is not None and isinstance(
            node.target, ast.Name
        ):
            self._taint_stack[-1].add(node.target.id)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.generic_visit(node)
        if not self._taint_stack:
            return
        if self._taint_source(node.value) is not None and isinstance(
            node.target, ast.Name
        ):
            self._taint_stack[-1].add(node.target.id)

    # -- allocation checks ------------------------------------------------ #

    def _keyword(self, node: ast.Call, name: str) -> Optional[ast.expr]:
        for keyword in node.keywords:
            if keyword.arg == name:
                return keyword.value
        return None

    def visit_Call(self, node: ast.Call) -> None:
        if self.in_counts_tier:
            self._check_allocation(node)
        self.generic_visit(node)

    def _check_allocation(self, node: ast.Call) -> None:
        shape_expressions: Dict[str, ast.expr] = {}
        resolved = self.resolved_name(node.func)
        constructor = None
        if resolved is not None and resolved.startswith("numpy."):
            constructor = resolved.split(".")[-1]
        if constructor in _SHAPE_ARG0_CONSTRUCTORS:
            shape = self._keyword(node, "shape")
            if shape is None and node.args:
                shape = node.args[0]
            if shape is not None:
                shape_expressions["shape"] = shape
        elif constructor == "arange":
            for position, argument in enumerate(node.args):
                shape_expressions[f"argument {position}"] = argument
        elif constructor == "linspace":
            num = self._keyword(node, "num")
            if num is None and len(node.args) >= 3:
                num = node.args[2]
            if num is not None:
                shape_expressions["num"] = num
        elif constructor in ("tile", "repeat"):
            reps = self._keyword(
                node, "reps" if constructor == "tile" else "repeats"
            )
            if reps is None and len(node.args) >= 2:
                reps = node.args[1]
            if reps is not None:
                shape_expressions["repetitions"] = reps
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SAMPLER_METHODS
        ):
            size = self._keyword(node, "size")
            if size is not None:
                shape_expressions["size"] = size

        for role, expression in shape_expressions.items():
            source = self._taint_source(expression)
            if source is not None:
                label = (
                    f"'{ast.unparse(node.func)}'"
                    if hasattr(ast, "unparse")
                    else "array constructor"
                )
                self.add_finding(
                    node,
                    f"{label} {role} derives from population size "
                    f"'{source}' inside counts-tier code; the counts tier "
                    "must stay O(k) per trial — allocate over opinions/"
                    "trials, never over nodes",
                )
