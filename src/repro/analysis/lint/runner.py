"""The reprolint runner: collect files, run rules, filter suppressions.

:func:`run_lint` is the programmatic entry point (the CLI and the
self-lint test both call it): it expands the given paths to ``.py``
files, parses each into a :class:`~repro.analysis.lint.context.
FileContext`, runs every selected file rule per file and every project
rule once over the whole set, and drops findings suppressed by a
``# reprolint: disable=...`` comment on the finding's line.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.lint.context import FileContext
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import all_rules
from repro.analysis.lint.visitor import FileRule, ProjectRule

__all__ = ["run_lint", "collect_files", "LintError"]

#: Directories never descended into when expanding path arguments.
_SKIP_DIRS = {
    ".git", "__pycache__", ".mypy_cache", ".ruff_cache",
    ".pytest_cache", ".eggs", "build", "dist",
}


class LintError(Exception):
    """A usage or parse failure that aborts the run (CLI exit code 2)."""


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories to a sorted list of ``.py`` file paths."""
    collected: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            collected.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    name for name in dirnames if name not in _SKIP_DIRS
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        collected.append(os.path.join(dirpath, filename))
        else:
            raise LintError(f"no such file or directory: {path}")
    if not collected:
        raise LintError(f"no Python files found under: {', '.join(paths)}")
    # De-duplicate while preserving a deterministic order.
    return sorted(dict.fromkeys(collected))


def _parse_contexts(files: Iterable[str]) -> List[FileContext]:
    contexts: List[FileContext] = []
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            raise LintError(f"cannot read {path}: {error}") from error
        try:
            contexts.append(FileContext.parse(path, source))
        except SyntaxError as error:
            raise LintError(
                f"cannot parse {path}: {error.msg} (line {error.lineno})"
            ) from error
    return contexts


def _select_rules(
    select: Optional[Sequence[str]],
) -> Tuple[List[FileRule], List[ProjectRule]]:
    known = {rule_class.rule_id: rule_class for rule_class in all_rules()}
    if select is None:
        selected = list(known)
    else:
        unknown = sorted(set(select) - set(known))
        if unknown:
            raise LintError(
                f"unknown rule ids: {', '.join(unknown)}; known rules: "
                f"{', '.join(known)}"
            )
        selected = [rule_id for rule_id in known if rule_id in set(select)]
    file_rules: List[FileRule] = []
    project_rules: List[ProjectRule] = []
    for rule_id in selected:
        rule = known[rule_id]()
        if isinstance(rule, FileRule):
            file_rules.append(rule)
        else:
            project_rules.append(rule)
    return file_rules, project_rules


def run_lint(
    paths: Sequence[str],
    *,
    select: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], int]:
    """Lint ``paths``; return (sorted unsuppressed findings, files scanned).

    ``select`` restricts the run to the named rule ids (default: every
    registered rule).  Raises :class:`LintError` on unknown paths, rule
    ids, or unparsable source files.
    """
    files = collect_files(paths)
    contexts = _parse_contexts(files)
    file_rules, project_rules = _select_rules(select)

    findings: List[Finding] = []
    by_path = {context.path: context for context in contexts}
    for context in contexts:
        for rule in file_rules:
            findings.extend(rule.check_file(context))
    for project_rule in project_rules:
        findings.extend(project_rule.check_project(contexts))

    kept = [
        finding
        for finding in findings
        if not _suppressed(finding, by_path.get(finding.file))
    ]
    return sorted(kept), len(contexts)


def _suppressed(finding: Finding, context: Optional[FileContext]) -> bool:
    if context is None:
        return False
    return context.is_suppressed(finding.line, finding.rule)
