"""The unit of reprolint output: one finding at one source location.

A :class:`Finding` is plain data — rule id, location, message — ordered so
that reports are deterministic (sorted by file, then line, then column,
then rule id).  ``to_dict`` is the JSON-reporter payload; its keys are a
stable contract tested by ``tests/analysis/test_lint_reporters.py``, and
``from_dict`` restores it exactly (reprolint self-hosts: its own
serialization honors the ``serialization-contract`` rule).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    file:
        Path of the offending file, as given on the command line
        (posix-normalized, relative paths preserved).
    line, column:
        1-based line and 0-based column of the offending node, matching
        :mod:`ast` conventions so ``file:line`` is clickable in editors.
    rule:
        The violated rule's id (e.g. ``"no-global-rng"``).
    message:
        Human-readable explanation naming the offending construct and the
        sanctioned alternative.
    """

    file: str
    line: int
    column: int
    rule: str
    message: str

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-reporter payload for this finding (stable schema)."""
        return {field.name: getattr(self, field.name) for field in fields(self)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        return cls(**{field.name: payload[field.name] for field in fields(cls)})

    def format_text(self) -> str:
        """The text-reporter line: ``file:line:col: rule message``."""
        return f"{self.file}:{self.line}:{self.column}: {self.rule} {self.message}"
