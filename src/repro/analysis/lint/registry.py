"""The rule registry: how rules announce themselves to the runner.

Rule modules register a class with :func:`register_rule`; the runner
instantiates every registered rule per invocation (rules carry per-run
state, so class registration — not instance registration — keeps runs
independent).  Adding a rule to reprolint is therefore three steps:
write a ``FileRule``/``ProjectRule`` subclass in
``repro/analysis/lint/rules/``, decorate it with ``@register_rule``, and
import the module from ``rules/__init__.py`` (plus fixtures — see
``docs/static_analysis.md``).
"""

from __future__ import annotations

from typing import Dict, List, Type, TypeVar, Union

from repro.analysis.lint.visitor import FileRule, ProjectRule

__all__ = ["register_rule", "all_rules", "rule_ids", "get_rule"]

RuleClass = Union[Type[FileRule], Type[ProjectRule]]
R = TypeVar("R", bound=RuleClass)

_REGISTRY: Dict[str, RuleClass] = {}


def register_rule(rule_class: R) -> R:
    """Class decorator adding a rule to the global registry.

    The class must define a unique, non-empty ``rule_id``; registration
    order is preserved and becomes the ``--list-rules`` order.
    """
    rule_id = getattr(rule_class, "rule_id", "")
    if not rule_id:
        raise ValueError(
            f"{rule_class.__name__} must define a non-empty rule_id"
        )
    if rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    if not issubclass(rule_class, (FileRule, ProjectRule)):
        raise TypeError(
            f"{rule_class.__name__} must subclass FileRule or ProjectRule"
        )
    _REGISTRY[rule_id] = rule_class
    return rule_class


def all_rules() -> List[RuleClass]:
    """Every registered rule class, in registration order."""
    _ensure_loaded()
    return list(_REGISTRY.values())


def rule_ids() -> List[str]:
    """Every registered rule id, in registration order."""
    _ensure_loaded()
    return list(_REGISTRY)


def get_rule(rule_id: str) -> RuleClass:
    """The registered rule class for ``rule_id`` (KeyError if unknown)."""
    _ensure_loaded()
    return _REGISTRY[rule_id]


def _ensure_loaded() -> None:
    """Import the built-in rule modules (idempotent)."""
    # Imported lazily to avoid a cycle: rule modules import this module
    # for the decorator.
    import repro.analysis.lint.rules  # noqa: F401
