"""reprolint — AST-based invariant checks for this repository.

The engine tiers rest on invariants Python cannot express in types:
bitwise per-trial reproducibility (no global RNG state, no wall-clock
reads in simulation code), the counts tier's n-independence (no n-sized
allocation on the Poissonized paths), 64-bit count arithmetic beyond
``2**31`` nodes, and exact serialization round trips.  The runtime test
suite checks these on the paths it exercises; reprolint checks them on
*every* path, statically.

Usage::

    python -m repro.analysis.lint src/            # text report, CI exit codes
    python -m repro.analysis.lint --format json src/
    python -m repro.analysis.lint --list-rules

Programmatic::

    from repro.analysis.lint import run_lint
    findings, files_scanned = run_lint(["src/"])

See ``docs/static_analysis.md`` for the rule catalog, the suppression
policy, and how to add a rule.
"""

from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import all_rules, get_rule, register_rule, rule_ids
from repro.analysis.lint.reporters import render_json, render_text
from repro.analysis.lint.runner import LintError, collect_files, run_lint
from repro.analysis.lint.visitor import FileRule, ProjectRule, ScopedVisitorRule

__all__ = [
    "Finding",
    "FileRule",
    "LintError",
    "ProjectRule",
    "ScopedVisitorRule",
    "all_rules",
    "collect_files",
    "get_rule",
    "register_rule",
    "render_json",
    "render_text",
    "rule_ids",
    "run_lint",
]
