"""The ``reprolint`` command line: ``python -m repro.analysis.lint``.

Exit codes follow CI conventions:

* ``0`` — scan completed, no findings;
* ``1`` — scan completed, at least one finding;
* ``2`` — the scan itself failed (unknown path or rule id, unparsable
  source), so CI can distinguish "violations" from "broken invocation".
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.lint.registry import all_rules
from repro.analysis.lint.reporters import render_json, render_text
from repro.analysis.lint.runner import LintError, run_lint

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description=(
            "reprolint: static checks for the invariants the paper's "
            "analysis demands (RNG discipline, counts-tier n-freedom, "
            "int64 dtype pins, serialization contracts, ...)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src/)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help=(
            "restrict the run to this rule id (repeatable; default: all "
            "registered rules)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rule catalog and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(argv)

    if arguments.list_rules:
        for rule_class in all_rules():
            print(f"{rule_class.rule_id}: {rule_class.description}")
        return 0

    if not arguments.paths:
        parser.print_usage(sys.stderr)
        print(
            "error: at least one path is required (try: src/)",
            file=sys.stderr,
        )
        return 2

    select: Optional[List[str]] = arguments.select
    try:
        findings, files_scanned = run_lint(arguments.paths, select=select)
    except LintError as error:
        print(f"reprolint: error: {error}", file=sys.stderr)
        return 2

    if arguments.format == "json":
        print(render_json(findings, files_scanned))
    else:
        print(render_text(findings, files_scanned))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
