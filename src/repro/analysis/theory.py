"""Closed-form quantities from the paper's analysis.

The functions here are direct transcriptions of the paper's formulas:

* :func:`g_function` — the function ``g(delta, l)`` of Proposition 1 /
  Lemma 15, which controls the per-phase bias amplification;
* :func:`central_binomial_bounds` — Lemma 13's two-sided bound on the central
  binomial coefficient ``C(2r, r)``;
* :func:`binomial_beta_survival` — the binomial survival function written as
  the Lemma 8 incomplete-beta integral (used to cross-check Lemma 8);
* :func:`stage1_growth_envelope` — the Claim 2 / Claim 3 envelope for the
  growth of the opinionated set during Stage 1;
* :func:`stage1_bias_envelope` — the Lemma 7 per-phase bias lower bound
  ``(eps/2)^j``;
* :func:`theoretical_bias_after_stage1` — the Lemma 4 end-of-Stage-1 bias
  scale ``sqrt(log n / n)``.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy.special import betainc, comb

from repro.utils.validation import require_fraction, require_positive_int

__all__ = [
    "g_function",
    "central_binomial_bounds",
    "paper_central_binomial_bounds",
    "binomial_beta_survival",
    "stage1_growth_envelope",
    "stage1_bias_envelope",
    "theoretical_bias_after_stage1",
]


def g_function(delta: float, sample_size: float) -> float:
    """The paper's ``g(delta, l)`` (Proposition 1 / Lemma 15).

    ``g(delta, l) = delta * (1 - delta^2)^((l-1)/2)`` when ``delta < 1/sqrt(l)``
    and ``sqrt(1/l) * (1 - 1/l)^((l-1)/2)`` otherwise.  Lemma 15 shows ``g`` is
    non-decreasing in ``delta`` and non-increasing in ``l``; the property
    tests verify both monotonicities numerically.
    """
    delta = float(delta)
    sample_size = float(sample_size)
    if not (0.0 <= delta <= 1.0):
        raise ValueError(f"delta must lie in [0, 1], got {delta}")
    if sample_size < 1.0:
        raise ValueError(f"sample_size must be >= 1, got {sample_size}")
    threshold = 1.0 / math.sqrt(sample_size)
    exponent = (sample_size - 1.0) / 2.0
    if delta < threshold:
        return delta * (1.0 - delta * delta) ** exponent
    return threshold * (1.0 - 1.0 / sample_size) ** exponent


def central_binomial_bounds(r: int) -> Tuple[float, float, float]:
    """Two-sided Robbins-style bound on the central binomial coefficient.

    Lemma 13 of the paper states
    ``4^r/sqrt(pi r) * e^(1/(9r)) <= C(2r, r) <= 4^r/sqrt(pi r) * e^(1/(8r))``.
    The signs of the exponents are a typo: ``C(2r, r) = 4^r/sqrt(pi r) *
    e^(-theta_r)`` with ``theta_r`` between ``1/(9r)`` and ``1/(8r)`` (this
    follows from Robbins' form of Stirling's approximation), so the correct
    two-sided bound — the one this function returns and the tests verify — is

        ``4^r/sqrt(pi r) * e^(-1/(8r)) <= C(2r, r) <= 4^r/sqrt(pi r) * e^(-1/(9r))``.

    The discrepancy only affects constant factors and none of the paper's
    conclusions; see :func:`paper_central_binomial_bounds` for the literal
    values as printed in the paper, and EXPERIMENTS.md for the record of the
    observation.

    Returns ``(lower_bound, exact_value, upper_bound)``.
    """
    r = require_positive_int(r, "r")
    base = 4.0**r / math.sqrt(math.pi * r)
    lower = base * math.exp(-1.0 / (8.0 * r))
    upper = base * math.exp(-1.0 / (9.0 * r))
    exact = float(comb(2 * r, r, exact=True))
    return lower, exact, upper


def paper_central_binomial_bounds(r: int) -> Tuple[float, float, float]:
    """Lemma 13 exactly as printed in the paper (known to be slightly off).

    Returns ``(paper_lower, exact_value, paper_upper)`` with
    ``paper_lower = 4^r/sqrt(pi r) * e^(1/(9r))`` and
    ``paper_upper = 4^r/sqrt(pi r) * e^(1/(8r))``; the *upper* bound is valid,
    the printed lower bound slightly exceeds the exact coefficient for every
    ``r`` (see :func:`central_binomial_bounds` for the corrected version).
    """
    r = require_positive_int(r, "r")
    base = 4.0**r / math.sqrt(math.pi * r)
    lower = base * math.exp(1.0 / (9.0 * r))
    upper = base * math.exp(1.0 / (8.0 * r))
    exact = float(comb(2 * r, r, exact=True))
    return lower, exact, upper


def binomial_beta_survival(p: float, j: int, ell: int) -> Tuple[float, float]:
    """Lemma 8: the binomial survival function equals a beta integral.

    Returns ``(binomial_sum, beta_integral)`` where

    * ``binomial_sum  = sum_{j < i <= l} C(l, i) p^i (1-p)^(l-i)``,
    * ``beta_integral = C(l, j+1) (j+1) * int_0^p z^j (1-z)^(l-j-1) dz``,

    which Lemma 8 proves equal; the tests assert the two agree to machine
    precision.  The integral is evaluated through the regularized incomplete
    beta function ``I_p(j+1, l-j)``.
    """
    p = require_fraction(p, "p")
    ell = require_positive_int(ell, "ell")
    if not (0 <= j <= ell):
        raise ValueError(f"j must lie in [0, {ell}], got {j}")
    indices = np.arange(j + 1, ell + 1)
    if indices.size == 0:
        binomial_sum = 0.0
    else:
        terms = comb(ell, indices) * (p**indices) * ((1.0 - p) ** (ell - indices))
        binomial_sum = float(np.sum(terms))
    if j == ell:
        beta_integral = 0.0
    else:
        # C(l, j+1) (j+1) * B(j+1, l-j) * I_p(j+1, l-j)  ==  I_p(j+1, l-j)
        # because C(l, j+1)*(j+1)*B(j+1, l-j) = 1; we keep the explicit form
        # to mirror the lemma statement.
        from scipy.special import beta as beta_fn

        normalizer = float(comb(ell, j + 1) * (j + 1) * beta_fn(j + 1, ell - j))
        beta_integral = normalizer * float(betainc(j + 1, ell - j, p))
    return binomial_sum, beta_integral


def stage1_growth_envelope(
    initial_opinionated_fraction: float,
    epsilon: float,
    beta: float,
    phase_index: int,
) -> Tuple[float, float]:
    """Claim 3's envelope for the opinionated fraction after growth phase ``j``.

    Returns ``(lower, upper)`` with
    ``lower = (beta/eps^2 + 1)^j * a(tau_0) / 8`` and
    ``upper = (beta/eps^2 + 1)^j * a(tau_0)`` (both capped at 1).
    """
    if initial_opinionated_fraction < 0 or initial_opinionated_fraction > 1:
        raise ValueError("initial_opinionated_fraction must lie in [0, 1]")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if beta <= 0:
        raise ValueError("beta must be positive")
    if phase_index < 0:
        raise ValueError("phase_index must be non-negative")
    factor = (beta / (epsilon * epsilon) + 1.0) ** phase_index
    upper = min(1.0, factor * initial_opinionated_fraction)
    lower = min(1.0, factor * initial_opinionated_fraction / 8.0)
    return lower, upper


def stage1_bias_envelope(epsilon: float, phase_index: int) -> float:
    """Lemma 7's per-phase bias lower bound ``(eps/2)^j`` for Stage-1 phase ``j``."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if phase_index < 1:
        raise ValueError("phase_index must be >= 1")
    return (epsilon / 2.0) ** phase_index


def theoretical_bias_after_stage1(num_nodes: int, constant: float = 1.0) -> float:
    """The Lemma 4 end-of-Stage-1 bias scale ``constant * sqrt(log n / n)``."""
    num_nodes = require_positive_int(num_nodes, "num_nodes")
    return constant * math.sqrt(math.log(max(num_nodes, 2)) / num_nodes)
