"""The analytical toolbox behind the paper's proofs.

This subpackage collects the closed-form quantities and statistical
diagnostics that the paper's analysis relies on, so that experiments can
compare measured behaviour against the proved bounds:

* :mod:`repro.analysis.theory` — the function ``g(delta, l)``, the
  Proposition-1 amplification lower bound, the central-binomial-coefficient
  bounds of Lemma 13 and the binomial/beta identity of Lemma 8;
* :mod:`repro.analysis.bias` — bias and plurality statistics on opinion
  distributions;
* :mod:`repro.analysis.concentration` — Chernoff/Hoeffding bounds including
  the three-point-variable bound of Lemma 16;
* :mod:`repro.analysis.amplification` — exact and Monte-Carlo estimates of
  ``Pr[maj_l = m] - Pr[maj_l = i]`` for a given opinion distribution and
  noise matrix (the quantity bounded by Proposition 1);
* :mod:`repro.analysis.poisson` — statistical distances between the three
  delivery processes O, B and P (Claim 1 and Lemma 2/3);
* :mod:`repro.analysis.convergence` — success-rate estimation and scaling
  fits of measured convergence times against ``log n / eps^2``.
"""

from repro.analysis.amplification import (
    amplification_lower_bound,
    binary_majority_gap_exact,
    majority_gap_monte_carlo,
    majority_probabilities_exact,
)
from repro.analysis.bias import (
    bias_toward,
    distribution_after_noise,
    is_delta_biased,
    plurality_of,
)
from repro.analysis.concentration import (
    chernoff_upper_tail,
    hoeffding_bound,
    three_point_chernoff_bound,
)
from repro.analysis.convergence import (
    estimate_success_probability,
    fit_round_complexity,
    wilson_interval,
)
from repro.analysis.poisson import (
    poisson_transfer_factor,
    process_count_distribution,
    total_variation_distance,
)
from repro.analysis.theory import (
    binomial_beta_survival,
    central_binomial_bounds,
    g_function,
    stage1_growth_envelope,
)

__all__ = [
    "amplification_lower_bound",
    "bias_toward",
    "binary_majority_gap_exact",
    "binomial_beta_survival",
    "central_binomial_bounds",
    "chernoff_upper_tail",
    "distribution_after_noise",
    "estimate_success_probability",
    "fit_round_complexity",
    "g_function",
    "hoeffding_bound",
    "is_delta_biased",
    "majority_gap_monte_carlo",
    "majority_probabilities_exact",
    "plurality_of",
    "poisson_transfer_factor",
    "process_count_distribution",
    "stage1_growth_envelope",
    "three_point_chernoff_bound",
    "total_variation_distance",
    "wilson_interval",
]
