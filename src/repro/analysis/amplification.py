"""The Proposition-1 bias amplification quantities.

Stage 2 works because a node that takes the majority of a size-``l`` sample
drawn from a delta-biased (noisy) opinion distribution is more likely to pick
the plurality opinion ``m`` than any rival ``i``, by a margin that
Proposition 1 lower-bounds by::

    Pr[maj_l = m] - Pr[maj_l = i]  >=  sqrt(2 l / pi) * g(delta, l) / 4^(k-2).

This module computes the left-hand side exactly (for small ``l`` and ``k``,
by enumerating multinomial outcomes; for ``k = 2`` by binomial sums) and by
Monte-Carlo (for everything else), plus the right-hand side bound, so that
experiment E5 can tabulate measured-vs-guaranteed amplification across
``delta``, ``l`` and ``k``.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Optional, Sequence

import numpy as np
from scipy.special import gammaln

from repro.analysis.theory import g_function
from repro.noise.matrix import NoiseMatrix
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import require_positive_int, require_probability_vector

__all__ = [
    "amplification_lower_bound",
    "binary_majority_gap_exact",
    "majority_probabilities_exact",
    "majority_gap_monte_carlo",
    "expected_amplification_factor",
]

#: Above this multinomial outcome count the exact enumeration is refused
#: (callers should fall back to Monte Carlo).
_MAX_EXACT_OUTCOMES = 2_000_000


def amplification_lower_bound(delta: float, sample_size: int, num_opinions: int) -> float:
    """Proposition 1's lower bound ``sqrt(2l/pi) * g(delta, l) / 4^(k-2)``."""
    sample_size = require_positive_int(sample_size, "sample_size")
    num_opinions = require_positive_int(num_opinions, "num_opinions")
    if num_opinions < 2:
        raise ValueError("the bound is defined for k >= 2 opinions")
    if not (0.0 <= delta <= 1.0):
        raise ValueError(f"delta must lie in [0, 1], got {delta}")
    return (
        math.sqrt(2.0 * sample_size / math.pi)
        * g_function(delta, sample_size)
        / (4.0 ** (num_opinions - 2))
    )


def binary_majority_gap_exact(probability: float, sample_size: int) -> float:
    """Exact ``Pr[maj_l = 1] - Pr[maj_l = 2]`` for two opinions.

    ``probability`` is the chance that a single sampled message carries
    opinion 1.  Ties (possible for even ``l``) are broken uniformly and hence
    cancel out of the difference, so the gap equals
    ``Pr[X > l/2] - Pr[X < l/2]`` with ``X ~ Bin(l, probability)``.
    """
    sample_size = require_positive_int(sample_size, "sample_size")
    if not (0.0 <= probability <= 1.0):
        raise ValueError(f"probability must lie in [0, 1], got {probability}")
    counts = np.arange(sample_size + 1)
    log_pmf = (
        gammaln(sample_size + 1)
        - gammaln(counts + 1)
        - gammaln(sample_size - counts + 1)
    )
    with np.errstate(divide="ignore"):
        log_pmf = (
            log_pmf
            + counts * np.log(max(probability, 1e-300))
            + (sample_size - counts) * np.log(max(1.0 - probability, 1e-300))
        )
    pmf = np.exp(log_pmf)
    if probability == 0.0:
        pmf = np.zeros(sample_size + 1)
        pmf[0] = 1.0
    elif probability == 1.0:
        pmf = np.zeros(sample_size + 1)
        pmf[-1] = 1.0
    above = float(pmf[counts * 2 > sample_size].sum())
    below = float(pmf[counts * 2 < sample_size].sum())
    return above - below


def _multinomial_log_pmf(counts: np.ndarray, probabilities: np.ndarray) -> float:
    total = counts.sum()
    log_coeff = gammaln(total + 1) - gammaln(counts + 1).sum()
    with np.errstate(divide="ignore"):
        log_terms = np.where(
            counts > 0, counts * np.log(np.maximum(probabilities, 1e-300)), 0.0
        )
    return float(log_coeff + log_terms.sum())


def majority_probabilities_exact(
    probabilities: Sequence[float], sample_size: int
) -> np.ndarray:
    """Exact ``Pr[maj_l = i]`` for every opinion ``i`` by full enumeration.

    ``probabilities`` is the distribution a single sampled message is drawn
    from (the paper's ``c . P``).  The enumeration covers every composition
    of ``sample_size`` into ``k`` parts and splits ties uniformly over the
    mode set; it is intended for the small ``l``/``k`` regimes of the
    amplification and parity experiments and refuses instances whose outcome
    count exceeds an internal limit.
    """
    probabilities = require_probability_vector(probabilities, "probabilities")
    sample_size = require_positive_int(sample_size, "sample_size")
    num_opinions = probabilities.size
    num_outcomes = math.comb(sample_size + num_opinions - 1, num_opinions - 1)
    if num_outcomes > _MAX_EXACT_OUTCOMES:
        raise ValueError(
            f"exact enumeration would require {num_outcomes} outcomes; use "
            "majority_gap_monte_carlo instead"
        )
    result = np.zeros(num_opinions)
    for cuts in itertools.combinations(
        range(sample_size + num_opinions - 1), num_opinions - 1
    ):
        counts = np.diff(
            np.concatenate(([-1], np.asarray(cuts), [sample_size + num_opinions - 1]))
        ) - 1
        counts = counts.astype(np.int64)
        pmf = math.exp(_multinomial_log_pmf(counts, probabilities))
        top = counts.max()
        winners = np.nonzero(counts == top)[0]
        result[winners] += pmf / winners.size
    return result


def majority_gap_monte_carlo(
    probabilities: Sequence[float],
    sample_size: int,
    num_trials: int,
    random_state: RandomState = None,
) -> np.ndarray:
    """Monte-Carlo estimate of ``Pr[maj_l = i]`` for every opinion ``i``.

    Draws ``num_trials`` multinomial samples of size ``sample_size`` from
    ``probabilities`` and tallies the majority winner of each, breaking ties
    uniformly at random.
    """
    probabilities = require_probability_vector(probabilities, "probabilities")
    sample_size = require_positive_int(sample_size, "sample_size")
    num_trials = require_positive_int(num_trials, "num_trials")
    rng = as_generator(random_state)
    samples = rng.multinomial(sample_size, probabilities, size=num_trials)
    top = samples.max(axis=1, keepdims=True)
    is_mode = samples == top
    # Uniform tie-break: weight each modal opinion by 1 / (number of modes).
    weights = is_mode / is_mode.sum(axis=1, keepdims=True)
    return weights.mean(axis=0)


def expected_amplification_factor(
    delta: float,
    sample_size: int,
    num_opinions: int,
    *,
    majority_opinion: int = 1,
    noise_matrix: Optional["NoiseMatrix"] = None,
    method: str = "auto",
    num_trials: int = 200_000,
    random_state: RandomState = None,
) -> Dict[str, float]:
    """Measured vs. guaranteed amplification for a canonical delta-biased start.

    Builds the "uniform rest" delta-biased distribution, optionally passes it
    through ``noise_matrix`` (Eq. (2)), and computes the worst-case gap
    ``Pr[maj = m] - max_{i != m} Pr[maj = i]`` exactly or by Monte Carlo,
    together with Proposition 1's lower bound.

    Returns a dictionary with keys ``measured_gap``, ``lower_bound`` and
    ``amplification`` (= measured gap / delta, the per-phase bias
    multiplication factor when the phase starts delta-biased).
    """
    from repro.analysis.bias import make_biased_distribution

    distribution = make_biased_distribution(
        num_opinions, delta, majority_opinion
    )
    if noise_matrix is not None:
        distribution = noise_matrix.propagate(distribution)
        distribution = distribution / distribution.sum()
    if method not in {"auto", "exact", "monte_carlo"}:
        raise ValueError(
            "method must be 'auto', 'exact' or 'monte_carlo', got "
            f"{method!r}"
        )
    use_exact = method == "exact"
    if method == "auto":
        num_outcomes = math.comb(sample_size + num_opinions - 1, num_opinions - 1)
        use_exact = num_outcomes <= 50_000
    if use_exact:
        win_probabilities = majority_probabilities_exact(distribution, sample_size)
    else:
        win_probabilities = majority_gap_monte_carlo(
            distribution, sample_size, num_trials, random_state
        )
    rivals = np.delete(win_probabilities, majority_opinion - 1)
    measured_gap = float(win_probabilities[majority_opinion - 1] - rivals.max())
    lower_bound = amplification_lower_bound(delta, sample_size, num_opinions)
    return {
        "measured_gap": measured_gap,
        "lower_bound": lower_bound,
        "amplification": measured_gap / delta if delta > 0 else float("inf"),
    }
