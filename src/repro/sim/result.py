"""The unified :class:`SimulationResult` every facade run returns.

One result type across all three engine tiers and all workloads: per-trial
converged/success masks, executed rounds, final bias and opinion counts,
optional bias trajectories, and a provenance dictionary (engine used, seed,
code version, wall time, the scenario itself).  Adapter constructors build
it from every legacy result type (:class:`~repro.core.protocol.
ProtocolResult`, :class:`~repro.core.protocol.EnsembleResult`,
:class:`~repro.dynamics.base.DynamicsResult`,
:class:`~repro.dynamics.base.EnsembleDynamicsResult`,
:class:`~repro.dynamics.base.CountsDynamicsResult`), which is what lets one
facade supersede five result dataclasses without re-deriving a single
number — the adapters only re-arrange what the engines already measured.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.analytic import AnalyticProtocolResult
from repro.core.protocol import EnsembleResult, ProtocolResult
from repro.dynamics.analytic import AnalyticDynamicsResult
from repro.dynamics.base import (
    CountsDynamicsResult,
    DynamicsResult,
    EnsembleDynamicsResult,
)

__all__ = ["SimulationResult"]


def _protocol_trajectories(
    stage1_biases: Sequence[np.ndarray], stage2_biases: Sequence[np.ndarray]
) -> Optional[np.ndarray]:
    """Per-phase ``(R, P)`` bias trajectory over both stages, if recorded."""
    columns = [column for column in (*stage1_biases, *stage2_biases) if column is not None]
    if not columns:
        return None
    return np.stack([np.asarray(column, dtype=float) for column in columns], axis=1)


@dataclass
class SimulationResult:
    """What one :func:`repro.sim.simulate` call measured.

    Attributes
    ----------
    workload:
        The scenario workload (``"rumor"``, ``"plurality"``, ``"dynamics"``).
    engine:
        The concrete engine tier that executed the run (``"sequential"``,
        ``"batched"`` or ``"counts"`` — never ``"auto"``).
    num_nodes, num_opinions, num_trials:
        The executed scale.
    target_opinion:
        The opinion every trial tracked.
    successes:
        Boolean ``(R,)`` mask: consensus on ``target_opinion`` at the end.
    converged:
        Boolean ``(R,)`` mask: consensus on *some* opinion at the end (for
        the protocol workloads this is computed from the final counts, so a
        run that converged on a wrong opinion shows up here).
    rounds:
        Integer ``(R,)`` array of executed communication rounds per trial
        (identical entries for the protocol workloads — the schedule is
        shared).
    final_biases:
        Float ``(R,)`` array: Definition-1 bias toward the target at the end.
    final_opinion_counts:
        Integer ``(R, k)`` matrix of final opinion counts per trial.
    consensus_opinions:
        Integer ``(R,)`` array: the agreed opinion per converged trial
        (0 otherwise).
    bias_after_stage1:
        Float ``(R,)`` array of end-of-Stage-1 biases (protocol workloads
        with recorded Stage-1 phases; ``None`` otherwise).
    stage1_rounds:
        Rounds spent in Stage 1 (protocol workloads; ``None`` otherwise).
    trajectories:
        Optional float ``(R, T)`` bias trajectory — per protocol phase for
        the protocol workloads, per round for the dynamics workload.  The
        analytic tier stores its single expected-bias trajectory as the
        one row of a ``(1, T)`` matrix.
    success_probability, convergence_probability:
        Analytic tier only: the computed (exact or mean-field) outcome
        probabilities.  When set, :attr:`success_rate` /
        :attr:`convergence_rate` return them instead of empirical
        frequencies (the analytic tier samples no trials, so the
        per-trial arrays are empty).
    expected_rounds, expected_final_bias, expected_final_counts:
        Analytic tier only: exact / mean-field expectations of the
        matching per-trial statistics.
    expected_bias_after_stage1:
        Analytic tier, protocol workloads only: the expected end-of-
        Stage-1 bias.
    analytic_method:
        ``"exact"`` or ``"mean-field"`` when the analytic tier produced
        the result; ``None`` for the sampling tiers.
    state_space_size:
        Size of the enumerated count simplex (exact analytic method
        only).
    provenance:
        How the result was produced: resolved engine, requested policy,
        seed, facade code version, wall time, and the full scenario
        dictionary.  Filled in by :func:`~repro.sim.facade.simulate`.
    """

    workload: str
    engine: str
    num_nodes: int
    num_opinions: int
    num_trials: int
    target_opinion: int
    successes: np.ndarray
    converged: np.ndarray
    rounds: np.ndarray
    final_biases: np.ndarray
    final_opinion_counts: np.ndarray
    consensus_opinions: np.ndarray
    bias_after_stage1: Optional[np.ndarray] = None
    stage1_rounds: Optional[int] = None
    trajectories: Optional[np.ndarray] = None
    success_probability: Optional[float] = None
    convergence_probability: Optional[float] = None
    expected_rounds: Optional[float] = None
    expected_final_bias: Optional[float] = None
    expected_final_counts: Optional[np.ndarray] = None
    expected_bias_after_stage1: Optional[float] = None
    analytic_method: Optional[str] = None
    state_space_size: Optional[int] = None
    provenance: Dict[str, Any] = field(default_factory=dict)

    # ---------------------- derived statistics ---------------------- #

    @property
    def is_analytic(self) -> bool:
        """Whether the analytic tier produced this result (no sampling)."""
        return self.analytic_method is not None

    @property
    def success_count(self) -> int:
        """Number of trials that reached consensus on the target opinion."""
        return int(np.count_nonzero(self.successes))

    @property
    def success_rate(self) -> float:
        """Success probability: computed (analytic tier) or empirical."""
        if self.success_probability is not None:
            return float(self.success_probability)
        return self.success_count / self.num_trials

    @property
    def convergence_rate(self) -> float:
        """Probability of consensus on *some* opinion (computed or empirical)."""
        if self.convergence_probability is not None:
            return float(self.convergence_probability)
        return int(np.count_nonzero(self.converged)) / self.num_trials

    @property
    def mean_rounds(self) -> float:
        """Mean executed rounds per trial (expected rounds on the analytic tier)."""
        if self.expected_rounds is not None:
            return float(self.expected_rounds)
        return float(self.rounds.mean())

    @property
    def mean_final_bias(self) -> float:
        """Mean final bias toward the target opinion."""
        if self.expected_final_bias is not None:
            return float(self.expected_final_bias)
        return float(self.final_biases.mean())

    def correct_fractions(self) -> np.ndarray:
        """Per-trial fraction of nodes on the target opinion at the end."""
        return (
            self.final_opinion_counts[:, self.target_opinion - 1]
            / self.num_nodes
        )

    def summary(self) -> Dict[str, Any]:
        """Headline statistics of the run."""
        document = {
            "workload": self.workload,
            "engine": self.engine,
            "num_nodes": self.num_nodes,
            "num_trials": self.num_trials,
            "target_opinion": self.target_opinion,
            "success_rate": self.success_rate,
            "convergence_rate": self.convergence_rate,
            "mean_rounds": self.mean_rounds,
            "mean_final_bias": self.mean_final_bias,
        }
        if self.analytic_method is not None:
            document["analytic_method"] = self.analytic_method
        return document

    # ------------------- adapters from legacy results ------------------- #

    @classmethod
    def from_protocol_results(
        cls,
        results: Sequence[ProtocolResult],
        *,
        workload: str,
        engine: str = "sequential",
    ) -> "SimulationResult":
        """Adapt a sequence of per-trial :class:`ProtocolResult` objects."""
        if not results:
            raise ValueError("at least one ProtocolResult is required")
        first = results[0]
        target = int(first.target_opinion)
        counts = np.stack(
            [result.final_state.opinion_counts() for result in results]
        ).astype(np.int64)
        num_nodes = first.final_state.num_nodes
        converged = counts.max(axis=1) == num_nodes
        consensus = np.where(converged, counts.argmax(axis=1) + 1, 0).astype(
            np.int64
        )
        stage1_biases = [result.bias_after_stage1 for result in results]
        has_stage1 = all(value is not None for value in stage1_biases)
        per_trial = [result.bias_trajectory() for result in results]
        lengths = {trajectory.shape[0] for trajectory in per_trial}
        trajectories = (
            np.stack(per_trial) if len(lengths) == 1 and lengths != {0} else None
        )
        return cls(
            workload=workload,
            engine=engine,
            num_nodes=num_nodes,
            num_opinions=first.final_state.num_opinions,
            num_trials=len(results),
            target_opinion=target,
            successes=np.asarray([result.success for result in results], dtype=bool),
            converged=converged,
            rounds=np.asarray(
                [result.total_rounds for result in results], dtype=np.int64
            ),
            final_biases=np.asarray(
                [result.final_bias for result in results], dtype=float
            ),
            final_opinion_counts=counts,
            consensus_opinions=consensus,
            bias_after_stage1=(
                np.asarray(stage1_biases, dtype=float) if has_stage1 else None
            ),
            stage1_rounds=int(first.stage1_rounds),
            trajectories=trajectories,
        )

    @classmethod
    def from_ensemble_result(
        cls,
        result: EnsembleResult,
        *,
        workload: str,
        engine: str,
    ) -> "SimulationResult":
        """Adapt a batched or counts :class:`EnsembleResult`."""
        counts = np.asarray(result.final_states.opinion_counts(), dtype=np.int64)
        num_nodes = result.final_states.num_nodes
        converged = counts.max(axis=1) == num_nodes
        consensus = np.where(converged, counts.argmax(axis=1) + 1, 0).astype(
            np.int64
        )
        stage1_biases = result.biases_after_stage1
        trajectories = _protocol_trajectories(
            [record.bias for record in result.stage1_records],
            [record.bias_after for record in result.stage2_records],
        )
        return cls(
            workload=workload,
            engine=engine,
            num_nodes=num_nodes,
            num_opinions=result.final_states.num_opinions,
            num_trials=result.num_trials,
            target_opinion=int(result.target_opinion),
            successes=np.asarray(result.successes, dtype=bool),
            converged=converged,
            rounds=np.full(result.num_trials, result.total_rounds, dtype=np.int64),
            final_biases=np.asarray(result.final_biases, dtype=float),
            final_opinion_counts=counts,
            consensus_opinions=consensus,
            bias_after_stage1=(
                np.asarray(stage1_biases, dtype=float)
                if stage1_biases is not None
                else None
            ),
            stage1_rounds=int(result.stage1_rounds),
            trajectories=trajectories,
        )

    @classmethod
    def from_dynamics_results(
        cls,
        results: Sequence[DynamicsResult],
        *,
        engine: str = "sequential",
    ) -> "SimulationResult":
        """Adapt a sequence of per-trial :class:`DynamicsResult` objects.

        Per-trial bias histories may be ragged (early-stopped trials record
        fewer rounds); the trajectory matrix pads each row with its final
        value, mirroring the batched engine's history semantics.
        """
        if not results:
            raise ValueError("at least one DynamicsResult is required")
        first = results[0]
        counts = np.stack(
            [result.final_state.opinion_counts() for result in results]
        ).astype(np.int64)
        histories = [result.bias_history for result in results]
        max_rounds = max((len(history) for history in histories), default=0)
        if max_rounds > 0 and all(histories):
            trajectories = np.stack(
                [
                    np.asarray(
                        history + [history[-1]] * (max_rounds - len(history)),
                        dtype=float,
                    )
                    for history in histories
                ]
            )
        else:
            trajectories = None
        return cls(
            workload="dynamics",
            engine=engine,
            num_nodes=first.final_state.num_nodes,
            num_opinions=first.final_state.num_opinions,
            num_trials=len(results),
            target_opinion=int(first.target_opinion),
            successes=np.asarray([result.success for result in results], dtype=bool),
            converged=np.asarray(
                [result.converged for result in results], dtype=bool
            ),
            rounds=np.asarray(
                [result.rounds_executed for result in results], dtype=np.int64
            ),
            final_biases=np.asarray(
                [
                    (
                        result.final_state.bias_toward(result.target_opinion)
                        if result.target_opinion > 0
                        else 0.0
                    )
                    for result in results
                ],
                dtype=float,
            ),
            final_opinion_counts=counts,
            consensus_opinions=np.asarray(
                [result.consensus_opinion for result in results], dtype=np.int64
            ),
        )

    @classmethod
    def from_ensemble_dynamics_result(
        cls,
        result: Union[EnsembleDynamicsResult, CountsDynamicsResult],
        *,
        engine: str,
    ) -> "SimulationResult":
        """Adapt a batched or counts multi-trial dynamics result."""
        final_states = result.final_states
        counts = np.asarray(final_states.opinion_counts(), dtype=np.int64)
        history = result.bias_history
        trajectories = history.T.copy() if history.size else None
        return cls(
            workload="dynamics",
            engine=engine,
            num_nodes=final_states.num_nodes,
            num_opinions=final_states.num_opinions,
            num_trials=result.num_trials,
            target_opinion=int(result.target_opinion),
            successes=np.asarray(result.successes, dtype=bool),
            converged=np.asarray(result.converged, dtype=bool),
            rounds=np.asarray(result.rounds_executed, dtype=np.int64),
            final_biases=np.asarray(result.final_biases, dtype=float),
            final_opinion_counts=counts,
            consensus_opinions=np.asarray(
                result.consensus_opinions, dtype=np.int64
            ),
            trajectories=trajectories,
        )

    @classmethod
    def from_analytic_dynamics(
        cls,
        result: AnalyticDynamicsResult,
        *,
        engine: str = "analytic",
    ) -> "SimulationResult":
        """Adapt an :class:`AnalyticDynamicsResult` (exact or mean-field).

        The analytic tier evolves the state *distribution*, so there are
        no trials: the per-trial arrays are empty (``num_trials == 0``)
        and the derived statistics come from the ``*_probability`` /
        ``expected_*`` fields instead.  ``trajectories`` carries the
        expected-bias trajectory as a single ``(1, T)`` row.
        """
        trajectory = np.asarray(result.bias_trajectory, dtype=float)
        return cls(
            workload="dynamics",
            engine=engine,
            num_nodes=result.num_nodes,
            num_opinions=result.num_opinions,
            num_trials=0,
            target_opinion=int(result.target_opinion),
            successes=np.zeros(0, dtype=bool),
            converged=np.zeros(0, dtype=bool),
            rounds=np.zeros(0, dtype=np.int64),
            final_biases=np.zeros(0, dtype=float),
            final_opinion_counts=np.zeros(
                (0, result.num_opinions), dtype=np.int64
            ),
            consensus_opinions=np.zeros(0, dtype=np.int64),
            trajectories=(
                trajectory[np.newaxis, :] if trajectory.size else None
            ),
            success_probability=float(result.success_probability),
            convergence_probability=float(result.convergence_probability),
            expected_rounds=float(result.expected_rounds),
            expected_final_bias=float(result.expected_final_bias),
            expected_final_counts=np.asarray(
                result.expected_final_counts, dtype=float
            ),
            analytic_method=result.method,
            state_space_size=result.state_space_size,
        )

    @classmethod
    def from_analytic_protocol(
        cls,
        result: AnalyticProtocolResult,
        *,
        workload: str,
        engine: str = "analytic",
    ) -> "SimulationResult":
        """Adapt an :class:`AnalyticProtocolResult` (exact or mean-field)."""
        phase_biases = np.asarray(result.phase_biases, dtype=float)
        return cls(
            workload=workload,
            engine=engine,
            num_nodes=result.num_nodes,
            num_opinions=result.num_opinions,
            num_trials=0,
            target_opinion=int(result.target_opinion),
            successes=np.zeros(0, dtype=bool),
            converged=np.zeros(0, dtype=bool),
            rounds=np.zeros(0, dtype=np.int64),
            final_biases=np.zeros(0, dtype=float),
            final_opinion_counts=np.zeros(
                (0, result.num_opinions), dtype=np.int64
            ),
            consensus_opinions=np.zeros(0, dtype=np.int64),
            stage1_rounds=int(result.stage1_rounds),
            trajectories=(
                phase_biases[np.newaxis, :] if phase_biases.size else None
            ),
            success_probability=float(result.success_probability),
            convergence_probability=float(result.convergence_probability),
            expected_rounds=float(result.total_rounds),
            expected_final_bias=float(result.expected_final_bias),
            expected_final_counts=np.asarray(
                result.expected_final_counts, dtype=float
            ),
            expected_bias_after_stage1=float(result.expected_bias_after_stage1),
            analytic_method=result.method,
            state_space_size=result.state_space_size,
        )

    # --------------------------- JSON I/O --------------------------- #

    def to_json_dict(self) -> Dict[str, Any]:
        """The result as plain JSON-serializable data.

        Uses the experiment layer's :func:`~repro.experiments.results.
        jsonify_value` — the repository's one canonical JSON encoder — so
        facade payloads and orchestrator artifacts normalize identically.
        """
        # Imported lazily: the sim facade must stay importable without the
        # experiments package (which imports the runner, which imports the
        # sim engine registry).
        from repro.experiments.results import jsonify_value

        return {
            "workload": self.workload,
            "engine": self.engine,
            "num_nodes": int(self.num_nodes),
            "num_opinions": int(self.num_opinions),
            "num_trials": int(self.num_trials),
            "target_opinion": int(self.target_opinion),
            "successes": jsonify_value(self.successes),
            "converged": jsonify_value(self.converged),
            "rounds": jsonify_value(self.rounds),
            "final_biases": jsonify_value(self.final_biases),
            "final_opinion_counts": jsonify_value(self.final_opinion_counts),
            "consensus_opinions": jsonify_value(self.consensus_opinions),
            "bias_after_stage1": jsonify_value(self.bias_after_stage1),
            "stage1_rounds": (
                int(self.stage1_rounds) if self.stage1_rounds is not None else None
            ),
            "trajectories": jsonify_value(self.trajectories),
            "success_probability": self.success_probability,
            "convergence_probability": self.convergence_probability,
            "expected_rounds": self.expected_rounds,
            "expected_final_bias": self.expected_final_bias,
            "expected_final_counts": jsonify_value(self.expected_final_counts),
            "expected_bias_after_stage1": self.expected_bias_after_stage1,
            "analytic_method": self.analytic_method,
            "state_space_size": (
                int(self.state_space_size)
                if self.state_space_size is not None
                else None
            ),
            "provenance": jsonify_value(self.provenance),
        }

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """Serialize the result to JSON."""
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(
        cls, document: Union[str, Mapping[str, Any]]
    ) -> "SimulationResult":
        """Rebuild a result from :meth:`to_json` output (string or dict)."""
        if isinstance(document, str):
            document = json.loads(document)
        if not isinstance(document, Mapping):
            raise TypeError(
                "document must be a JSON object string or a mapping, got "
                f"{type(document).__name__}"
            )
        missing = [
            key
            for key in ("workload", "engine", "num_trials", "successes")
            if key not in document
        ]
        if missing:
            raise ValueError(
                f"simulation-result document is missing fields: {missing}"
            )
        optional_stage1 = document.get("bias_after_stage1")
        trajectories = document.get("trajectories")
        return cls(
            workload=str(document["workload"]),
            engine=str(document["engine"]),
            num_nodes=int(document["num_nodes"]),
            num_opinions=int(document["num_opinions"]),
            num_trials=int(document["num_trials"]),
            target_opinion=int(document["target_opinion"]),
            successes=np.asarray(document["successes"], dtype=bool),
            converged=np.asarray(document["converged"], dtype=bool),
            rounds=np.asarray(document["rounds"], dtype=np.int64),
            final_biases=np.asarray(document["final_biases"], dtype=float),
            final_opinion_counts=np.asarray(
                document["final_opinion_counts"], dtype=np.int64
            ),
            consensus_opinions=np.asarray(
                document["consensus_opinions"], dtype=np.int64
            ),
            bias_after_stage1=(
                np.asarray(optional_stage1, dtype=float)
                if optional_stage1 is not None
                else None
            ),
            stage1_rounds=(
                int(document["stage1_rounds"])
                if document.get("stage1_rounds") is not None
                else None
            ),
            trajectories=(
                np.asarray(trajectories, dtype=float)
                if trajectories is not None
                else None
            ),
            success_probability=(
                float(document["success_probability"])
                if document.get("success_probability") is not None
                else None
            ),
            convergence_probability=(
                float(document["convergence_probability"])
                if document.get("convergence_probability") is not None
                else None
            ),
            expected_rounds=(
                float(document["expected_rounds"])
                if document.get("expected_rounds") is not None
                else None
            ),
            expected_final_bias=(
                float(document["expected_final_bias"])
                if document.get("expected_final_bias") is not None
                else None
            ),
            expected_final_counts=(
                np.asarray(document["expected_final_counts"], dtype=float)
                if document.get("expected_final_counts") is not None
                else None
            ),
            expected_bias_after_stage1=(
                float(document["expected_bias_after_stage1"])
                if document.get("expected_bias_after_stage1") is not None
                else None
            ),
            analytic_method=(
                str(document["analytic_method"])
                if document.get("analytic_method") is not None
                else None
            ),
            state_space_size=(
                int(document["state_space_size"])
                if document.get("state_space_size") is not None
                else None
            ),
            provenance=dict(document.get("provenance", {})),
        )
