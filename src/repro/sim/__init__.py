"""``repro.sim`` — the unified simulation facade.

One declarative :class:`Scenario` describes *what* to simulate (rumor
spreading, plurality consensus, or a baseline opinion dynamic), one
:func:`simulate` call executes it on the right engine tier (sequential
reference loop, batched ``(R, n)`` ensemble, counts ``(R, k)`` sufficient
statistics, or ``auto``), and one :class:`SimulationResult` carries the
per-trial verdicts, the measurements and the provenance — across every
workload and every tier.

The :data:`~repro.sim.engines.ENGINE_REGISTRY` keyed by
``(workload, engine)`` is the single dispatch table; it absorbed the legacy
per-tier factories (``make_dynamics`` / ``make_ensemble_dynamics`` /
``make_counts_dynamics`` and ``core.protocol.make_engine``), which remain
as deprecation shims.  Under a fixed seed, ``simulate()`` is bitwise
identical to the legacy entry point it supersedes, tier by tier.

>>> from repro.sim import Scenario, simulate
>>> result = simulate(Scenario(
...     workload="rumor", num_nodes=600, num_opinions=3, epsilon=0.3,
...     engine="batched", num_trials=4, seed=0,
... ))
>>> bool(result.successes.all())
True
"""

from repro.sim.engines import (
    DELIVERY_PROCESSES,
    ENGINE_REGISTRY,
    ENGINE_TIERS,
    EngineRegistry,
    build_dynamics,
    make_delivery_engine,
)
from repro.sim.facade import sim_code_version, simulate
from repro.sim.result import SimulationResult
from repro.sim.sweep import ScenarioGrid, SweepResult, simulate_sweep
from repro.sim.scenario import (
    ENGINE_POLICIES,
    TOPOLOGIES,
    WORKLOADS,
    Scenario,
    ScenarioError,
)

__all__ = [
    "DELIVERY_PROCESSES",
    "ENGINE_POLICIES",
    "ENGINE_REGISTRY",
    "ENGINE_TIERS",
    "EngineRegistry",
    "Scenario",
    "ScenarioError",
    "ScenarioGrid",
    "SimulationResult",
    "SweepResult",
    "TOPOLOGIES",
    "WORKLOADS",
    "build_dynamics",
    "make_delivery_engine",
    "sim_code_version",
    "simulate",
    "simulate_sweep",
]
