"""``simulate_sweep(ScenarioGrid(...)) -> SweepResult`` — batched grids.

A :class:`ScenarioGrid` is a base :class:`~repro.sim.scenario.Scenario`
plus an ordered mapping of swept axes (``epsilon``, ``bias`` / ``shares``,
``sample_size``, ``rule``, ``num_nodes``, ...).  Expanding it yields one
scenario per grid point, each with a per-point seed derived from the base
seed (``derive_seed(base.seed, index)``) so the points are statistically
independent — exactly the scenario list a serial sweep loop would build.

:func:`simulate_sweep` executes the whole grid, routing every point that
resolves to the counts tier into one *heterogeneous* batch — the entire
grid advances as a single ``(sum of trials, k)`` counts computation with
per-row parameters (see
:func:`~repro.core.protocol.run_heterogeneous_counts_protocol` and
:func:`~repro.dynamics.base.run_heterogeneous_counts_dynamics`) — while
points on other tiers (sequential topologies, batched, analytic) fall
back to per-point :func:`~repro.sim.facade.simulate` calls.  Per-point
results are **bitwise identical** to the serial loop
``[simulate(s) for s in grid.scenarios()]`` under the same seeds; only
provenance wall times differ.

An optional :class:`~repro.experiments.orchestrator.ResultStore` makes
sweeps incremental: cached grid points are sliced out before the batch
runs and merged back afterwards, and freshly computed points are stored
under an identity keyed by the scenario dictionary and the sim-layer code
version.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.protocol import (
    CountsProtocolTask,
    run_heterogeneous_counts_protocol,
)
from repro.dynamics.base import (
    CountsDynamicsTask,
    run_heterogeneous_counts_dynamics,
)
from repro.sim.engines import build_dynamics
from repro.network.pull_model import vote_law_cache_info
from repro.sim.facade import (
    _cache_delta,
    _resolve_engine,
    sim_code_version,
    simulate,
)
from repro.sim.result import SimulationResult
from repro.sim.scenario import Scenario
from repro.utils.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.experiments.orchestrator import ResultStore

__all__ = ["ScenarioGrid", "SweepResult", "simulate_sweep"]

_SCENARIO_FIELDS = frozenset(f.name for f in dataclasses.fields(Scenario))


@dataclass(frozen=True)
class ScenarioGrid:
    """A base scenario plus ordered swept axes — one scenario per point.

    ``axes`` maps scenario field names to the values they sweep over; the
    grid is their Cartesian product in insertion order (the last axis
    varies fastest, like nested loops).  Point ``i`` is the base scenario
    with that point's overrides applied and ``seed`` replaced by
    ``derive_seed(base.seed, i)``; sweeping ``"seed"`` itself disables the
    derivation and uses the swept values verbatim.
    """

    base: Scenario
    axes: Mapping[str, Sequence[Any]]

    def __post_init__(self) -> None:
        if not self.axes:
            raise ValueError("axes must name at least one swept field")
        normalized: Dict[str, Tuple[Any, ...]] = {}
        for name, values in self.axes.items():
            if name not in _SCENARIO_FIELDS:
                raise ValueError(
                    f"unknown sweep axis {name!r}; must be a Scenario "
                    f"field (one of {sorted(_SCENARIO_FIELDS)})"
                )
            values = tuple(values)
            if not values:
                raise ValueError(f"sweep axis {name!r} has no values")
            normalized[name] = values
        object.__setattr__(self, "axes", normalized)

    @property
    def axis_names(self) -> Tuple[str, ...]:
        """The swept field names, in axis (outer-to-inner) order."""
        return tuple(self.axes)

    @property
    def shape(self) -> Tuple[int, ...]:
        """Points per axis, in axis order."""
        return tuple(len(values) for values in self.axes.values())

    @property
    def size(self) -> int:
        """Total number of grid points."""
        size = 1
        for extent in self.shape:
            size *= extent
        return size

    def point_overrides(self, index: int) -> Dict[str, Any]:
        """The axis-value overrides at flat grid ``index``."""
        if not 0 <= index < self.size:
            raise IndexError(
                f"grid index {index} out of range for {self.size} points"
            )
        overrides: Dict[str, Any] = {}
        remainder = index
        for name, extent in zip(
            reversed(self.axis_names), reversed(self.shape)
        ):
            remainder, position = divmod(remainder, extent)
            overrides[name] = self.axes[name][position]
        return {name: overrides[name] for name in self.axis_names}

    def points(self) -> List[Dict[str, Any]]:
        """Override dictionaries for every point, in flat grid order."""
        combos = itertools.product(*self.axes.values())
        return [dict(zip(self.axis_names, combo)) for combo in combos]

    def point_seed(self, index: int) -> Any:
        """The seed point ``index`` runs under (derived unless swept)."""
        if "seed" in self.axes:
            return self.point_overrides(index)["seed"]
        return derive_seed(self.base.seed, index)

    def scenario(self, index: int) -> Scenario:
        """The fully expanded scenario at flat grid ``index``."""
        overrides = self.point_overrides(index)
        if "seed" not in self.axes:
            overrides["seed"] = derive_seed(self.base.seed, index)
        return dataclasses.replace(self.base, **overrides)

    def scenarios(self) -> List[Scenario]:
        """Every expanded scenario, in flat grid order.

        ``[simulate(s) for s in grid.scenarios()]`` is the serial
        reference loop :func:`simulate_sweep` is bitwise equivalent to.
        """
        return [self.scenario(index) for index in range(self.size)]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable description (base scenario + axis values)."""
        return {
            "base": self.base.to_dict(),
            "axes": {name: list(values) for name, values in self.axes.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioGrid":
        """Rebuild a grid from :meth:`to_dict` output (exact round trip).

        Axis value *order* is preserved, so the reconstructed grid
        enumerates points (and derives per-point seeds) identically to
        the original.
        """
        return cls(
            base=Scenario.from_dict(payload["base"]),
            axes={
                name: tuple(values)
                for name, values in payload["axes"].items()
            },
        )


@dataclass
class SweepResult:
    """Per-point :class:`SimulationResult`\\ s of one grid sweep.

    Indexing (``sweep[i]``) returns the i-th point's result exactly as a
    serial ``simulate(grid.scenario(i))`` call would have produced it
    (modulo provenance wall time); :meth:`point` pairs it with the axis
    overrides that generated it.
    """

    grid: ScenarioGrid
    results: List[SimulationResult]
    engines: List[str]
    from_cache: List[bool]
    wall_time_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> SimulationResult:
        return self.results[index]

    def __iter__(self) -> Iterator[SimulationResult]:
        return iter(self.results)

    @property
    def cache_hits(self) -> int:
        """How many grid points were served from the result store."""
        return sum(self.from_cache)

    def point(self, index: int) -> Tuple[Dict[str, Any], SimulationResult]:
        """``(axis overrides, result)`` for flat grid ``index``."""
        return self.grid.point_overrides(index), self.results[index]

    def success_rates(self) -> np.ndarray:
        """Per-point success rate, shaped like the grid axes."""
        rates = np.array(
            [float(np.mean(result.successes)) for result in self.results]
        )
        return rates.reshape(self.grid.shape)

    def summary(self) -> List[Dict[str, Any]]:
        """One plain dictionary per point: axis values + headline stats."""
        rows = []
        for index, result in enumerate(self.results):
            row = dict(self.grid.point_overrides(index))
            row.update(
                seed=self.grid.point_seed(index),
                engine=self.engines[index],
                from_cache=self.from_cache[index],
                success_rate=float(np.mean(result.successes)),
                mean_rounds=float(np.mean(result.rounds)),
            )
            rows.append(row)
        return rows


def _point_identity(scenario: Scenario, code_version: str) -> Dict[str, Any]:
    """The store identity of one grid point (grid-independent on purpose:
    a point cached by one sweep is reusable by any sweep or serial run
    that produces the same scenario)."""
    return {"scenario": scenario.to_dict(), "code_version": code_version}


def _protocol_task(scenario: Scenario) -> CountsProtocolTask:
    """The heterogeneous-batch task mirroring the facade's counts runner.

    Field-for-field the arguments ``_protocol_counts`` hands to
    :class:`~repro.core.protocol.CountsProtocol` — the batch entry point
    replicates its ``run`` preamble, so the draws are identical.
    """
    return CountsProtocolTask(
        num_nodes=scenario.num_nodes,
        noise=scenario.build_noise(),
        initial_state=scenario.initial_counts_state(),
        num_trials=scenario.num_trials,
        epsilon=scenario.epsilon,
        target_opinion=scenario.target_opinion(),
        random_state=scenario.seed,
        round_scale=scenario.round_scale,
    )


def _dynamics_task(scenario: Scenario) -> CountsDynamicsTask:
    """The heterogeneous-batch task mirroring ``_dynamics_ensemble``."""
    dynamics = build_dynamics(
        "counts",
        scenario.rule,
        scenario.num_nodes,
        scenario.build_noise(),
        scenario.seed,
        sample_size=scenario.sample_size,
        epsilon=(
            scenario.epsilon
            if scenario.rule == "approximate-consensus"
            else None
        ),
    )
    return CountsDynamicsTask(
        dynamics=dynamics,
        initial_state=scenario.initial_counts_state(),
        max_rounds=scenario.max_rounds,
        num_trials=scenario.num_trials,
        target_opinion=scenario.target_opinion(),
        stop_at_consensus=scenario.stop_at_consensus,
        record_history=scenario.record_trajectories,
    )


def _stamp_provenance(
    result: SimulationResult,
    scenario: Scenario,
    engine: str,
    code_version: str,
    elapsed: float,
) -> None:
    """The same provenance dictionary :func:`simulate` stamps.

    ``wall_time_seconds`` is the containing batch's time (per-point
    attribution is meaningless inside one merged computation).
    """
    result.provenance = {
        "workload": scenario.workload,
        "engine": engine,
        "engine_policy": scenario.engine,
        "seed": scenario.seed,
        "num_trials": scenario.num_trials,
        "code_version": code_version,
        "wall_time_seconds": round(elapsed, 6),
        "scenario": scenario.to_dict(),
    }


def simulate_sweep(
    grid: ScenarioGrid,
    *,
    store: Optional["ResultStore"] = None,
    store_label: str = "sweep",
    draw_mode: str = "per-trial",
) -> SweepResult:
    """Execute every point of ``grid``, batching the counts tier.

    Points resolving to the counts tier are fused into heterogeneous
    batches — protocol points grouped by opinion count ``k`` (the merged
    state shares its opinion axis), dynamics points merged per rule
    family into one stacked counts ensemble that advances every row in
    the same vectorized round loop — and evolved with per-row
    parameters; every other point runs through a per-point
    :func:`simulate` call.  Results slot back into
    flat grid order and are bitwise identical to the serial loop
    ``[simulate(s) for s in grid.scenarios()]``.

    With a ``store`` (any object with the
    :class:`~repro.experiments.orchestrator.ResultStore` ``fetch`` /
    ``store`` interface), cached points are sliced out before the batch
    runs and merged back after; fresh points are stored on completion.

    ``draw_mode="batched"`` opts the fused counts-protocol batches into
    shared-stream column-wise draws (see
    :func:`~repro.core.protocol.run_heterogeneous_counts_protocol`):
    distributionally identical to — but no longer bitwise identical with —
    the serial loop, and markedly faster when per-row generator calls
    dominate.  Batched results are stamped with
    ``provenance["rng_draw_order"] = "batched"`` and cached under a
    distinct store identity so they never masquerade as per-trial runs.
    """
    if draw_mode not in ("per-trial", "batched"):
        raise ValueError(
            f"draw_mode must be 'per-trial' or 'batched', got {draw_mode!r}"
        )
    started = time.perf_counter()
    scenarios = grid.scenarios()
    for scenario in scenarios:
        scenario.validate()
    size = grid.size
    code_version = sim_code_version()
    results: List[Optional[SimulationResult]] = [None] * size
    engines: List[Optional[str]] = [None] * size
    from_cache = [False] * size

    identities: List[Optional[Dict[str, Any]]] = [None] * size
    if store is not None:
        for index, scenario in enumerate(scenarios):
            identities[index] = _point_identity(scenario, code_version)
            if draw_mode != "per-trial":
                identities[index]["draw_mode"] = draw_mode
            payload = store.fetch(store_label, identities[index])
            if payload is not None:
                cached = SimulationResult.from_json(payload)
                results[index] = cached
                engines[index] = cached.provenance.get("engine", "unknown")
                from_cache[index] = True

    pending = [index for index in range(size) if results[index] is None]
    protocol_groups: Dict[int, List[int]] = {}
    dynamics_batch: List[int] = []
    serial_points: List[int] = []
    for index in pending:
        scenario = scenarios[index]
        engine, _ = _resolve_engine(scenario)
        engines[index] = engine
        if scenario.faults is not None:
            # Faulted points run per-point: the merged counts batch knows
            # nothing about fault samplers, and simulate() already owns the
            # honest-reduction construction (bitwise equality to the serial
            # loop is then trivial).
            serial_points.append(index)
        elif engine == "counts" and scenario.workload in ("rumor", "plurality"):
            protocol_groups.setdefault(scenario.num_opinions, []).append(index)
        elif engine == "counts" and scenario.workload == "dynamics":
            dynamics_batch.append(index)
        else:
            serial_points.append(index)

    for _, indices in sorted(protocol_groups.items()):
        batch_started = time.perf_counter()
        cache_before = vote_law_cache_info()
        tasks = [_protocol_task(scenarios[index]) for index in indices]
        batch_results = run_heterogeneous_counts_protocol(
            tasks, draw_mode=draw_mode
        )
        batch_elapsed = time.perf_counter() - batch_started
        batch_cache = _cache_delta(cache_before)
        for index, ensemble_result in zip(indices, batch_results):
            scenario = scenarios[index]
            result = SimulationResult.from_ensemble_result(
                ensemble_result, workload=scenario.workload, engine="counts"
            )
            _stamp_provenance(
                result, scenario, "counts", code_version, batch_elapsed
            )
            result.provenance["rng_draw_order"] = draw_mode
            # Batch-level counters, like wall time: per-point attribution
            # is meaningless inside one merged computation.
            result.provenance["vote_law_cache"] = batch_cache
            results[index] = result

    if dynamics_batch:
        batch_started = time.perf_counter()
        tasks = [_dynamics_task(scenarios[index]) for index in dynamics_batch]
        batch_results = run_heterogeneous_counts_dynamics(tasks)
        batch_elapsed = time.perf_counter() - batch_started
        for index, dynamics_result in zip(dynamics_batch, batch_results):
            scenario = scenarios[index]
            result = SimulationResult.from_ensemble_dynamics_result(
                dynamics_result, engine="counts"
            )
            _stamp_provenance(
                result, scenario, "counts", code_version, batch_elapsed
            )
            results[index] = result

    for index in serial_points:
        results[index] = simulate(scenarios[index])

    if store is not None:
        for index in pending:
            store.store(
                store_label, identities[index], results[index].to_json_dict()
            )

    elapsed = time.perf_counter() - started
    for index, result in enumerate(results):
        result.provenance["sweep"] = {
            "grid_index": index,
            "grid_size": size,
            "axes": {
                name: _jsonable(value)
                for name, value in grid.point_overrides(index).items()
            },
            "from_cache": from_cache[index],
        }
    return SweepResult(
        grid=grid,
        results=results,
        engines=engines,
        from_cache=from_cache,
        wall_time_seconds=round(elapsed, 6),
    )


def _jsonable(value: Any) -> Any:
    """Axis values coerced for the provenance dictionary."""
    if isinstance(value, (np.integer, np.floating)):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if hasattr(value, "to_dict"):
        return value.to_dict()
    return value
