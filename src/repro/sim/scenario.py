"""The declarative :class:`Scenario` — one description of one simulation.

A scenario names *what* to simulate (the workload: the paper's rumor or
plurality protocol, or one of the baseline opinion dynamics), *at what
scale* (population, opinions, trials), *through which channel* (the uniform
noise built from ``epsilon``, or any custom :class:`~repro.noise.matrix.
NoiseMatrix`) and *on which engine tier* (``sequential`` reference loop,
``batched`` ``(R, n)`` ensemble, ``counts`` ``(R, k)`` sufficient
statistics, or ``auto``).  It is plain data: every field is serializable,
``to_dict``/``from_dict`` round-trip exactly, and validation happens at
construction time with error messages that name the supported options.

:func:`repro.sim.facade.simulate` is the single entry point that turns a
scenario into a :class:`~repro.sim.result.SimulationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.analysis.bias import make_biased_distribution
from repro.core.plurality import PluralityInstance
from repro.core.state import CountsState, PopulationState
from repro.dynamics import DYNAMICS_RULES
from repro.faults.injection import split_faulty_population
from repro.faults.model import FaultModel, coerce_fault_model
from repro.network.delivery import DELIVERY_PROCESSES
from repro.network.pull_model import vote_table_is_tractable
from repro.noise.families import uniform_noise_matrix
from repro.noise.matrix import NoiseMatrix

__all__ = [
    "Scenario",
    "ScenarioError",
    "WORKLOADS",
    "ENGINE_POLICIES",
    "TOPOLOGIES",
]


class ScenarioError(ValueError):
    """An invalid or unsupported scenario combination.

    Every rejection names the offending knob and the supported
    alternatives; subclassing ``ValueError`` keeps pre-existing callers
    (and ``except ValueError`` CLI handling) working.
    """

#: Workloads a scenario can describe.
WORKLOADS = ("rumor", "plurality", "dynamics")

#: Engine policies a scenario can request (``"auto"`` resolves to a concrete
#: tier by population size; see :func:`repro.experiments.runner.
#: resolve_trial_engine`).  ``"analytic"`` runs no sampling at all: the
#: exact Markov chain over opinion counts when ``C(n + k, k)`` fits the
#: state budget, the mean-field ODE with a Gaussian-diffusion correction
#: otherwise.
ENGINE_POLICIES = ("sequential", "batched", "counts", "auto", "analytic")

#: Communication topologies (non-complete graphs run on the sequential
#: engine only — the batched/counts reformulations assume the complete
#: graph's exchangeability).
TOPOLOGIES = ("complete", "random_regular")

_PROTOCOL_WORKLOADS = ("rumor", "plurality")


@dataclass(frozen=True)
class Scenario:
    """A declarative simulation request.

    Attributes
    ----------
    workload:
        One of :data:`WORKLOADS`: ``"rumor"`` (Theorem 1: single source,
        two-stage protocol), ``"plurality"`` (Theorem 2: opinionated support
        with a plurality bias, two-stage protocol) or ``"dynamics"``
        (a baseline opinion dynamic named by ``rule``).
    num_nodes, num_opinions:
        Population size ``n`` and opinion-space size ``k``.
    epsilon:
        The noise parameter: builds the canonical uniform-noise matrix when
        ``noise`` is omitted, and always drives the protocol schedule.
    noise:
        Optional custom channel (any :class:`~repro.noise.matrix.
        NoiseMatrix` over ``num_opinions`` opinions); ``epsilon`` then only
        sets the schedule (use :func:`~repro.noise.majority_preserving.
        epsilon_for_delta` to derive it).
    engine:
        One of :data:`ENGINE_POLICIES`; ``"auto"`` switches from
        ``"batched"`` to ``"counts"`` at ``counts_threshold`` nodes.
    num_trials:
        Number of independent trials ``R``.
    seed:
        Base seed; per-trial child streams derive from it, so a scenario is
        bitwise reproducible per engine tier.
    counts_threshold:
        The ``"auto"`` switch-over population size (only meaningful with
        ``engine="auto"``; ``None`` uses the process-wide default).
    correct_opinion:
        The rumor source's opinion (``workload="rumor"`` only).
    support_size:
        Number of initially opinionated nodes for ``plurality`` /
        ``dynamics`` (``None`` = every node starts opinionated).
    bias:
        Plurality bias within the support (the Theorem-2 convention for
        ``plurality``; the initial distribution bias for ``dynamics``).
    shares:
        Optional explicit opinion shares within the support (overrides
        ``bias``); must have one entry per opinion and sum to 1.
    rule:
        The baseline update rule (one of
        :data:`~repro.dynamics.DYNAMICS_RULES`; ``workload="dynamics"``
        only).
    sample_size:
        Observations per round for the ``"h-majority"`` rule.
    max_rounds:
        Round budget per trial (``dynamics`` only; the protocol workloads
        run their schedule).
    stop_at_consensus:
        Stop a dynamics trial at consensus (``dynamics`` only).
    process:
        Delivery process for the protocol workloads (one of
        :data:`~repro.network.delivery.DELIVERY_PROCESSES`); the counts
        engine always uses its Claim-1/Poissonized delivery.
    round_scale:
        Multiplier for the protocol schedule's phase lengths.
    sampling_method, use_full_multiset:
        Stage-2 ablation knobs (batched/sequential engines only).
    topology, degree:
        Communication topology (sequential engine, protocol workloads
        only); ``degree`` is required for ``"random_regular"``.
    record_trajectories:
        Record per-round (dynamics) / per-phase (protocol) bias
        trajectories on the result.
    """

    workload: str
    num_nodes: int = 2000
    num_opinions: int = 3
    epsilon: float = 0.3
    noise: Optional[NoiseMatrix] = None
    engine: str = "auto"
    num_trials: int = 1
    seed: Optional[int] = 0
    counts_threshold: Optional[int] = None
    correct_opinion: int = 1
    support_size: Optional[int] = None
    bias: float = 0.2
    shares: Optional[Tuple[float, ...]] = None
    rule: Optional[str] = None
    sample_size: Optional[int] = None
    max_rounds: int = 300
    stop_at_consensus: bool = True
    process: str = "push"
    round_scale: float = 1.0
    sampling_method: str = "without_replacement"
    use_full_multiset: bool = False
    topology: str = "complete"
    degree: Optional[int] = None
    record_trajectories: bool = True
    faults: Optional[FaultModel] = None

    def __post_init__(self) -> None:
        if self.shares is not None and not isinstance(self.shares, tuple):
            object.__setattr__(self, "shares", tuple(self.shares))
        if self.faults is not None and not isinstance(self.faults, FaultModel):
            try:
                object.__setattr__(
                    self, "faults", coerce_fault_model(self.faults)
                )
            except ValueError as error:
                raise ScenarioError(str(error)) from error
        self.validate()

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Raise ``ValueError`` (naming the supported options) if invalid."""
        if self.workload not in WORKLOADS:
            raise ScenarioError(
                f"workload must be one of {WORKLOADS}, got {self.workload!r}"
            )
        if self.engine not in ENGINE_POLICIES:
            raise ScenarioError(
                f"engine must be one of {ENGINE_POLICIES}, got {self.engine!r}"
            )
        if self.process not in DELIVERY_PROCESSES:
            raise ScenarioError(
                f"process must be one of {DELIVERY_PROCESSES}, "
                f"got {self.process!r}"
            )
        if self.topology not in TOPOLOGIES:
            raise ScenarioError(
                f"topology must be one of {TOPOLOGIES}, got {self.topology!r}"
            )
        for name in ("num_nodes", "num_opinions", "num_trials", "max_rounds"):
            value = getattr(self, name)
            if not isinstance(value, (int, np.integer)) or value < 1:
                raise ScenarioError(f"{name} must be a positive int, got {value!r}")
        if not (0.0 < float(self.epsilon)):
            raise ScenarioError(f"epsilon must be positive, got {self.epsilon!r}")
        if not (0.0 <= float(self.bias) < 1.0):
            raise ScenarioError(f"bias must be in [0, 1), got {self.bias!r}")
        if self.noise is not None:
            if not isinstance(self.noise, NoiseMatrix):
                raise ScenarioError(
                    "noise must be a NoiseMatrix (or None for the uniform "
                    f"channel), got {type(self.noise).__name__}"
                )
            if self.noise.num_opinions != self.num_opinions:
                raise ScenarioError(
                    f"noise matrix has {self.noise.num_opinions} opinions "
                    f"but the scenario asks for {self.num_opinions}"
                )
        if self.counts_threshold is not None:
            if self.engine != "auto":
                raise ScenarioError(
                    "counts_threshold only applies to engine='auto' "
                    f"(got engine={self.engine!r})"
                )
            if self.counts_threshold < 1:
                raise ScenarioError(
                    f"counts_threshold must be >= 1, got {self.counts_threshold}"
                )
        if not (1 <= self.correct_opinion <= self.num_opinions):
            raise ScenarioError(
                f"correct_opinion must be in [1, {self.num_opinions}], "
                f"got {self.correct_opinion}"
            )
        self._validate_workload_knobs()
        self._validate_engine_knobs()
        self._validate_topology_knobs()
        self._validate_fault_knobs()

    def _validate_workload_knobs(self) -> None:
        if self.workload == "dynamics":
            if self.rule is None:
                raise ScenarioError(
                    "workload 'dynamics' requires rule, one of "
                    f"{DYNAMICS_RULES}"
                )
            if self.rule not in DYNAMICS_RULES:
                raise ScenarioError(
                    f"rule must be one of {DYNAMICS_RULES}, got {self.rule!r}"
                )
            if self.rule == "h-majority" and self.sample_size is None:
                raise ScenarioError("rule 'h-majority' requires sample_size")
            if self.rule != "h-majority" and self.sample_size is not None:
                raise ScenarioError(
                    f"rule {self.rule!r} does not take a sample_size "
                    "(use 'h-majority' for a custom h)"
                )
            if self.rule == "approximate-consensus" and not (
                0.0 < float(self.epsilon) < 1.0
            ):
                raise ScenarioError(
                    "rule 'approximate-consensus' reuses epsilon as the "
                    "agreement precision target, which must be in (0, 1); "
                    f"got {self.epsilon!r}"
                )
            # Protocol-only knobs are meaningless for the dynamics
            # workload; reject them instead of silently dropping them.
            if self.process != "push":
                raise ScenarioError(
                    "process only applies to the protocol workloads "
                    "('rumor', 'plurality'); the dynamics workload runs on "
                    "the noisy pull substrate"
                )
            if self.round_scale != 1.0:
                raise ScenarioError(
                    "round_scale only applies to the protocol workloads "
                    "('rumor', 'plurality')"
                )
            if (
                self.sampling_method != "without_replacement"
                or self.use_full_multiset
            ):
                raise ScenarioError(
                    "the Stage-2 sampling ablations (sampling_method, "
                    "use_full_multiset) only apply to the protocol "
                    "workloads ('rumor', 'plurality')"
                )
        else:
            if self.rule is not None:
                raise ScenarioError(
                    "rule only applies to workload 'dynamics' "
                    f"(got workload={self.workload!r})"
                )
            if self.sample_size is not None:
                raise ScenarioError(
                    "sample_size only applies to workload 'dynamics' with "
                    "rule 'h-majority'"
                )
            # Dynamics-only knobs are meaningless for the protocol
            # workloads, whose round budget is the schedule itself.
            if self.max_rounds != 300:
                raise ScenarioError(
                    "max_rounds only applies to workload 'dynamics' (the "
                    "protocol workloads run their schedule; use round_scale "
                    "to stretch it)"
                )
            if not self.stop_at_consensus:
                raise ScenarioError(
                    "stop_at_consensus only applies to workload 'dynamics'"
                )
        if self.workload == "rumor":
            if self.support_size is not None:
                raise ScenarioError(
                    "support_size only applies to workloads 'plurality' and "
                    "'dynamics' (the rumor workload always starts from one "
                    "source node)"
                )
            if self.shares is not None:
                raise ScenarioError(
                    "shares only applies to workloads 'plurality' and "
                    "'dynamics'"
                )
        if self.support_size is not None and not (
            1 <= self.support_size <= self.num_nodes
        ):
            raise ScenarioError(
                f"support_size must be in [1, {self.num_nodes}], "
                f"got {self.support_size}"
            )
        if self.shares is not None:
            if len(self.shares) != self.num_opinions:
                raise ScenarioError(
                    f"shares must have one entry per opinion "
                    f"({self.num_opinions}), got {len(self.shares)}"
                )
            total = float(sum(self.shares))
            if any(share < 0 for share in self.shares) or abs(total - 1.0) > 1e-6:
                raise ScenarioError(
                    "shares must be non-negative and sum to 1, "
                    f"got {self.shares}"
                )

    def _validate_engine_knobs(self) -> None:
        has_ablations = (
            self.sampling_method != "without_replacement"
            or self.use_full_multiset
        )
        if has_ablations and self.engine in ("counts", "auto", "analytic"):
            raise ScenarioError(
                "the Stage-2 sampling ablations (sampling_method, "
                "use_full_multiset) are only supported by engines "
                "('batched', 'sequential'); engine "
                f"{self.engine!r} cannot serve them"
            )
        if (
            self.engine in ("counts", "analytic")
            and self.workload == "dynamics"
            and self.rule == "h-majority"
            and self.sample_size is not None
            and not vote_table_is_tractable(self.sample_size, self.num_opinions)
        ):
            raise ScenarioError(
                f"sample_size {self.sample_size} with {self.num_opinions} "
                f"opinions exceeds the {self.engine} engine's closed-form "
                "maj() table budget; use one of the engines "
                "('batched', 'sequential')"
            )
        if self.engine == "analytic" and self.rule == "approximate-consensus":
            raise ScenarioError(
                "rule 'approximate-consensus' is phase-tagged and admits no "
                "counts-simplex analytic kernel; use one of the engines "
                "('sequential', 'batched', 'counts', 'auto')"
            )

    def _validate_topology_knobs(self) -> None:
        if self.topology == "complete":
            if self.degree is not None:
                raise ScenarioError(
                    "degree only applies to topology 'random_regular'"
                )
            return
        if self.workload == "dynamics":
            raise ScenarioError(
                "non-complete topologies are only supported by the protocol "
                "workloads ('rumor', 'plurality')"
            )
        if self.engine != "sequential":
            raise ScenarioError(
                f"topology {self.topology!r} requires engine='sequential' "
                "(the batched and counts reformulations assume the "
                "complete graph)"
            )
        if self.topology == "random_regular" and self.degree is None:
            raise ScenarioError("topology 'random_regular' requires degree")

    def _validate_fault_knobs(self) -> None:
        if self.faults is None:
            return
        try:
            self.faults.validate()
            self.faults.faulty_count(self.num_nodes)
        except ValueError as error:
            raise ScenarioError(str(error)) from error
        if self.workload not in _PROTOCOL_WORKLOADS:
            raise ScenarioError(
                "faults only apply to the protocol workloads "
                f"{_PROTOCOL_WORKLOADS} (got workload={self.workload!r}); "
                "for Byzantine-tolerant dynamics use "
                "rule='approximate-consensus', whose f parameter models "
                "faulty nodes natively"
            )
        if self.topology != "complete":
            raise ScenarioError(
                "faults require topology 'complete' (got "
                f"{self.topology!r}); the fault injection relies on the "
                "complete graph's balls-into-bins delivery reduction"
            )
        if self.engine == "analytic":
            raise ScenarioError(
                "faults are not supported by engine 'analytic' (no exact "
                "chain or mean-field law is implemented for faulted runs); "
                "use one of the sampling engines "
                "('sequential', 'batched', 'counts', 'auto')"
            )
        if self.process != "push":
            raise ScenarioError(
                "faults replace the delivery engine with the fault-aware "
                "balls-into-bins process, so process must stay 'push' "
                f"(got {self.process!r})"
            )
        if (
            self.faults.kind == "adaptive"
            and not self.faults.allow_degradation
            and self.engine in ("counts", "auto")
        ):
            raise ScenarioError(
                "the adaptive adversary has no counts-tier sufficient "
                f"statistics, and engine {self.engine!r} with "
                "allow_degradation=False forbids the counts->batched "
                "fallback; use engine='batched' (or 'sequential'), or set "
                "faults.allow_degradation=True"
            )

    # ------------------------------------------------------------------ #
    # Derived objects
    # ------------------------------------------------------------------ #

    def build_noise(self) -> NoiseMatrix:
        """The channel: the explicit matrix, or the canonical uniform one."""
        if self.noise is not None:
            return self.noise
        return uniform_noise_matrix(self.num_opinions, self.epsilon)

    def support_shares(self) -> Tuple[float, ...]:
        """Opinion shares within the support (explicit, or bias-derived)."""
        if self.shares is not None:
            return self.shares
        return tuple(
            make_biased_distribution(self.num_opinions, self.bias, 1)
        )

    def plurality_instance(self) -> PluralityInstance:
        """The Theorem-2 instance this scenario's support describes."""
        support = (
            self.support_size if self.support_size is not None else self.num_nodes
        )
        return PluralityInstance.from_support_fractions(
            self.num_nodes, support, self.support_shares()
        )

    def initial_state(self) -> PopulationState:
        """Materialize the workload's initial population, deterministically.

        The placement randomness (which node gets which opinion — irrelevant
        on the complete graph, load-bearing on sparse topologies) derives
        from ``seed`` alone, independently of the per-trial streams.
        """
        if self.workload == "rumor":
            return PopulationState.single_source(
                self.num_nodes, self.num_opinions, self.correct_opinion
            )
        if self.workload == "plurality":
            return self.plurality_instance().initial_state(
                random_state=self.seed
            )
        # dynamics: a fully opinionated bias-shaped population by default
        # (the same construction as the legacy CLI / workloads helper),
        # or a partially opinionated support when support_size/shares say so.
        if self.support_size is None and self.shares is None:
            distribution = make_biased_distribution(
                self.num_opinions, self.bias, 1
            )
            return PopulationState.from_fractions(
                self.num_nodes, distribution, random_state=self.seed
            )
        return self.plurality_instance().initial_state(random_state=self.seed)

    def initial_counts_state(self) -> CountsState:
        """The workload's initial condition as ``O(k)`` sufficient statistics.

        The counts tier never materializes per-node opinions, so its
        runners start from this instead of :meth:`initial_state` — which is
        what keeps ``simulate(engine="counts")`` usable at populations far
        beyond available memory.  The counts are *exactly* those of the
        per-node construction (same rounding, same slack placement), so a
        counts run from either entry state consumes identical draws.
        """
        if self.workload == "rumor":
            return CountsState.single_source(
                self.num_nodes, self.num_opinions, self.correct_opinion
            )
        if self.workload == "dynamics" and (
            self.support_size is None and self.shares is None
        ):
            # Mirror PopulationState.from_fractions' count derivation:
            # floor, then the largest-fraction opinion absorbs the slack.
            fractions = np.asarray(
                make_biased_distribution(self.num_opinions, self.bias, 1),
                dtype=float,
            )
            counts = np.floor(fractions * self.num_nodes).astype(np.int64)
            slack = int(round(fractions.sum() * self.num_nodes)) - int(
                counts.sum()
            )
            if slack > 0:
                counts[int(np.argmax(fractions))] += slack
            return CountsState(counts, self.num_nodes)
        instance = self.plurality_instance()
        counts = np.zeros(self.num_opinions, dtype=np.int64)
        for opinion, count in instance.opinion_counts.items():
            counts[opinion - 1] = count
        return CountsState(counts, self.num_nodes)

    def target_opinion(self) -> int:
        """The opinion every trial tracks (source's / plurality opinion)."""
        if self.workload == "rumor":
            return self.correct_opinion
        if self.support_size is None and self.shares is None and (
            self.workload == "dynamics"
        ):
            return 1  # make_biased_distribution majority_opinion
        return self.plurality_instance().plurality_opinion()

    # ------------------------------------------------------------------ #
    # Fault split
    # ------------------------------------------------------------------ #

    def faulty_count(self) -> int:
        """Head-count of faulty nodes (0 when no faults are declared)."""
        if self.faults is None:
            return 0
        return self.faults.faulty_count(self.num_nodes)

    def honest_nodes(self) -> int:
        """Number of honest nodes ``n_h = n - m``."""
        return self.num_nodes - self.faulty_count()

    def fault_split(self) -> Tuple[CountsState, np.ndarray]:
        """Initial honest state and the frozen faulty opinion histogram.

        Deterministic (largest-remainder proportional over the full
        occupancy vector, undecided pool included); the rumor source is
        always honest.  The honest part comes back as a
        :class:`CountsState` over ``n_h`` nodes — the per-node runners
        materialize opinions from it with the placement seed.
        """
        if self.faults is None:
            raise ScenarioError("fault_split() requires a faults model")
        full = self.initial_counts_state()
        num_faulty = self.faulty_count()
        protected = self.correct_opinion if self.workload == "rumor" else None
        honest_counts, faulty_histogram = split_faulty_population(
            full.counts, self.num_nodes, num_faulty, protected
        )
        honest = CountsState(honest_counts, self.num_nodes - num_faulty)
        return honest, faulty_histogram

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """The scenario as plain JSON-serializable data (exact round trip)."""
        document: Dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "noise":
                value = (
                    None
                    if value is None
                    else {
                        "name": value.name,
                        "probabilities": value.matrix.tolist(),
                    }
                )
            elif spec.name == "shares" and value is not None:
                value = [float(share) for share in value]
            elif spec.name == "faults" and value is not None:
                value = value.to_dict()
            document[spec.name] = value
        return document

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output."""
        if not isinstance(document, Mapping):
            raise TypeError(
                f"document must be a mapping, got {type(document).__name__}"
            )
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(document) - known)
        if unknown:
            raise ScenarioError(
                f"unknown scenario fields: {unknown}; known fields: "
                f"{sorted(known)}"
            )
        values = dict(document)
        noise = values.get("noise")
        if noise is not None and not isinstance(noise, NoiseMatrix):
            values["noise"] = NoiseMatrix(
                noise["probabilities"], name=noise.get("name")
            )
        faults = values.get("faults")
        if faults is not None and not isinstance(faults, FaultModel):
            try:
                values["faults"] = FaultModel.from_dict(faults)
            except ValueError as error:
                raise ScenarioError(str(error)) from error
        return cls(**values)
