"""``simulate(Scenario(...)) -> SimulationResult`` — the one entry point.

The facade resolves the scenario's engine policy to a concrete tier, looks
up the ``(workload, engine)`` runner in the
:data:`~repro.sim.engines.ENGINE_REGISTRY`, executes it, and stamps the
result with provenance (resolved engine, seed, facade code version, wall
time, the scenario itself).

Every runner reproduces the exact randomness discipline of the legacy entry
point it supersedes — the protocol classes and the dynamics engines are
constructed with the same arguments and consume the same draws — so under a
fixed seed ``simulate()`` is *bitwise identical* to the corresponding
legacy path (the equivalence test-suite pins this per workload × engine).
"""

from __future__ import annotations

import hashlib
import inspect
import time
from typing import Optional, Tuple

from repro.core.analytic import (
    AnalyticProtocol,
    MeanFieldProtocol,
    exact_protocol_is_tractable,
)
from repro.core.protocol import (
    CountsProtocol,
    EnsembleProtocol,
    TwoStageProtocol,
)
from repro.core.state import PopulationState
from repro.dynamics.analytic import (
    ExactDynamicsChain,
    MeanFieldDynamics,
    exact_dynamics_is_tractable,
)
from repro.faults import (
    FaultedCountsDeliveryModel,
    FaultedDeliveryEngine,
    FaultedPhaseSampler,
)
from repro.network.pull_model import vote_law_cache_info
from repro.network.topology import GraphPushModel, standard_topology
from repro.noise.matrix import NoiseMatrix
from repro.sim.engines import ENGINE_REGISTRY, build_dynamics
from repro.sim.result import SimulationResult
from repro.sim.scenario import Scenario
from repro.utils.rng import RandomState, as_trial_generators, spawn_generators

__all__ = ["simulate", "sim_code_version"]

_code_version: Optional[str] = None


def sim_code_version() -> str:
    """A short fingerprint of the facade's code, recorded in provenance.

    Hashes the sim layer's own modules (scenario, engines, result, facade);
    the engine tiers underneath are covered by the equivalence and
    engine-agreement test-suites, exactly like the orchestrator's
    experiment fingerprint.
    """
    global _code_version
    if _code_version is None:
        from repro.analytic import simplex as simplex_module
        from repro.analytic import verify as verify_module
        from repro.core import analytic as core_analytic_module
        from repro.dynamics import analytic as dynamics_analytic_module
        from repro.faults import delivery as faults_delivery_module
        from repro.faults import injection as faults_injection_module
        from repro.faults import model as faults_model_module
        from repro.sim import engines as engines_module
        from repro.sim import result as result_module
        from repro.sim import scenario as scenario_module
        from repro.sim import sweep as sweep_module
        import repro.sim.facade as facade_module

        digest = hashlib.sha256()
        for module in (
            scenario_module, engines_module, result_module, facade_module,
            sweep_module,
            simplex_module, verify_module,
            dynamics_analytic_module, core_analytic_module,
            faults_model_module, faults_injection_module,
            faults_delivery_module,
        ):
            try:
                digest.update(inspect.getsource(module).encode())
            except (OSError, TypeError):  # pragma: no cover - frozen builds
                pass
        _code_version = digest.hexdigest()[:16]
    return _code_version


def _exactly_tractable(scenario: Scenario) -> bool:
    """Whether the analytic tier can serve ``scenario`` *exactly*.

    True when the full count-simplex Markov chain fits the analytic state
    budget (and, for the protocol workloads, every Stage-2 vote table is
    closed-form) — the regime where ``auto`` should prefer the exact
    answer over any sampled one.
    """
    if scenario.workload == "dynamics":
        return exact_dynamics_is_tractable(
            scenario.rule,
            scenario.num_nodes,
            scenario.num_opinions,
            sample_size=scenario.sample_size,
        )
    opinionated = int(scenario.initial_counts_state().counts.sum())
    return exact_protocol_is_tractable(
        scenario.num_nodes,
        scenario.num_opinions,
        scenario.epsilon,
        initial_opinionated=opinionated,
        round_scale=scenario.round_scale,
    )


def _degrade_for_faults(scenario: Scenario, engine: str) -> Tuple[str, Optional[str]]:
    """Swap the counts tier out when the adversary defeats its statistics.

    The adaptive plurality-targeting adversary conditions on per-node
    information the counts reduction has discarded, so a counts resolution
    gracefully degrades to the batched tier (``allow_degradation=False``
    was already rejected at scenario validation).  Returns the possibly
    demoted engine and a human-readable reason for provenance.
    """
    if (
        scenario.faults is not None
        and scenario.faults.kind == "adaptive"
        and engine == "counts"
    ):
        return "batched", (
            "adaptive adversary admits no counts-tier sufficient "
            "statistics; degraded counts -> batched"
        )
    return engine, None


def _resolve_engine(scenario: Scenario) -> Tuple[str, Optional[str]]:
    """The concrete tier for the scenario's engine policy, plus the
    degradation reason (``None`` when the policy was served as asked).

    Delegates to :func:`repro.experiments.runner.resolve_trial_engine` (the
    single owner of the ``auto`` threshold semantics, including the
    process-wide default installed by ``set_default_counts_threshold``).
    Imported lazily: the runner imports the sim engine registry, so a
    module-level import would be circular.

    ``auto`` prefers the analytic tier whenever the scenario is exactly
    tractable (tiny ``n * k``): the exact chain answers in one kernel
    evolution with zero sampling noise, which no trial count can beat.
    Faulted scenarios never resolve analytic — no exact chain or
    mean-field law covers them.
    """
    if scenario.engine != "auto":
        return _degrade_for_faults(scenario, scenario.engine)
    from repro.experiments.runner import resolve_trial_engine

    engine = resolve_trial_engine(
        "auto",
        scenario.num_nodes,
        scenario.counts_threshold,
        allow_analytic=scenario.faults is None and _exactly_tractable(scenario),
    )
    if (
        engine == "counts"
        and scenario.rule == "h-majority"
        and scenario.sample_size is not None
    ):
        from repro.network.pull_model import vote_table_is_tractable

        # The counts h-majority tier needs a tractable closed-form maj()
        # table; 'auto' degrades to the batched tier instead of failing
        # (an explicit engine='counts' request raises at validation).
        if not vote_table_is_tractable(
            scenario.sample_size, scenario.num_opinions
        ):
            return "batched", (
                f"h-majority sample_size {scenario.sample_size} with "
                f"{scenario.num_opinions} opinions exceeds the closed-form "
                "maj() table budget; degraded counts -> batched"
            )
    return _degrade_for_faults(scenario, engine)


def simulate(scenario: Scenario) -> SimulationResult:
    """Execute ``scenario`` on the engine tier its policy resolves to.

    The single public entry point of the simulation layer: one declarative
    :class:`~repro.sim.scenario.Scenario` in, one
    :class:`~repro.sim.result.SimulationResult` out, for every workload
    (rumor / plurality / dynamics) and every engine tier (sequential /
    batched / counts).  Provenance on the result records the resolved
    engine, the seed, the facade code version, the wall time and the full
    scenario dictionary, so any stored result is self-describing.
    """
    scenario.validate()
    engine, degraded_reason = _resolve_engine(scenario)
    noise = scenario.build_noise()
    runner = ENGINE_REGISTRY.get(scenario.workload, engine)
    cache_before = vote_law_cache_info() if engine == "counts" else None
    started = time.perf_counter()
    result = runner(scenario, noise, engine)
    elapsed = time.perf_counter() - started
    result.provenance = {
        "workload": scenario.workload,
        "engine": engine,
        "engine_policy": scenario.engine,
        "seed": scenario.seed,
        "num_trials": scenario.num_trials,
        "code_version": sim_code_version(),
        "wall_time_seconds": round(elapsed, 6),
        "scenario": scenario.to_dict(),
    }
    if degraded_reason is not None:
        result.provenance["engine_degraded_reason"] = degraded_reason
    if cache_before is not None:
        result.provenance["vote_law_cache"] = _cache_delta(cache_before)
    return result


def _cache_delta(before: dict) -> dict:
    """This run's ``maj()``-cache activity (counter deltas + end sizes).

    Hit/miss counters are reported as the difference across the run, so a
    stored provenance dictionary answers "did *this* simulation's phases
    share laws?" rather than mirroring process-lifetime totals; ``*_entries``
    gauges stay absolute.
    """
    after = vote_law_cache_info()
    return {
        key: value - (0 if key.endswith("_entries") else before[key])
        for key, value in after.items()
    }


# --------------------------------------------------------------------- #
# Protocol workloads (rumor & plurality share the two-stage machinery)
# --------------------------------------------------------------------- #


def _build_graph_engine(
    scenario: Scenario, noise: NoiseMatrix, random_state: RandomState
) -> GraphPushModel:
    graph = standard_topology(
        scenario.topology,
        scenario.num_nodes,
        random_state=scenario.seed,
        **({"degree": scenario.degree} if scenario.degree is not None else {}),
    )
    return GraphPushModel(graph, noise, random_state=random_state)


def _fault_sampler(scenario: Scenario) -> FaultedPhaseSampler:
    """A fresh phase sampler for one protocol run (owns the round counter)."""
    _, faulty_histogram = scenario.fault_split()
    return FaultedPhaseSampler(
        scenario.faults,
        scenario.faulty_count(),
        faulty_histogram,
        scenario.num_opinions,
    )


def _honest_initial_state(scenario: Scenario) -> PopulationState:
    """The per-node initial state of the honest ``n_h`` sub-population.

    The rumor source stays node 0 of the honest population; plurality
    supports materialize from the deterministic fault split with the same
    placement-seed discipline as :meth:`Scenario.initial_state`.
    """
    honest, _ = scenario.fault_split()
    if scenario.workload == "rumor":
        return PopulationState.single_source(
            honest.num_nodes, scenario.num_opinions, scenario.correct_opinion
        )
    opinion_counts = {
        opinion + 1: int(count)
        for opinion, count in enumerate(honest.counts)
        if count
    }
    return PopulationState.from_counts(
        honest.num_nodes,
        opinion_counts,
        scenario.num_opinions,
        random_state=scenario.seed,
    )


@ENGINE_REGISTRY.register("rumor", "sequential")
@ENGINE_REGISTRY.register("plurality", "sequential")
def _protocol_sequential(
    scenario: Scenario, noise: NoiseMatrix, engine: str
) -> SimulationResult:
    """The reference loop: one :class:`TwoStageProtocol` run per trial.

    Trial ``r`` consumes randomness from its own spawned child generator —
    the same discipline (and hence the same draws) as the legacy
    ``protocol_trial_outcomes(..., trial_engine="sequential")`` path.

    Faulted scenarios track only the honest ``n_h`` nodes and route every
    phase through a per-trial :class:`FaultedDeliveryEngine` (fresh crash
    counter per trial) over the full ``n`` bins.
    """
    faulted = scenario.faults is not None
    initial_state = (
        _honest_initial_state(scenario) if faulted else scenario.initial_state()
    )
    num_nodes = initial_state.num_nodes
    target = scenario.target_opinion()
    results = []
    for generator in spawn_generators(scenario.num_trials, scenario.seed):
        if faulted:
            delivery = FaultedDeliveryEngine(
                num_nodes,
                scenario.num_nodes,
                noise,
                _fault_sampler(scenario),
                random_state=generator,
            )
        elif scenario.topology != "complete":
            delivery = _build_graph_engine(scenario, noise, generator)
        else:
            delivery = None
        protocol = TwoStageProtocol(
            num_nodes,
            noise,
            epsilon=scenario.epsilon,
            process=scenario.process,
            engine=delivery,
            random_state=generator,
            round_scale=scenario.round_scale,
            sampling_method=scenario.sampling_method,
            use_full_multiset=scenario.use_full_multiset,
        )
        results.append(protocol.run(initial_state, target_opinion=target))
    return SimulationResult.from_protocol_results(
        results, workload=scenario.workload, engine=engine
    )


@ENGINE_REGISTRY.register("rumor", "batched")
@ENGINE_REGISTRY.register("plurality", "batched")
def _protocol_batched(
    scenario: Scenario, noise: NoiseMatrix, engine: str
) -> SimulationResult:
    """The vectorized ``(R, n)`` tier: one :class:`EnsembleProtocol` batch.

    Faulted scenarios share one :class:`FaultedDeliveryEngine` across the
    batch — the phase schedule (and hence the crash-round clock) is common
    to every trial, while each trial's ball draws stay on its own stream.
    """
    faulted = scenario.faults is not None
    initial_state = (
        _honest_initial_state(scenario) if faulted else scenario.initial_state()
    )
    delivery = (
        FaultedDeliveryEngine(
            initial_state.num_nodes,
            scenario.num_nodes,
            noise,
            _fault_sampler(scenario),
        )
        if faulted
        else None
    )
    protocol = EnsembleProtocol(
        initial_state.num_nodes,
        noise,
        epsilon=scenario.epsilon,
        process=scenario.process,
        engine=delivery,
        random_state=scenario.seed,
        round_scale=scenario.round_scale,
        sampling_method=scenario.sampling_method,
        use_full_multiset=scenario.use_full_multiset,
    )
    result = protocol.run(
        initial_state,
        scenario.num_trials,
        target_opinion=scenario.target_opinion(),
    )
    return SimulationResult.from_ensemble_result(
        result, workload=scenario.workload, engine=engine
    )


@ENGINE_REGISTRY.register("rumor", "counts")
@ENGINE_REGISTRY.register("plurality", "counts")
def _protocol_counts(
    scenario: Scenario, noise: NoiseMatrix, engine: str
) -> SimulationResult:
    """The ``(R, k)`` sufficient-statistics tier: :class:`CountsProtocol`.

    Faulted scenarios keep honest-only counts as state while the delivery
    model spans the full ``n`` bins (so the Poissonized rate ``B / n``
    counts faulty balls and faulty mailboxes alike); only oblivious
    adversaries reach this tier.
    """
    faulted = scenario.faults is not None
    if faulted:
        initial_counts, _ = scenario.fault_split()
        delivery = FaultedCountsDeliveryModel(
            scenario.num_nodes, noise, _fault_sampler(scenario)
        )
    else:
        initial_counts = scenario.initial_counts_state()
        delivery = None
    protocol = CountsProtocol(
        initial_counts.num_nodes,
        noise,
        epsilon=scenario.epsilon,
        random_state=scenario.seed,
        round_scale=scenario.round_scale,
        delivery=delivery,
    )
    # Counts-native entry state: same opinion counts as the per-node
    # construction, but O(k) — n never gets an array axis on this tier.
    result = protocol.run(
        initial_counts,
        scenario.num_trials,
        target_opinion=scenario.target_opinion(),
    )
    return SimulationResult.from_ensemble_result(
        result, workload=scenario.workload, engine=engine
    )


# --------------------------------------------------------------------- #
# Dynamics workload
# --------------------------------------------------------------------- #


def _dynamics_epsilon(scenario: Scenario) -> Optional[float]:
    """The ``epsilon`` to forward to :func:`build_dynamics`.

    Only the approximate-consensus rule takes a precision target (the
    scenario's ``epsilon`` doubles as it); every other rule must see
    ``None`` or the factory rejects the argument.
    """
    if scenario.rule == "approximate-consensus":
        return scenario.epsilon
    return None


@ENGINE_REGISTRY.register("dynamics", "batched")
@ENGINE_REGISTRY.register("dynamics", "counts")
def _dynamics_ensemble(
    scenario: Scenario, noise: NoiseMatrix, engine: str
) -> SimulationResult:
    """The batched / counts dynamics tiers via :func:`build_dynamics`."""
    initial_state = (
        scenario.initial_counts_state()
        if engine == "counts"
        else scenario.initial_state()
    )
    dynamic = build_dynamics(
        engine,
        scenario.rule,
        scenario.num_nodes,
        noise,
        scenario.seed,
        sample_size=scenario.sample_size,
        epsilon=_dynamics_epsilon(scenario),
    )
    result = dynamic.run(
        initial_state,
        scenario.max_rounds,
        scenario.num_trials,
        target_opinion=scenario.target_opinion(),
        stop_at_consensus=scenario.stop_at_consensus,
        record_history=scenario.record_trajectories,
    )
    return SimulationResult.from_ensemble_dynamics_result(result, engine=engine)


@ENGINE_REGISTRY.register("rumor", "analytic")
@ENGINE_REGISTRY.register("plurality", "analytic")
def _protocol_analytic(
    scenario: Scenario, noise: NoiseMatrix, engine: str
) -> SimulationResult:
    """The sampling-free protocol tier: exact chain or mean-field ODE.

    Exactly tractable scenarios evolve the full count-state distribution
    through both stages (:class:`AnalyticProtocol`); everything else
    integrates the mean-field phase recursion with a Gaussian-diffusion
    correction (:class:`MeanFieldProtocol`).  Both consume the counts-native
    entry state — the analytic tier never materializes per-node opinions.
    """
    counts_state = scenario.initial_counts_state()
    protocol_cls = (
        AnalyticProtocol if _exactly_tractable(scenario) else MeanFieldProtocol
    )
    protocol = protocol_cls(
        scenario.num_nodes,
        noise,
        epsilon=scenario.epsilon,
        round_scale=scenario.round_scale,
    )
    result = protocol.run(
        counts_state.counts, target_opinion=scenario.target_opinion()
    )
    return SimulationResult.from_analytic_protocol(
        result, workload=scenario.workload, engine=engine
    )


@ENGINE_REGISTRY.register("dynamics", "analytic")
def _dynamics_analytic(
    scenario: Scenario, noise: NoiseMatrix, engine: str
) -> SimulationResult:
    """The sampling-free dynamics tier: exact chain or mean-field recursion."""
    counts_state = scenario.initial_counts_state()
    dynamics_cls = (
        ExactDynamicsChain
        if _exactly_tractable(scenario)
        else MeanFieldDynamics
    )
    dynamic = dynamics_cls(
        scenario.rule,
        scenario.num_nodes,
        noise,
        sample_size=scenario.sample_size,
    )
    result = dynamic.run(
        counts_state.counts,
        scenario.max_rounds,
        target_opinion=scenario.target_opinion(),
        stop_at_consensus=scenario.stop_at_consensus,
        record_history=scenario.record_trajectories,
    )
    return SimulationResult.from_analytic_dynamics(result, engine=engine)


@ENGINE_REGISTRY.register("dynamics", "sequential")
def _dynamics_sequential(
    scenario: Scenario, noise: NoiseMatrix, engine: str
) -> SimulationResult:
    """The sequential dynamics reference loop, one engine per trial."""
    initial_state = scenario.initial_state()
    target = scenario.target_opinion()
    results = []
    for generator in as_trial_generators(scenario.seed, scenario.num_trials):
        dynamic = build_dynamics(
            "sequential",
            scenario.rule,
            scenario.num_nodes,
            noise,
            generator,
            sample_size=scenario.sample_size,
            epsilon=_dynamics_epsilon(scenario),
        )
        results.append(
            dynamic.run(
                initial_state,
                scenario.max_rounds,
                target_opinion=target,
                stop_at_consensus=scenario.stop_at_consensus,
                record_history=scenario.record_trajectories,
            )
        )
    return SimulationResult.from_dynamics_results(results, engine=engine)
