"""``simulate(Scenario(...)) -> SimulationResult`` — the one entry point.

The facade resolves the scenario's engine policy to a concrete tier, looks
up the ``(workload, engine)`` runner in the
:data:`~repro.sim.engines.ENGINE_REGISTRY`, executes it, and stamps the
result with provenance (resolved engine, seed, facade code version, wall
time, the scenario itself).

Every runner reproduces the exact randomness discipline of the legacy entry
point it supersedes — the protocol classes and the dynamics engines are
constructed with the same arguments and consume the same draws — so under a
fixed seed ``simulate()`` is *bitwise identical* to the corresponding
legacy path (the equivalence test-suite pins this per workload × engine).
"""

from __future__ import annotations

import hashlib
import inspect
import time
from typing import Optional

from repro.core.analytic import (
    AnalyticProtocol,
    MeanFieldProtocol,
    exact_protocol_is_tractable,
)
from repro.core.protocol import (
    CountsProtocol,
    EnsembleProtocol,
    TwoStageProtocol,
)
from repro.dynamics.analytic import (
    ExactDynamicsChain,
    MeanFieldDynamics,
    exact_dynamics_is_tractable,
)
from repro.network.topology import GraphPushModel, standard_topology
from repro.noise.matrix import NoiseMatrix
from repro.sim.engines import ENGINE_REGISTRY, build_dynamics
from repro.sim.result import SimulationResult
from repro.sim.scenario import Scenario
from repro.utils.rng import as_trial_generators, spawn_generators

__all__ = ["simulate", "sim_code_version"]

_code_version: Optional[str] = None


def sim_code_version() -> str:
    """A short fingerprint of the facade's code, recorded in provenance.

    Hashes the sim layer's own modules (scenario, engines, result, facade);
    the engine tiers underneath are covered by the equivalence and
    engine-agreement test-suites, exactly like the orchestrator's
    experiment fingerprint.
    """
    global _code_version
    if _code_version is None:
        from repro.analytic import simplex as simplex_module
        from repro.analytic import verify as verify_module
        from repro.core import analytic as core_analytic_module
        from repro.dynamics import analytic as dynamics_analytic_module
        from repro.sim import engines as engines_module
        from repro.sim import result as result_module
        from repro.sim import scenario as scenario_module
        from repro.sim import sweep as sweep_module
        import repro.sim.facade as facade_module

        digest = hashlib.sha256()
        for module in (
            scenario_module, engines_module, result_module, facade_module,
            sweep_module,
            simplex_module, verify_module,
            dynamics_analytic_module, core_analytic_module,
        ):
            try:
                digest.update(inspect.getsource(module).encode())
            except (OSError, TypeError):  # pragma: no cover - frozen builds
                pass
        _code_version = digest.hexdigest()[:16]
    return _code_version


def _exactly_tractable(scenario: Scenario) -> bool:
    """Whether the analytic tier can serve ``scenario`` *exactly*.

    True when the full count-simplex Markov chain fits the analytic state
    budget (and, for the protocol workloads, every Stage-2 vote table is
    closed-form) — the regime where ``auto`` should prefer the exact
    answer over any sampled one.
    """
    if scenario.workload == "dynamics":
        return exact_dynamics_is_tractable(
            scenario.rule,
            scenario.num_nodes,
            scenario.num_opinions,
            sample_size=scenario.sample_size,
        )
    opinionated = int(scenario.initial_counts_state().counts.sum())
    return exact_protocol_is_tractable(
        scenario.num_nodes,
        scenario.num_opinions,
        scenario.epsilon,
        initial_opinionated=opinionated,
        round_scale=scenario.round_scale,
    )


def _resolve_engine(scenario: Scenario) -> str:
    """The concrete tier for the scenario's engine policy.

    Delegates to :func:`repro.experiments.runner.resolve_trial_engine` (the
    single owner of the ``auto`` threshold semantics, including the
    process-wide default installed by ``set_default_counts_threshold``).
    Imported lazily: the runner imports the sim engine registry, so a
    module-level import would be circular.

    ``auto`` prefers the analytic tier whenever the scenario is exactly
    tractable (tiny ``n * k``): the exact chain answers in one kernel
    evolution with zero sampling noise, which no trial count can beat.
    """
    if scenario.engine != "auto":
        return scenario.engine
    from repro.experiments.runner import resolve_trial_engine

    engine = resolve_trial_engine(
        "auto",
        scenario.num_nodes,
        scenario.counts_threshold,
        allow_analytic=_exactly_tractable(scenario),
    )
    if (
        engine == "counts"
        and scenario.rule == "h-majority"
        and scenario.sample_size is not None
    ):
        from repro.network.pull_model import vote_table_is_tractable

        # The counts h-majority tier needs a tractable closed-form maj()
        # table; 'auto' degrades to the batched tier instead of failing
        # (an explicit engine='counts' request raises at validation).
        if not vote_table_is_tractable(
            scenario.sample_size, scenario.num_opinions
        ):
            engine = "batched"
    return engine


def simulate(scenario: Scenario) -> SimulationResult:
    """Execute ``scenario`` on the engine tier its policy resolves to.

    The single public entry point of the simulation layer: one declarative
    :class:`~repro.sim.scenario.Scenario` in, one
    :class:`~repro.sim.result.SimulationResult` out, for every workload
    (rumor / plurality / dynamics) and every engine tier (sequential /
    batched / counts).  Provenance on the result records the resolved
    engine, the seed, the facade code version, the wall time and the full
    scenario dictionary, so any stored result is self-describing.
    """
    scenario.validate()
    engine = _resolve_engine(scenario)
    noise = scenario.build_noise()
    runner = ENGINE_REGISTRY.get(scenario.workload, engine)
    started = time.perf_counter()
    result = runner(scenario, noise, engine)
    elapsed = time.perf_counter() - started
    result.provenance = {
        "workload": scenario.workload,
        "engine": engine,
        "engine_policy": scenario.engine,
        "seed": scenario.seed,
        "num_trials": scenario.num_trials,
        "code_version": sim_code_version(),
        "wall_time_seconds": round(elapsed, 6),
        "scenario": scenario.to_dict(),
    }
    return result


# --------------------------------------------------------------------- #
# Protocol workloads (rumor & plurality share the two-stage machinery)
# --------------------------------------------------------------------- #


def _build_graph_engine(
    scenario: Scenario, noise: NoiseMatrix, random_state
) -> GraphPushModel:
    graph = standard_topology(
        scenario.topology,
        scenario.num_nodes,
        random_state=scenario.seed,
        **({"degree": scenario.degree} if scenario.degree is not None else {}),
    )
    return GraphPushModel(graph, noise, random_state=random_state)


@ENGINE_REGISTRY.register("rumor", "sequential")
@ENGINE_REGISTRY.register("plurality", "sequential")
def _protocol_sequential(
    scenario: Scenario, noise: NoiseMatrix, engine: str
) -> SimulationResult:
    """The reference loop: one :class:`TwoStageProtocol` run per trial.

    Trial ``r`` consumes randomness from its own spawned child generator —
    the same discipline (and hence the same draws) as the legacy
    ``protocol_trial_outcomes(..., trial_engine="sequential")`` path.
    """
    initial_state = scenario.initial_state()
    target = scenario.target_opinion()
    results = []
    for generator in spawn_generators(scenario.num_trials, scenario.seed):
        delivery = (
            _build_graph_engine(scenario, noise, generator)
            if scenario.topology != "complete"
            else None
        )
        protocol = TwoStageProtocol(
            scenario.num_nodes,
            noise,
            epsilon=scenario.epsilon,
            process=scenario.process,
            engine=delivery,
            random_state=generator,
            round_scale=scenario.round_scale,
            sampling_method=scenario.sampling_method,
            use_full_multiset=scenario.use_full_multiset,
        )
        results.append(protocol.run(initial_state, target_opinion=target))
    return SimulationResult.from_protocol_results(
        results, workload=scenario.workload, engine=engine
    )


@ENGINE_REGISTRY.register("rumor", "batched")
@ENGINE_REGISTRY.register("plurality", "batched")
def _protocol_batched(
    scenario: Scenario, noise: NoiseMatrix, engine: str
) -> SimulationResult:
    """The vectorized ``(R, n)`` tier: one :class:`EnsembleProtocol` batch."""
    protocol = EnsembleProtocol(
        scenario.num_nodes,
        noise,
        epsilon=scenario.epsilon,
        process=scenario.process,
        random_state=scenario.seed,
        round_scale=scenario.round_scale,
        sampling_method=scenario.sampling_method,
        use_full_multiset=scenario.use_full_multiset,
    )
    result = protocol.run(
        scenario.initial_state(),
        scenario.num_trials,
        target_opinion=scenario.target_opinion(),
    )
    return SimulationResult.from_ensemble_result(
        result, workload=scenario.workload, engine=engine
    )


@ENGINE_REGISTRY.register("rumor", "counts")
@ENGINE_REGISTRY.register("plurality", "counts")
def _protocol_counts(
    scenario: Scenario, noise: NoiseMatrix, engine: str
) -> SimulationResult:
    """The ``(R, k)`` sufficient-statistics tier: :class:`CountsProtocol`."""
    protocol = CountsProtocol(
        scenario.num_nodes,
        noise,
        epsilon=scenario.epsilon,
        random_state=scenario.seed,
        round_scale=scenario.round_scale,
    )
    # Counts-native entry state: same opinion counts as the per-node
    # construction, but O(k) — n never gets an array axis on this tier.
    result = protocol.run(
        scenario.initial_counts_state(),
        scenario.num_trials,
        target_opinion=scenario.target_opinion(),
    )
    return SimulationResult.from_ensemble_result(
        result, workload=scenario.workload, engine=engine
    )


# --------------------------------------------------------------------- #
# Dynamics workload
# --------------------------------------------------------------------- #


@ENGINE_REGISTRY.register("dynamics", "batched")
@ENGINE_REGISTRY.register("dynamics", "counts")
def _dynamics_ensemble(
    scenario: Scenario, noise: NoiseMatrix, engine: str
) -> SimulationResult:
    """The batched / counts dynamics tiers via :func:`build_dynamics`."""
    initial_state = (
        scenario.initial_counts_state()
        if engine == "counts"
        else scenario.initial_state()
    )
    dynamic = build_dynamics(
        engine,
        scenario.rule,
        scenario.num_nodes,
        noise,
        scenario.seed,
        sample_size=scenario.sample_size,
    )
    result = dynamic.run(
        initial_state,
        scenario.max_rounds,
        scenario.num_trials,
        target_opinion=scenario.target_opinion(),
        stop_at_consensus=scenario.stop_at_consensus,
        record_history=scenario.record_trajectories,
    )
    return SimulationResult.from_ensemble_dynamics_result(result, engine=engine)


@ENGINE_REGISTRY.register("rumor", "analytic")
@ENGINE_REGISTRY.register("plurality", "analytic")
def _protocol_analytic(
    scenario: Scenario, noise: NoiseMatrix, engine: str
) -> SimulationResult:
    """The sampling-free protocol tier: exact chain or mean-field ODE.

    Exactly tractable scenarios evolve the full count-state distribution
    through both stages (:class:`AnalyticProtocol`); everything else
    integrates the mean-field phase recursion with a Gaussian-diffusion
    correction (:class:`MeanFieldProtocol`).  Both consume the counts-native
    entry state — the analytic tier never materializes per-node opinions.
    """
    counts_state = scenario.initial_counts_state()
    protocol_cls = (
        AnalyticProtocol if _exactly_tractable(scenario) else MeanFieldProtocol
    )
    protocol = protocol_cls(
        scenario.num_nodes,
        noise,
        epsilon=scenario.epsilon,
        round_scale=scenario.round_scale,
    )
    result = protocol.run(
        counts_state.counts, target_opinion=scenario.target_opinion()
    )
    return SimulationResult.from_analytic_protocol(
        result, workload=scenario.workload, engine=engine
    )


@ENGINE_REGISTRY.register("dynamics", "analytic")
def _dynamics_analytic(
    scenario: Scenario, noise: NoiseMatrix, engine: str
) -> SimulationResult:
    """The sampling-free dynamics tier: exact chain or mean-field recursion."""
    counts_state = scenario.initial_counts_state()
    dynamics_cls = (
        ExactDynamicsChain
        if _exactly_tractable(scenario)
        else MeanFieldDynamics
    )
    dynamic = dynamics_cls(
        scenario.rule,
        scenario.num_nodes,
        noise,
        sample_size=scenario.sample_size,
    )
    result = dynamic.run(
        counts_state.counts,
        scenario.max_rounds,
        target_opinion=scenario.target_opinion(),
        stop_at_consensus=scenario.stop_at_consensus,
        record_history=scenario.record_trajectories,
    )
    return SimulationResult.from_analytic_dynamics(result, engine=engine)


@ENGINE_REGISTRY.register("dynamics", "sequential")
def _dynamics_sequential(
    scenario: Scenario, noise: NoiseMatrix, engine: str
) -> SimulationResult:
    """The sequential dynamics reference loop, one engine per trial."""
    initial_state = scenario.initial_state()
    target = scenario.target_opinion()
    results = []
    for generator in as_trial_generators(scenario.seed, scenario.num_trials):
        dynamic = build_dynamics(
            "sequential",
            scenario.rule,
            scenario.num_nodes,
            noise,
            generator,
            sample_size=scenario.sample_size,
        )
        results.append(
            dynamic.run(
                initial_state,
                scenario.max_rounds,
                target_opinion=target,
                stop_at_consensus=scenario.stop_at_consensus,
                record_history=scenario.record_trajectories,
            )
        )
    return SimulationResult.from_dynamics_results(results, engine=engine)
