"""The unified engine registry behind :func:`repro.sim.simulate`.

Two layers live here:

* :func:`build_dynamics` — the single factory for every baseline-dynamics
  engine, keyed ``(tier, rule)``.  It absorbs the three legacy registries
  (``make_dynamics`` / ``make_ensemble_dynamics`` / ``make_counts_dynamics``,
  now deprecation shims over this function) into one table, constructing
  exactly the same classes with exactly the same arguments, so seeded runs
  built through either path are bitwise identical.
* :class:`EngineRegistry` — the ``(workload, engine)`` dispatch table the
  facade consults: every supported pair maps to one runner function
  producing a :class:`~repro.sim.result.SimulationResult`.  The concrete
  entries are registered by :mod:`repro.sim.facade` at import time; future
  backends (sharded, async, remote) plug in new pairs without touching any
  call site.

The complete-graph delivery engines are built by
:func:`repro.network.delivery.make_delivery_engine` (re-exported here),
which absorbed the legacy :func:`repro.core.protocol.make_engine`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.dynamics import DYNAMICS_RULES
from repro.dynamics.base import (
    EnsembleCountsDynamics,
    EnsembleOpinionDynamics,
    OpinionDynamics,
)
from repro.dynamics.approximate_consensus import (
    ApproximateConsensusDynamics,
    EnsembleApproximateConsensusDynamics,
    EnsembleCountsApproximateConsensusDynamics,
)
from repro.dynamics.h_majority import (
    EnsembleCountsHMajorityDynamics,
    EnsembleCountsThreeMajorityDynamics,
    EnsembleHMajorityDynamics,
    EnsembleThreeMajorityDynamics,
    HMajorityDynamics,
    ThreeMajorityDynamics,
)
from repro.dynamics.median_rule import (
    EnsembleCountsMedianRuleDynamics,
    EnsembleMedianRuleDynamics,
    MedianRuleDynamics,
)
from repro.dynamics.undecided_state import (
    EnsembleCountsUndecidedStateDynamics,
    EnsembleUndecidedStateDynamics,
    UndecidedStateDynamics,
)
from repro.dynamics.voter import (
    EnsembleCountsVoterDynamics,
    EnsembleVoterDynamics,
    VoterDynamics,
)
from repro.network.delivery import DELIVERY_PROCESSES, make_delivery_engine
from repro.noise.matrix import NoiseMatrix
from repro.utils.rng import EnsembleRandomState

__all__ = [
    "ENGINE_TIERS",
    "DYNAMICS_RULES",
    "DELIVERY_PROCESSES",
    "EngineRegistry",
    "ENGINE_REGISTRY",
    "build_dynamics",
    "make_delivery_engine",
]

#: The concrete execution tiers every workload can be served on.  The
#: first three sample trajectories; ``analytic`` evolves the exact state
#: distribution (or its mean-field limit) and draws no randomness at all.
ENGINE_TIERS = ("sequential", "batched", "counts", "analytic")

#: The one dynamics-class table all three tiers share, keyed ``(tier, rule)``.
_DYNAMICS_CLASSES: Dict[Tuple[str, str], type] = {
    ("sequential", "voter"): VoterDynamics,
    ("sequential", "3-majority"): ThreeMajorityDynamics,
    ("sequential", "h-majority"): HMajorityDynamics,
    ("sequential", "undecided-state"): UndecidedStateDynamics,
    ("sequential", "median-rule"): MedianRuleDynamics,
    ("sequential", "approximate-consensus"): ApproximateConsensusDynamics,
    ("batched", "voter"): EnsembleVoterDynamics,
    ("batched", "3-majority"): EnsembleThreeMajorityDynamics,
    ("batched", "h-majority"): EnsembleHMajorityDynamics,
    ("batched", "undecided-state"): EnsembleUndecidedStateDynamics,
    ("batched", "median-rule"): EnsembleMedianRuleDynamics,
    ("batched", "approximate-consensus"): EnsembleApproximateConsensusDynamics,
    ("counts", "voter"): EnsembleCountsVoterDynamics,
    ("counts", "3-majority"): EnsembleCountsThreeMajorityDynamics,
    ("counts", "h-majority"): EnsembleCountsHMajorityDynamics,
    ("counts", "undecided-state"): EnsembleCountsUndecidedStateDynamics,
    ("counts", "median-rule"): EnsembleCountsMedianRuleDynamics,
    ("counts", "approximate-consensus"): (
        EnsembleCountsApproximateConsensusDynamics
    ),
}


def _validate_rule(rule: str, sample_size: Optional[int]) -> None:
    if rule not in DYNAMICS_RULES:
        raise ValueError(
            f"rule must be one of {DYNAMICS_RULES}, got {rule!r}"
        )
    if rule == "h-majority" and sample_size is None:
        raise ValueError("rule 'h-majority' requires sample_size")
    if rule != "h-majority" and sample_size is not None:
        raise ValueError(
            f"rule {rule!r} does not take a sample_size "
            "(use 'h-majority' for a custom h)"
        )


def build_dynamics(
    tier: str,
    rule: str,
    num_nodes: int,
    noise: NoiseMatrix,
    random_state: EnsembleRandomState = None,
    *,
    sample_size: Optional[int] = None,
    rng_mode: str = "per_trial",
    epsilon: Optional[float] = None,
) -> Union[
    OpinionDynamics, EnsembleOpinionDynamics, EnsembleCountsDynamics
]:
    """Instantiate a baseline-dynamics engine by ``(tier, rule)``.

    ``tier`` is one of :data:`ENGINE_TIERS` and ``rule`` one of
    :data:`DYNAMICS_RULES`; ``sample_size`` is required for (and only
    accepted by) ``"h-majority"``, and ``epsilon`` (the target agreement
    precision) is only accepted by ``"approximate-consensus"``.
    ``rng_mode`` applies to the batched and counts tiers only (the
    sequential classes take a single source).  The construction is
    identical to what the legacy per-tier factories produced, so seeded
    runs are bitwise reproducible across the migration.
    """
    if tier not in ENGINE_TIERS:
        raise ValueError(
            f"tier must be one of {ENGINE_TIERS}, got {tier!r}"
        )
    _validate_rule(rule, sample_size)
    if epsilon is not None and rule != "approximate-consensus":
        raise ValueError(
            f"rule {rule!r} does not take an epsilon "
            "(use 'approximate-consensus' for a precision target)"
        )
    extra = {}
    if rule == "approximate-consensus" and epsilon is not None:
        extra["epsilon"] = float(epsilon)
    dynamics_cls = _DYNAMICS_CLASSES[(tier, rule)]
    if tier == "sequential":
        if rule == "h-majority":
            return dynamics_cls(num_nodes, noise, sample_size, random_state)
        return dynamics_cls(num_nodes, noise, random_state, **extra)
    if rule == "h-majority":
        return dynamics_cls(
            num_nodes, noise, sample_size, random_state, rng_mode=rng_mode
        )
    return dynamics_cls(
        num_nodes, noise, random_state, rng_mode=rng_mode, **extra
    )


class EngineRegistry:
    """The ``(workload, engine)`` → runner dispatch table of the facade.

    A *runner* is a callable ``(scenario, noise, engine) ->
    SimulationResult`` executing the scenario on one concrete engine tier.
    :func:`repro.sim.facade.simulate` resolves the scenario's engine policy
    to a tier and looks the pair up here; registering a new pair is all a
    future backend needs to become addressable from every call site.
    """

    def __init__(self) -> None:
        self._runners: Dict[Tuple[str, str], Callable] = {}

    def register(
        self, workload: str, *engines: str
    ) -> Callable[[Callable], Callable]:
        """Decorator registering a runner for ``workload`` × ``engines``."""

        def decorator(runner: Callable) -> Callable:
            for engine in engines:
                if engine not in ENGINE_TIERS:
                    raise ValueError(
                        f"engine must be one of {ENGINE_TIERS}, got {engine!r}"
                    )
                self._runners[(workload, engine)] = runner
            return runner

        return decorator

    def get(self, workload: str, engine: str) -> Callable:
        """The runner for ``(workload, engine)``; ``ValueError`` if absent."""
        try:
            return self._runners[(workload, engine)]
        except KeyError:
            raise ValueError(
                f"no engine registered for workload {workload!r} on "
                f"engine {engine!r}; registered pairs: "
                f"{sorted(self._runners)}"
            ) from None

    def engines_for(self, workload: str) -> List[str]:
        """The engine tiers registered for ``workload``, in tier order."""
        return [
            tier
            for tier in ENGINE_TIERS
            if (workload, tier) in self._runners
        ]

    def pairs(self) -> List[Tuple[str, str]]:
        """Every registered ``(workload, engine)`` pair, sorted."""
        return sorted(self._runners)


#: The process-wide registry the facade populates and consults.
ENGINE_REGISTRY = EngineRegistry()
