"""The median rule ("stabilizing consensus with the power of two choices", [15]).

Opinions are interpreted as *ordered* values ``1 < 2 < … < k``.  In each
round every node observes the values of two uniformly random nodes and moves
to the median of the multiset {own value, first observation, second
observation}.  Doerr et al. [15] show this converges quickly to a value
between the 1/3- and 2/3-quantile of the initial values and tolerates
``O(sqrt(n))`` adversarial corruptions per round; under the plurality-
consensus reading used by the paper's related-work section it is a median
(not plurality) computation, which is exactly why it is an interesting
contrast in the baseline comparison.

Undecided nodes adopt the first opinion they observe and do not otherwise
participate in the median computation; observations pass through the noise
matrix like every other baseline.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core.state import EnsembleCountsState, EnsembleState, PopulationState
from repro.dynamics.base import (
    EnsembleCountsDynamics,
    EnsembleOpinionDynamics,
    OpinionDynamics,
)
from repro.utils.rng import EnsembleRandomState

__all__ = [
    "MedianRuleDynamics",
    "EnsembleMedianRuleDynamics",
    "EnsembleCountsMedianRuleDynamics",
]


def _median_rule_update(
    current: np.ndarray, first: np.ndarray, second: np.ndarray
) -> np.ndarray:
    """The median-of-three transition, shape-agnostic (``(n,)`` or ``(R, n)``)."""
    # Undecided nodes adopt the first opinion they see.
    undecided = current == 0
    adopted = np.where(first > 0, first, second)
    new_opinions = current.copy()
    new_opinions[undecided] = adopted[undecided]
    # Opinionated nodes with two valid observations take the median of the
    # three values; with one valid observation the median of a pair is
    # defined here as the own value (no move), matching the conservative
    # reading of the rule.
    both_valid = (first > 0) & (second > 0) & (current > 0)
    if np.any(both_valid):
        stacked = np.stack(
            [current[both_valid], first[both_valid], second[both_valid]]
        )
        new_opinions[both_valid] = np.median(stacked, axis=0).astype(np.int64)
    return new_opinions


class MedianRuleDynamics(OpinionDynamics):
    """Move to the median of own value and two noisy observations."""

    name = "median-rule"

    def step(self, state: PopulationState) -> None:
        """One round of the median-of-three update."""
        self._check_state(state)
        first = self.pull.observe_single(state.opinions)
        second = self.pull.observe_single(state.opinions)
        state.opinions[:] = _median_rule_update(state.opinions, first, second)


class EnsembleMedianRuleDynamics(EnsembleOpinionDynamics):
    """The median rule batched over ``R`` independent trials."""

    name = "median-rule"

    def step(
        self, state: EnsembleState, random_state: EnsembleRandomState
    ) -> None:
        """One round of the median-of-three rule over the whole batch."""
        first = self.pull.observe_single(state.opinions, random_state)
        second = self.pull.observe_single(state.opinions, random_state)
        state.opinions[:] = _median_rule_update(state.opinions, first, second)


@lru_cache(maxsize=None)
def _median_transition_tensor(num_opinions: int) -> np.ndarray:
    """One-hot transition tensor of the deterministic median-of-three rule.

    Entry ``(g, f * (k + 1) + s, v)`` is 1 iff a node with current value
    ``g`` (0 = undecided) that observed the ordered pair ``(f, s)`` ends the
    round with value ``v`` — the exact tabulation of
    :func:`_median_rule_update`, which lets the counts engine turn grouped
    pair-observation counts into new value counts with one ``einsum``.
    """
    width = num_opinions + 1
    tensor = np.zeros((width, width * width, width), dtype=np.int64)
    for own in range(width):
        for first in range(width):
            for second in range(width):
                if own == 0:
                    new = first if first > 0 else second
                elif first > 0 and second > 0:
                    new = int(np.median([own, first, second]))
                else:
                    new = own
                tensor[own, first * width + second, new] = 1
    tensor.setflags(write=False)
    return tensor


class EnsembleCountsMedianRuleDynamics(EnsembleCountsDynamics):
    """The median rule on sufficient statistics (counts engine).

    The rule needs the joint of a node's own value and *both* observations,
    so the grouped draw runs over ordered observation pairs — ``O(k^3)``
    work per trial per round, still independent of ``n``.  The
    median-of-three map itself is deterministic, so the pair counts are
    pushed through a precomputed one-hot transition tensor.
    """

    name = "median-rule"

    def step(
        self, state: EnsembleCountsState, random_state: EnsembleRandomState
    ) -> None:
        """One round of the median-of-three rule, exactly in distribution."""
        pairs = self.pull.observe_pair_grouped(state.counts, random_state)
        transition = _median_transition_tensor(state.num_opinions)
        new_values = np.einsum("rgp,gpv->rv", pairs, transition)
        state.counts[:] = new_values[:, 1:]
