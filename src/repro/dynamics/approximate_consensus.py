"""Approximate consensus: midpoint-of-extremes over ``n - f`` accepted values.

The sixth baseline rule, adapted from the classical Byzantine approximate
agreement protocol (Dolev et al.): each node gathers the values of the
``A = n - f`` nodes it accepts (the non-faulty quorum for the standard
resilience bound ``f = floor((n - 1) / 3)``, so ``n > 2f`` always holds),
discards nothing further, and moves to the midpoint of the extremes of the
accepted multiset.  Repeating for

``p_end = ceil(log(eps / K) / log(f / (n - f)))``

phases (``K = max(1, k - 1)`` the initial value spread) shrinks the value
interval below ``eps``; after ``p_end`` phases the rule terminates and
:meth:`step` becomes a no-op.

The adaptation to this repository's noisy pull substrate: opinions
``1..k`` are the value space, and a node's accepted multiset is modeled as
``A`` i.i.d. draws from the *conditioned noisy observation law* — the
noise-perturbed opinion shares renormalized over opinionated targets (an
accepted value is always an opinion, never "undecided").  The midpoint
``(min + max + 1) // 2`` is rounded half-up to stay on the integer opinion
grid.  Because the extremes of ``A`` i.i.d. draws have the closed-form law

``P(min = a, max = b) = F(a, b) - F(a+1, b) - F(a, b-1) + F(a+1, b-1)``,
``F(a, b) = (sum of the conditioned pmf over [a, b]) ** A``,

every node's per-round update law is an ``O(k^2)`` computation shared
verbatim by all three tiers: the sequential engine draws ``n`` values from
it, the batched engine draws per trial row, and the counts engine draws one
``multinomial(n, law)`` per trial — identical in distribution by
construction, so cross-tier agreement is exact, not approximate.

Every node (undecided ones included) resamples each phase, so the
population is fully opinionated after one step; a trial whose population
holds *no* opinion carries no information and is left unchanged.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.core.state import EnsembleCountsState, EnsembleState, PopulationState
from repro.dynamics.base import (
    EnsembleCountsDynamics,
    EnsembleOpinionDynamics,
    OpinionDynamics,
)
from repro.noise.matrix import NoiseMatrix
from repro.utils.multiset import opinion_counts_matrix
from repro.utils.rng import (
    EnsembleRandomState,
    RandomState,
    as_generator,
    is_generator_sequence,
)

__all__ = [
    "ApproximateConsensusDynamics",
    "EnsembleApproximateConsensusDynamics",
    "EnsembleCountsApproximateConsensusDynamics",
    "byzantine_fault_tolerance",
    "interval_midpoint_law",
    "phase_budget",
]


def byzantine_fault_tolerance(num_nodes: int) -> int:
    """The standard resilience bound ``f = floor((n - 1) / 3)``.

    The largest ``f`` with ``n > 3f``, which in particular satisfies the
    ``n > 2f`` requirement of the approximate agreement protocol.
    """
    return (int(num_nodes) - 1) // 3


def phase_budget(num_nodes: int, num_opinions: int, epsilon: float) -> int:
    """Phases until the value interval provably shrinks below ``epsilon``.

    ``ceil(log(eps / K) / log(f / (n - f)))`` with ``K = max(1, k - 1)``
    the initial opinion spread; each phase contracts the interval by a
    factor ``f / (n - f) < 1/2``.  With ``f = 0`` one phase already yields
    exact agreement, so the budget floors at 1.
    """
    fault_tolerance = byzantine_fault_tolerance(num_nodes)
    if fault_tolerance == 0:
        return 1
    spread = max(1, int(num_opinions) - 1)
    contraction = fault_tolerance / (num_nodes - fault_tolerance)
    return max(1, math.ceil(math.log(epsilon / spread) / math.log(contraction)))


def _validate_epsilon(epsilon: float) -> float:
    epsilon = float(epsilon)
    if not 0.0 < epsilon < 1.0:
        raise ValueError(
            f"epsilon must be in (0, 1) for approximate consensus, "
            f"got {epsilon}"
        )
    return epsilon


def interval_midpoint_law(
    counts: np.ndarray,
    num_nodes: int,
    noise: NoiseMatrix,
    acceptance: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-trial law of one midpoint-of-extremes update, shape ``(R, k)``.

    ``counts`` is the ``(R, k)`` opinion-count matrix.  Row ``r`` of the
    result is the pmf of a single node's next opinion in trial ``r``: the
    midpoint ``(a + b + 1) // 2`` of the extremes ``(a, b)`` of
    ``acceptance`` i.i.d. draws from the conditioned noisy observation law
    of that trial.  The second return is the ``(R,)`` mask of rows that
    carry any opinion mass; rows outside it have an undefined (all-zero)
    law and must be left unchanged by the caller.
    """
    counts = np.asarray(counts, dtype=np.int64)
    num_trials, num_opinions = counts.shape
    shares = counts / int(num_nodes)
    noisy = shares @ noise.matrix
    totals = noisy.sum(axis=1)
    has_mass = totals > 0.0
    conditioned = np.zeros_like(noisy)
    np.divide(noisy, totals[:, np.newaxis], out=conditioned,
              where=has_mass[:, np.newaxis])
    # Prefix sums with a leading zero column: S(a, b) = prefix[b] -
    # prefix[a - 1] is the conditioned mass of opinions a..b (1-based).
    prefix = np.concatenate(
        [np.zeros((num_trials, 1)), np.cumsum(conditioned, axis=1)], axis=1
    )

    def covered(low: int, high: int) -> np.ndarray:
        # F(a, b): probability that all `acceptance` draws land in [a, b].
        if low > high:
            return np.zeros(num_trials)
        mass = np.clip(prefix[:, high] - prefix[:, low - 1], 0.0, 1.0)
        return mass ** acceptance

    law = np.zeros((num_trials, num_opinions))
    for low in range(1, num_opinions + 1):
        for high in range(low, num_opinions + 1):
            probability = (
                covered(low, high)
                - covered(low + 1, high)
                - covered(low, high - 1)
                + covered(low + 1, high - 1)
            )
            midpoint = (low + high + 1) // 2
            law[:, midpoint - 1] += np.clip(probability, 0.0, None)
    norms = law.sum(axis=1)
    np.divide(law, norms[:, np.newaxis], out=law,
              where=(norms > 0.0)[:, np.newaxis])
    return law, has_mass & (norms > 0.0)


def _sample_opinions(
    law_row: np.ndarray, num_nodes: int, generator: np.random.Generator
) -> np.ndarray:
    """Draw ``num_nodes`` opinions (1-based) i.i.d. from ``law_row``."""
    cdf = np.cumsum(law_row)
    uniforms = generator.random(num_nodes)
    indices = np.searchsorted(cdf, uniforms, side="right")
    return np.minimum(indices, law_row.shape[0] - 1).astype(np.int64) + 1


class ApproximateConsensusDynamics(OpinionDynamics):
    """Sequential-tier approximate consensus (midpoint of extremes)."""

    name = "approximate-consensus"

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        random_state: RandomState = None,
        *,
        epsilon: float = 0.1,
    ) -> None:
        super().__init__(num_nodes, noise, random_state)
        self.epsilon = _validate_epsilon(epsilon)
        self.fault_tolerance = byzantine_fault_tolerance(self.num_nodes)
        self.acceptance = self.num_nodes - self.fault_tolerance
        self.phase_budget = phase_budget(
            self.num_nodes, self.num_opinions, self.epsilon
        )
        self._phases_done = 0

    def run(self, *args, **kwargs):
        self._phases_done = 0
        return super().run(*args, **kwargs)

    def step(self, state: PopulationState) -> None:
        """One phase: every node jumps to its accepted-interval midpoint."""
        self._check_state(state)
        if self._phases_done >= self.phase_budget:
            return
        self._phases_done += 1
        counts = state.opinion_counts()[np.newaxis, :]
        law, has_mass = interval_midpoint_law(
            counts, self.num_nodes, self.noise, self.acceptance
        )
        if has_mass[0]:
            state.opinions[:] = _sample_opinions(
                law[0], self.num_nodes, self._rng
            )


class EnsembleApproximateConsensusDynamics(EnsembleOpinionDynamics):
    """Approximate consensus batched over ``R`` independent trials."""

    name = "approximate-consensus"

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        random_state: EnsembleRandomState = None,
        *,
        rng_mode: str = "per_trial",
        epsilon: float = 0.1,
    ) -> None:
        super().__init__(num_nodes, noise, random_state, rng_mode=rng_mode)
        self.epsilon = _validate_epsilon(epsilon)
        self.fault_tolerance = byzantine_fault_tolerance(self.num_nodes)
        self.acceptance = self.num_nodes - self.fault_tolerance
        self.phase_budget = phase_budget(
            self.num_nodes, self.num_opinions, self.epsilon
        )
        self._phases_done = 0

    def run(self, *args, **kwargs):
        self._phases_done = 0
        return super().run(*args, **kwargs)

    def step(
        self, state: EnsembleState, random_state: EnsembleRandomState
    ) -> None:
        """One phase over every trial of the batch."""
        if self._phases_done >= self.phase_budget:
            return
        self._phases_done += 1
        counts = opinion_counts_matrix(
            state.opinions, self.num_opinions, validate=False
        )
        law, has_mass = interval_midpoint_law(
            counts, self.num_nodes, self.noise, self.acceptance
        )
        per_trial = is_generator_sequence(random_state)
        shared = None if per_trial else as_generator(random_state)
        for row in range(state.num_trials):
            if not has_mass[row]:
                continue
            generator = random_state[row] if per_trial else shared
            state.opinions[row] = _sample_opinions(
                law[row], self.num_nodes, generator
            )


class EnsembleCountsApproximateConsensusDynamics(EnsembleCountsDynamics):
    """Approximate consensus on ``(R, k)`` sufficient statistics.

    All ``n`` nodes of a trial resample i.i.d. from the same midpoint law,
    so the new counts are exactly one ``multinomial(n, law)`` draw — no
    per-group decomposition is needed (a node's own opinion does not enter
    the update).
    """

    name = "approximate-consensus"

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        random_state: EnsembleRandomState = None,
        *,
        rng_mode: str = "per_trial",
        epsilon: float = 0.1,
    ) -> None:
        super().__init__(num_nodes, noise, random_state, rng_mode=rng_mode)
        self.epsilon = _validate_epsilon(epsilon)
        self.fault_tolerance = byzantine_fault_tolerance(self.num_nodes)
        self.acceptance = self.num_nodes - self.fault_tolerance
        self.phase_budget = phase_budget(
            self.num_nodes, self.num_opinions, self.epsilon
        )
        self._phases_done = 0

    def _begin(self, *args, **kwargs):
        self._phases_done = 0
        return super()._begin(*args, **kwargs)

    def step(
        self, state: EnsembleCountsState, random_state: EnsembleRandomState
    ) -> None:
        """One phase, exactly in distribution, O(k^2) per trial."""
        if self._phases_done >= self.phase_budget:
            return
        self._phases_done += 1
        law, has_mass = interval_midpoint_law(
            state.counts, self.num_nodes, self.noise, self.acceptance
        )
        per_trial = is_generator_sequence(random_state)
        shared = None if per_trial else as_generator(random_state)
        for row in range(state.num_trials):
            if not has_mass[row]:
                continue
            generator = random_state[row] if per_trial else shared
            state.counts[row] = generator.multinomial(
                self.num_nodes, law[row]
            )
