"""The h-majority dynamics (and its best-known special case, 3-majority).

In each round every node samples the opinions of ``h`` nodes chosen uniformly
at random (with replacement) and adopts the most frequent opinion among the
observations, breaking ties uniformly at random.  With ``h = 3`` this is the
3-majority dynamics analyzed in [9] (and shown there to solve plurality
consensus quickly when the initial bias is large enough); general ``h`` is
studied in [13, 1].

Here every observation passes through the noise matrix, so the dynamics can
be compared head-to-head against the paper's protocol on the same noisy
substrate (experiment E12).  Undecided nodes participate as observers but are
transparent as observation targets (observing an undecided node yields no
opinion); a node that observes no opinion keeps its current one.
"""

from __future__ import annotations

from repro.core.state import EnsembleState, PopulationState
from repro.dynamics.base import EnsembleOpinionDynamics, OpinionDynamics
from repro.noise.matrix import NoiseMatrix
from repro.utils.rng import EnsembleRandomState, RandomState
from repro.utils.validation import require_positive_int

__all__ = [
    "HMajorityDynamics",
    "ThreeMajorityDynamics",
    "EnsembleHMajorityDynamics",
    "EnsembleThreeMajorityDynamics",
]


class HMajorityDynamics(OpinionDynamics):
    """Adopt the majority opinion of ``sample_size`` random observations."""

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        sample_size: int,
        random_state: RandomState = None,
    ) -> None:
        super().__init__(num_nodes, noise, random_state)
        self.sample_size = require_positive_int(sample_size, "sample_size")
        self.name = f"{self.sample_size}-majority"

    def step(self, state: PopulationState) -> None:
        """One round: observe ``sample_size`` nodes, adopt the observed mode."""
        self._check_state(state)
        received = self.pull.observe(state.opinions, self.sample_size)
        votes = received.majority_votes(self._rng)
        updaters = votes > 0
        state.opinions[updaters] = votes[updaters]


class ThreeMajorityDynamics(HMajorityDynamics):
    """The 3-majority dynamics of [9] (``h = 3``)."""

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        random_state: RandomState = None,
    ) -> None:
        super().__init__(num_nodes, noise, sample_size=3, random_state=random_state)
        self.name = "3-majority"


class EnsembleHMajorityDynamics(EnsembleOpinionDynamics):
    """The h-majority dynamics batched over ``R`` independent trials."""

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        sample_size: int,
        random_state: EnsembleRandomState = None,
        *,
        rng_mode: str = "per_trial",
    ) -> None:
        super().__init__(num_nodes, noise, random_state, rng_mode=rng_mode)
        self.sample_size = require_positive_int(sample_size, "sample_size")
        self.name = f"{self.sample_size}-majority"

    def step(
        self, state: EnsembleState, random_state: EnsembleRandomState
    ) -> None:
        """One round of the majority rule over the whole batch.

        Uses the fused vote sampler: each node's ``maj()`` vote is drawn
        from its exact closed-form law (one uniform per node per trial),
        which matches ``observe`` + batched ``majority_votes`` in
        distribution at a fraction of the cost.
        """
        votes = self.pull.observe_majority_votes(
            state.opinions, self.sample_size, random_state
        )
        updaters = votes > 0
        state.opinions[updaters] = votes[updaters]


class EnsembleThreeMajorityDynamics(EnsembleHMajorityDynamics):
    """The 3-majority dynamics of [9], batched (``h = 3``)."""

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        random_state: EnsembleRandomState = None,
        *,
        rng_mode: str = "per_trial",
    ) -> None:
        super().__init__(
            num_nodes, noise, sample_size=3, random_state=random_state,
            rng_mode=rng_mode,
        )
        self.name = "3-majority"
