"""The h-majority dynamics (and its best-known special case, 3-majority).

In each round every node samples the opinions of ``h`` nodes chosen uniformly
at random (with replacement) and adopts the most frequent opinion among the
observations, breaking ties uniformly at random.  With ``h = 3`` this is the
3-majority dynamics analyzed in [9] (and shown there to solve plurality
consensus quickly when the initial bias is large enough); general ``h`` is
studied in [13, 1].

Here every observation passes through the noise matrix, so the dynamics can
be compared head-to-head against the paper's protocol on the same noisy
substrate (experiment E12).  Undecided nodes participate as observers but are
transparent as observation targets (observing an undecided node yields no
opinion); a node that observes no opinion keeps its current one.
"""

from __future__ import annotations

from repro.core.state import EnsembleCountsState, EnsembleState, PopulationState
from repro.dynamics.base import (
    EnsembleCountsDynamics,
    EnsembleOpinionDynamics,
    OpinionDynamics,
)
from repro.network.pull_model import vote_table_is_tractable
from repro.noise.matrix import NoiseMatrix
from repro.utils.rng import EnsembleRandomState, RandomState
from repro.utils.validation import require_positive_int

__all__ = [
    "HMajorityDynamics",
    "ThreeMajorityDynamics",
    "EnsembleHMajorityDynamics",
    "EnsembleThreeMajorityDynamics",
    "EnsembleCountsHMajorityDynamics",
    "EnsembleCountsThreeMajorityDynamics",
]


class HMajorityDynamics(OpinionDynamics):
    """Adopt the majority opinion of ``sample_size`` random observations."""

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        sample_size: int,
        random_state: RandomState = None,
    ) -> None:
        super().__init__(num_nodes, noise, random_state)
        self.sample_size = require_positive_int(sample_size, "sample_size")
        self.name = f"{self.sample_size}-majority"

    def step(self, state: PopulationState) -> None:
        """One round: observe ``sample_size`` nodes, adopt the observed mode."""
        self._check_state(state)
        received = self.pull.observe(state.opinions, self.sample_size)
        votes = received.majority_votes(self._rng)
        updaters = votes > 0
        state.opinions[updaters] = votes[updaters]


class ThreeMajorityDynamics(HMajorityDynamics):
    """The 3-majority dynamics of [9] (``h = 3``)."""

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        random_state: RandomState = None,
    ) -> None:
        super().__init__(num_nodes, noise, sample_size=3, random_state=random_state)
        self.name = "3-majority"


class EnsembleHMajorityDynamics(EnsembleOpinionDynamics):
    """The h-majority dynamics batched over ``R`` independent trials."""

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        sample_size: int,
        random_state: EnsembleRandomState = None,
        *,
        rng_mode: str = "per_trial",
    ) -> None:
        super().__init__(num_nodes, noise, random_state, rng_mode=rng_mode)
        self.sample_size = require_positive_int(sample_size, "sample_size")
        self.name = f"{self.sample_size}-majority"

    def step(
        self, state: EnsembleState, random_state: EnsembleRandomState
    ) -> None:
        """One round of the majority rule over the whole batch.

        Uses the fused vote sampler: each node's ``maj()`` vote is drawn
        from its exact closed-form law (one uniform per node per trial),
        which matches ``observe`` + batched ``majority_votes`` in
        distribution at a fraction of the cost.
        """
        votes = self.pull.observe_majority_votes(
            state.opinions, self.sample_size, random_state
        )
        updaters = votes > 0
        state.opinions[updaters] = votes[updaters]


class EnsembleThreeMajorityDynamics(EnsembleHMajorityDynamics):
    """The 3-majority dynamics of [9], batched (``h = 3``)."""

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        random_state: EnsembleRandomState = None,
        *,
        rng_mode: str = "per_trial",
    ) -> None:
        super().__init__(
            num_nodes, noise, sample_size=3, random_state=random_state,
            rng_mode=rng_mode,
        )
        self.name = "3-majority"


class EnsembleCountsHMajorityDynamics(EnsembleCountsDynamics):
    """The h-majority dynamics on sufficient statistics (counts engine).

    Every node's ``maj()`` vote is an i.i.d. draw from the exact
    closed-form vote law, so one grouped vote draw per round determines
    the new counts — nodes that cast a vote adopt it, nodes that observed
    no opinion keep their current one.  Because the counts engine has no
    per-message fallback, ``(sample_size, k)`` must fit the composition
    table (checked eagerly at construction); the batched engine covers the
    huge-sample corner.
    """

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        sample_size: int,
        random_state: EnsembleRandomState = None,
        *,
        rng_mode: str = "per_trial",
    ) -> None:
        super().__init__(num_nodes, noise, random_state, rng_mode=rng_mode)
        self.sample_size = require_positive_int(sample_size, "sample_size")
        if not vote_table_is_tractable(self.sample_size, self.num_opinions):
            raise ValueError(
                f"the counts engine needs the closed-form maj() table, which "
                f"is intractable for sample_size={self.sample_size}, "
                f"k={self.num_opinions}; use the batched engine instead"
            )
        self.name = f"{self.sample_size}-majority"

    def step(
        self, state: EnsembleCountsState, random_state: EnsembleRandomState
    ) -> None:
        """One round of the majority rule, exactly in distribution, O(k^2)."""
        votes = self.pull.observe_majority_grouped(
            state.counts, self.sample_size, random_state
        )
        adopters = votes[:, :, 1:].sum(axis=1)
        keepers = votes[:, 1:, 0]
        state.counts[:] = adopters + keepers


class EnsembleCountsThreeMajorityDynamics(EnsembleCountsHMajorityDynamics):
    """The 3-majority dynamics on sufficient statistics (``h = 3``)."""

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        random_state: EnsembleRandomState = None,
        *,
        rng_mode: str = "per_trial",
    ) -> None:
        super().__init__(
            num_nodes, noise, sample_size=3, random_state=random_state,
            rng_mode=rng_mode,
        )
        self.name = "3-majority"
