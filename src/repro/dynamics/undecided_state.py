"""The undecided-state dynamics [5, 8].

Each node observes the opinion of one uniformly random node per round and
updates as follows:

* an *opinionated* node that observes a different opinion becomes undecided
  (it drops its opinion but remembers nothing about the conflict);
* an *undecided* node that observes an opinion adopts it;
* otherwise (same opinion observed, or nothing observed because the target
  was undecided) the node keeps its state.

This is the classical "undecided state dynamic" population-protocol rule,
transplanted to the synchronous uniform gossip model as in [8].  As with the
other baselines, observations are corrupted by the noise matrix so the
dynamic can be benchmarked under the paper's noise assumption.
"""

from __future__ import annotations

import numpy as np

from repro.core.state import EnsembleCountsState, EnsembleState, PopulationState
from repro.dynamics.base import (
    EnsembleCountsDynamics,
    EnsembleOpinionDynamics,
    OpinionDynamics,
)
from repro.utils.rng import EnsembleRandomState

__all__ = [
    "UndecidedStateDynamics",
    "EnsembleUndecidedStateDynamics",
    "EnsembleCountsUndecidedStateDynamics",
]


def _undecided_state_update(current: np.ndarray, observed: np.ndarray) -> np.ndarray:
    """The undecided-state transition, shape-agnostic (``(n,)`` or ``(R, n)``)."""
    saw_opinion = observed > 0
    # Opinionated nodes observing a *different* opinion become undecided.
    conflict = saw_opinion & (current > 0) & (observed != current)
    # Undecided nodes observing any opinion adopt it.
    adoption = saw_opinion & (current == 0)
    new_opinions = current.copy()
    new_opinions[conflict] = 0
    new_opinions[adoption] = observed[adoption]
    return new_opinions


class UndecidedStateDynamics(OpinionDynamics):
    """One-observation dynamics with an intermediate undecided state."""

    name = "undecided-state"

    def step(self, state: PopulationState) -> None:
        """One round of the undecided-state update rule."""
        self._check_state(state)
        observed = self.pull.observe_single(state.opinions)
        state.opinions[:] = _undecided_state_update(state.opinions, observed)


class EnsembleUndecidedStateDynamics(EnsembleOpinionDynamics):
    """The undecided-state dynamics batched over ``R`` independent trials."""

    name = "undecided-state"

    def step(
        self, state: EnsembleState, random_state: EnsembleRandomState
    ) -> None:
        """One round of the undecided-state rule over the whole batch."""
        observed = self.pull.observe_single(state.opinions, random_state)
        state.opinions[:] = _undecided_state_update(state.opinions, observed)


class EnsembleCountsUndecidedStateDynamics(EnsembleCountsDynamics):
    """The undecided-state dynamics on sufficient statistics (counts engine).

    The prototypical *own-opinion-dependent* rule: a node's reaction to an
    observation depends on whether it matches its current opinion, so the
    update reads the full grouped observation tensor — supporters of ``j``
    after the round are the undecided nodes that observed ``j`` plus the
    current ``j``-supporters that observed ``j`` or nothing; everyone else
    who saw a conflicting opinion drops to undecided.
    """

    name = "undecided-state"

    def step(
        self, state: EnsembleCountsState, random_state: EnsembleRandomState
    ) -> None:
        """One round of the undecided-state rule, exactly in distribution."""
        observed = self.pull.observe_single_grouped(state.counts, random_state)
        num_opinions = state.num_opinions
        diagonal = np.arange(num_opinions)
        adopted = observed[:, 0, 1:]
        kept_nothing = observed[:, 1:, 0]
        kept_same = observed[:, diagonal + 1, diagonal + 1]
        state.counts[:] = adopted + kept_nothing + kept_same
