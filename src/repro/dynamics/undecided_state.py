"""The undecided-state dynamics [5, 8].

Each node observes the opinion of one uniformly random node per round and
updates as follows:

* an *opinionated* node that observes a different opinion becomes undecided
  (it drops its opinion but remembers nothing about the conflict);
* an *undecided* node that observes an opinion adopts it;
* otherwise (same opinion observed, or nothing observed because the target
  was undecided) the node keeps its state.

This is the classical "undecided state dynamic" population-protocol rule,
transplanted to the synchronous uniform gossip model as in [8].  As with the
other baselines, observations are corrupted by the noise matrix so the
dynamic can be benchmarked under the paper's noise assumption.
"""

from __future__ import annotations

import numpy as np

from repro.core.state import PopulationState
from repro.dynamics.base import OpinionDynamics

__all__ = ["UndecidedStateDynamics"]


class UndecidedStateDynamics(OpinionDynamics):
    """One-observation dynamics with an intermediate undecided state."""

    name = "undecided-state"

    def step(self, state: PopulationState) -> None:
        """One round of the undecided-state update rule."""
        self._check_state(state)
        observed = self.pull.observe_single(state.opinions)
        current = state.opinions
        saw_opinion = observed > 0
        # Opinionated nodes observing a *different* opinion become undecided.
        conflict = saw_opinion & (current > 0) & (observed != current)
        # Undecided nodes observing any opinion adopt it.
        adoption = saw_opinion & (current == 0)
        new_opinions = current.copy()
        new_opinions[conflict] = 0
        new_opinions[adoption] = observed[adoption]
        state.opinions[:] = new_opinions
