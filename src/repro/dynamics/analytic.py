"""Analytic (sampling-free) engines for the five baseline dynamics.

Two tiers, both driven by the same per-group outcome laws the counts
engines sample from:

* :class:`ExactDynamicsChain` — for small ``n * k``, the full Markov
  chain over the opinion-count simplex.  One round from count vector
  ``x`` is the convolution over current-opinion groups of
  ``Multinomial(m_g, law_g(x))`` — *exactly* the distribution of the
  counts engine's grouped draws (and hence of the sequential and batched
  engines, which the counts tier aggregates).  Evolving the probability
  vector through the dense one-round kernel therefore yields exact
  success/convergence probabilities and expected-bias trajectories, with
  no sampling noise at all.

* :class:`MeanFieldDynamics` — for large ``n``, the deterministic
  expected-share recursion ``x' = x @ L(x)`` plus a Gaussian-diffusion
  correction: the share covariance propagates as
  ``Sigma' = J Sigma J^T + C(x) / n`` where ``J`` is the Jacobian of the
  recursion and ``C(x)`` the single-node outcome covariance averaged
  over groups.  Success probabilities are Gaussian-tail estimates of the
  event "the target opinion leads every rival at the horizon" — an
  ``O(1/n)``-accurate approximation, not an exact law.

The per-group laws (:func:`rule_group_laws`) are read off the counts
engines' update rules: group 0 holds the undecided nodes and groups
``1..k`` the current supporters of each opinion; law entry ``j`` is the
probability that one such node ends the round with value ``j``
(0 = undecided).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analytic.simplex import (
    DEFAULT_STATE_BUDGET,
    enumerate_states,
    next_state_distribution,
    state_indices,
    state_space_size,
    states_within_budget,
)
from repro.dynamics.base import _bias_from_counts
from repro.dynamics.median_rule import _median_transition_tensor
from repro.network.pull_model import majority_vote_law, vote_table_is_tractable
from repro.noise.matrix import NoiseMatrix
from repro.utils.validation import require_positive_int

__all__ = [
    "observation_law",
    "rule_group_laws",
    "exact_dynamics_is_tractable",
    "AnalyticDynamicsResult",
    "ExactDynamicsChain",
    "MeanFieldDynamics",
]

#: Mass below which the remaining active probability is treated as fully
#: absorbed (the exact chain then stops stepping early, like the sampling
#: run loops dropping their last active trial).
_ACTIVE_MASS_FLOOR = 1e-15


def observation_law(opinion_shares: np.ndarray, noise: NoiseMatrix) -> np.ndarray:
    """One node's noisy-observation law, shape ``(k + 1,)``.

    Entry 0 is the probability of observing an undecided node; entries
    ``1..k`` the noisy opinion masses ``c P`` — the same arithmetic as
    :meth:`~repro.network.pull_model.CountsPullModel.observation_probabilities`,
    taken on a single share vector.
    """
    shares = np.asarray(opinion_shares, dtype=float)
    none_mass = 1.0 - shares.sum()
    return np.clip(
        np.concatenate([[none_mass], shares @ noise.matrix]), 0.0, 1.0
    )


def _resolve_sample_size(rule: str, sample_size: Optional[int]) -> Optional[int]:
    if rule == "3-majority":
        return 3
    if rule == "h-majority":
        if sample_size is None:
            raise ValueError("rule 'h-majority' requires sample_size")
        return require_positive_int(sample_size, "sample_size")
    if sample_size is not None:
        raise ValueError(f"rule {rule!r} does not take a sample_size")
    return None


def rule_group_laws(
    rule: str,
    observation: np.ndarray,
    *,
    sample_size: Optional[int] = None,
) -> np.ndarray:
    """Per-group outcome laws of one round, shape ``(k + 1, k + 1)``.

    ``observation`` is the shared noisy-observation law ``q`` of
    :func:`observation_law`; row ``g`` of the result is the outcome law
    of a node currently holding value ``g`` (0 = undecided).  Each row is
    the exact single-node marginal of the matching counts-engine step.
    """
    q = np.asarray(observation, dtype=float)
    width = q.shape[0]
    num_opinions = width - 1
    laws = np.zeros((width, width))
    if rule == "voter":
        # Copy rule: observing opinion j means adopting j; observing an
        # undecided node means keeping the current value.
        laws[0] = q
        for group in range(1, width):
            laws[group] = q
            laws[group, group] += q[0]
            laws[group, 0] = 0.0
    elif rule == "undecided-state":
        # Undecided nodes adopt what they observe; opinionated nodes keep
        # their value on a match or no observation, drop to undecided on
        # a conflicting opinion.
        laws[0] = q
        for group in range(1, width):
            laws[group, group] = q[0] + q[group]
            laws[group, 0] = q[1:].sum() - q[group]
    elif rule in ("3-majority", "h-majority"):
        sample_size = _resolve_sample_size(rule, sample_size)
        votes = majority_vote_law(q[np.newaxis, :], sample_size)[0]
        laws[0] = votes
        for group in range(1, width):
            laws[group] = votes
            laws[group, group] += votes[0]
            laws[group, 0] = 0.0
    elif rule == "median-rule":
        pair_law = np.outer(q, q).ravel()
        transition = _median_transition_tensor(num_opinions)
        laws = np.einsum("p,gpv->gv", pair_law, transition.astype(float))
    else:
        raise ValueError(f"unknown dynamics rule {rule!r}")
    return laws


def exact_dynamics_is_tractable(
    rule: str,
    num_nodes: int,
    num_opinions: int,
    *,
    sample_size: Optional[int] = None,
    state_budget: int = DEFAULT_STATE_BUDGET,
) -> bool:
    """Whether :class:`ExactDynamicsChain` can serve this configuration."""
    if rule == "approximate-consensus":
        # The phase-tagged termination state is not a function of the
        # opinion counts alone, so no counts-simplex kernel covers it.
        return False
    if not states_within_budget(num_nodes, num_opinions, state_budget):
        return False
    if rule in ("3-majority", "h-majority"):
        resolved = 3 if rule == "3-majority" else sample_size
        if resolved is None or not vote_table_is_tractable(
            int(resolved), num_opinions
        ):
            return False
    return True


@dataclass(frozen=True)
class AnalyticDynamicsResult:
    """Outcome of an analytic dynamics run (no per-trial arrays).

    ``method`` is ``"exact"`` (probabilities exact to float64) or
    ``"mean-field"`` (Gaussian-diffusion estimates).  ``bias_trajectory``
    holds the expected Definition-1 bias toward the target after each
    executed round, mirroring the sampled tiers' ``bias_history`` rows in
    expectation.
    """

    num_nodes: int
    num_opinions: int
    target_opinion: int
    method: str
    success_probability: float
    convergence_probability: float
    expected_rounds: float
    expected_final_bias: float
    expected_final_counts: np.ndarray
    bias_trajectory: np.ndarray
    state_space_size: Optional[int] = None


#: Dense one-round kernels keyed by (rule, n, sample_size, noise bytes) —
#: kernel construction is the expensive part of the exact tier, and
#: agreement tests reuse the same configuration many times.
_KERNEL_CACHE: Dict[Tuple, np.ndarray] = {}


class ExactDynamicsChain:
    """The exact Markov chain of a baseline dynamic over count states.

    Tractable when ``C(n + k, k)`` fits the state budget (the dense
    kernel is ``S x S``); construction raises otherwise so callers can
    fall back to :class:`MeanFieldDynamics`.  Majority rules additionally
    need the closed-form ``maj()`` table, exactly like the counts engine.
    """

    def __init__(
        self,
        rule: str,
        num_nodes: int,
        noise: NoiseMatrix,
        *,
        sample_size: Optional[int] = None,
        state_budget: int = DEFAULT_STATE_BUDGET,
    ) -> None:
        self.rule = str(rule)
        self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        if not isinstance(noise, NoiseMatrix):
            raise TypeError(
                f"noise must be a NoiseMatrix, got {type(noise).__name__}"
            )
        self.noise = noise
        self.sample_size = _resolve_sample_size(self.rule, sample_size)
        if self.rule in ("3-majority", "h-majority") and not vote_table_is_tractable(
            self.sample_size, self.num_opinions
        ):
            raise ValueError(
                f"the analytic engine needs the closed-form maj() table, "
                f"which is intractable for sample_size={self.sample_size}, "
                f"k={self.num_opinions}; use the batched engine instead"
            )
        if not states_within_budget(
            self.num_nodes, self.num_opinions, state_budget
        ):
            raise ValueError(
                f"exact chain needs C(n + k, k) <= {state_budget} states, "
                f"got {state_space_size(self.num_nodes, self.num_opinions)} "
                f"for n={self.num_nodes}, k={self.num_opinions}; use the "
                "mean-field tier instead"
            )

    @property
    def num_opinions(self) -> int:
        """Number of opinions ``k``."""
        return self.noise.num_opinions

    @property
    def states(self) -> np.ndarray:
        """All count states, shape ``(S, k)`` (enumeration order)."""
        return enumerate_states(self.num_nodes, self.num_opinions)

    def group_laws(self, counts: np.ndarray) -> np.ndarray:
        """The ``(k + 1, k + 1)`` per-group outcome laws at one state."""
        counts = np.asarray(counts, dtype=np.int64)
        observation = observation_law(counts / self.num_nodes, self.noise)
        return rule_group_laws(
            self.rule, observation, sample_size=self.sample_size
        )

    def transition_kernel(self) -> np.ndarray:
        """The dense one-round kernel, shape ``(S, S)`` (row-stochastic)."""
        key = (
            self.rule,
            self.num_nodes,
            self.sample_size,
            self.noise.matrix.tobytes(),
        )
        kernel = _KERNEL_CACHE.get(key)
        if kernel is None:
            states = self.states
            kernel = np.empty((states.shape[0], states.shape[0]))
            for index, counts in enumerate(states):
                kernel[index] = self.one_round_distribution(counts)
            kernel.setflags(write=False)
            _KERNEL_CACHE[key] = kernel
        return kernel

    def one_round_distribution(self, counts: np.ndarray) -> np.ndarray:
        """Exact next-state distribution after one round from ``counts``."""
        counts = np.asarray(counts, dtype=np.int64)
        undecided = self.num_nodes - int(counts.sum())
        group_sizes = np.concatenate([[undecided], counts])
        return next_state_distribution(
            group_sizes,
            self.group_laws(counts),
            self.num_nodes,
            self.num_opinions,
        )

    def _state_index(self, counts: np.ndarray) -> int:
        index = int(state_indices(counts, self.num_nodes, self.num_opinions))
        if index < 0:
            raise ValueError(
                # Error display only: show the offending value in its raw
                # dtype rather than coercing it.
                f"counts {np.asarray(counts).tolist()} are not a valid state "  # reprolint: disable=int64-dtype-pin
                f"for n={self.num_nodes}"
            )
        return index

    def run(
        self,
        initial_counts: np.ndarray,
        max_rounds: int,
        *,
        target_opinion: int,
        stop_at_consensus: bool = True,
        record_history: bool = True,
    ) -> AnalyticDynamicsResult:
        """Evolve the exact state distribution for up to ``max_rounds``.

        Mirrors the sampling run loops' semantics: every round the active
        mass steps through the kernel first and the consensus check runs
        after (so even a consensus initial state steps once, and noise can
        break consensus before it is frozen); absorbed mass keeps its
        stop-round and stop-state bias.  All reported statistics are exact
        expectations of the matching per-trial quantities.
        """
        max_rounds = require_positive_int(max_rounds, "max_rounds")
        target_opinion = int(target_opinion)
        states = self.states
        kernel = self.transition_kernel()
        consensus = states.max(axis=1) == self.num_nodes
        bias = (
            _bias_from_counts(states, target_opinion, self.num_nodes)
            if target_opinion > 0
            else np.zeros(states.shape[0])
        )

        active = np.zeros(states.shape[0])
        active[self._state_index(initial_counts)] = 1.0
        stopped = np.zeros_like(active)
        expected_rounds = 0.0
        trajectory = []
        for round_number in range(1, max_rounds + 1):
            active = active @ kernel
            if record_history and target_opinion > 0:
                trajectory.append(float(bias @ (active + stopped)))
            if stop_at_consensus:
                newly_stopped = np.where(consensus, active, 0.0)
                mass = float(newly_stopped.sum())
                if mass > 0.0:
                    expected_rounds += round_number * mass
                    stopped += newly_stopped
                    active = np.where(consensus, 0.0, active)
                if active.sum() <= _ACTIVE_MASS_FLOOR:
                    break

        expected_rounds += max_rounds * float(active.sum())
        final = active + stopped
        final /= final.sum()
        success_state = np.zeros(self.num_opinions, dtype=np.int64)
        if target_opinion > 0:
            success_state[target_opinion - 1] = self.num_nodes
        return AnalyticDynamicsResult(
            num_nodes=self.num_nodes,
            num_opinions=self.num_opinions,
            target_opinion=target_opinion,
            method="exact",
            success_probability=(
                float(final[self._state_index(success_state)])
                if target_opinion > 0
                else 0.0
            ),
            convergence_probability=float(final[consensus].sum()),
            expected_rounds=float(expected_rounds),
            expected_final_bias=float(bias @ final),
            expected_final_counts=final @ states,
            bias_trajectory=np.asarray(trajectory, dtype=float),
            state_space_size=states.shape[0],
        )


def _gaussian_tail(mean: float, variance: float) -> float:
    """``P(N(mean, variance) > 0)``; degenerates to an indicator."""
    import math

    if variance <= 1e-30:
        return 1.0 if mean > 0 else (0.5 if mean == 0 else 0.0)
    return 0.5 * (1.0 + math.erf(mean / math.sqrt(2.0 * variance)))


class MeanFieldDynamics:
    """Mean-field share recursion with a Gaussian-diffusion correction.

    Tracks the expected group-share vector ``x`` (undecided plus the
    ``k`` opinions) through the exact single-node laws, and the share
    covariance through the linearized recursion.  Serves arbitrarily
    large ``n`` at ``O(k^2)`` per round; its estimates converge to the
    exact chain's at rate ``O(1/n)``.
    """

    method = "mean-field"

    #: Finite-difference step of the Jacobian used by the covariance
    #: propagation (central differences on the share coordinates).
    _JACOBIAN_STEP = 1e-6

    def __init__(
        self,
        rule: str,
        num_nodes: int,
        noise: NoiseMatrix,
        *,
        sample_size: Optional[int] = None,
    ) -> None:
        self.rule = str(rule)
        self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        if not isinstance(noise, NoiseMatrix):
            raise TypeError(
                f"noise must be a NoiseMatrix, got {type(noise).__name__}"
            )
        self.noise = noise
        self.sample_size = _resolve_sample_size(self.rule, sample_size)
        # Fail eagerly (like the counts/exact engines) when the rule's
        # closed-form vote law is out of reach.
        if self.rule in ("3-majority", "h-majority") and not vote_table_is_tractable(
            self.sample_size, self.num_opinions
        ):
            raise ValueError(
                f"the analytic engine needs the closed-form maj() table, "
                f"which is intractable for sample_size={self.sample_size}, "
                f"k={self.num_opinions}; use the batched engine instead"
            )

    @property
    def num_opinions(self) -> int:
        """Number of opinions ``k``."""
        return self.noise.num_opinions

    def group_laws(self, group_shares: np.ndarray) -> np.ndarray:
        """The per-group outcome laws at a group-share vector."""
        observation = observation_law(group_shares[1:], self.noise)
        return rule_group_laws(
            self.rule, observation, sample_size=self.sample_size
        )

    def _mean_step(self, group_shares: np.ndarray) -> np.ndarray:
        # Renormalize onto the simplex: observation_law clips a slightly
        # negative undecided mass to zero, so a float-epsilon excess in
        # the share total would otherwise be *amplified* every round
        # (roughly 4x per round under 3-majority) instead of cancelling.
        stepped = group_shares @ self.group_laws(group_shares)
        return stepped / stepped.sum()

    def _jacobian(self, group_shares: np.ndarray) -> np.ndarray:
        width = group_shares.shape[0]
        step = self._JACOBIAN_STEP
        jacobian = np.empty((width, width))
        for column in range(width):
            forward = group_shares.copy()
            backward = group_shares.copy()
            forward[column] += step
            backward[column] -= step
            jacobian[:, column] = (
                self._mean_step(forward) - self._mean_step(backward)
            ) / (2.0 * step)
        return jacobian

    def _outcome_covariance(self, group_shares: np.ndarray) -> np.ndarray:
        """Single-round share covariance ``C(x) / n`` given shares ``x``."""
        laws = self.group_laws(group_shares)
        width = group_shares.shape[0]
        covariance = np.zeros((width, width))
        for group in range(width):
            law = laws[group]
            covariance += group_shares[group] * (
                np.diag(law) - np.outer(law, law)
            )
        return covariance / self.num_nodes

    @staticmethod
    def _bias_of(group_shares: np.ndarray, target_opinion: int) -> float:
        opinion_shares = group_shares[1:]
        if opinion_shares.shape[0] == 1:
            return float(opinion_shares[0])
        rivals = np.delete(opinion_shares, target_opinion - 1)
        return float(opinion_shares[target_opinion - 1] - rivals.max())

    def _lead_probability(
        self,
        group_shares: np.ndarray,
        covariance: np.ndarray,
        opinion: int,
    ) -> float:
        """Gaussian-tail estimate of "opinion leads every rival"."""
        index = opinion  # group index of the opinion
        if self.num_opinions == 1:
            rival = 0  # the undecided group
        else:
            rival_groups = [
                g for g in range(1, self.num_opinions + 1) if g != index
            ]
            rival = max(rival_groups, key=lambda g: group_shares[g])
        margin = float(group_shares[index] - group_shares[rival])
        variance = float(
            covariance[index, index]
            + covariance[rival, rival]
            - 2.0 * covariance[index, rival]
        )
        return _gaussian_tail(margin, max(variance, 0.0))

    def run(
        self,
        initial_counts: np.ndarray,
        max_rounds: int,
        *,
        target_opinion: int,
        stop_at_consensus: bool = True,
        record_history: bool = True,
    ) -> AnalyticDynamicsResult:
        """Integrate the mean-field recursion for up to ``max_rounds``.

        ``success_probability`` / ``convergence_probability`` are
        Gaussian-tail estimates of the lead events at the stopping
        horizon; ``expected_rounds`` is the deterministic hitting round of
        the consensus threshold (``max_rounds`` when never hit).
        """
        max_rounds = require_positive_int(max_rounds, "max_rounds")
        target_opinion = int(target_opinion)
        counts = np.asarray(initial_counts, dtype=float)
        undecided = self.num_nodes - counts.sum()
        shares = np.concatenate([[undecided], counts]) / self.num_nodes

        width = shares.shape[0]
        covariance = np.zeros((width, width))
        consensus_threshold = 1.0 - 0.5 / self.num_nodes
        trajectory = []
        hitting_round = max_rounds
        for round_number in range(1, max_rounds + 1):
            jacobian = self._jacobian(shares)
            noise_term = self._outcome_covariance(shares)
            shares = self._mean_step(shares)
            covariance = jacobian @ covariance @ jacobian.T + noise_term
            if record_history and target_opinion > 0:
                trajectory.append(self._bias_of(shares, target_opinion))
            if (
                stop_at_consensus
                and shares[1:].max() >= consensus_threshold
            ):
                hitting_round = round_number
                break

        lead = [
            self._lead_probability(shares, covariance, opinion)
            for opinion in range(1, self.num_opinions + 1)
        ]
        return AnalyticDynamicsResult(
            num_nodes=self.num_nodes,
            num_opinions=self.num_opinions,
            target_opinion=target_opinion,
            method=self.method,
            success_probability=(
                lead[target_opinion - 1] if target_opinion > 0 else 0.0
            ),
            convergence_probability=min(1.0, float(sum(lead))),
            expected_rounds=float(hitting_round),
            expected_final_bias=(
                self._bias_of(shares, target_opinion)
                if target_opinion > 0
                else 0.0
            ),
            expected_final_counts=shares[1:] * self.num_nodes,
            bias_trajectory=np.asarray(trajectory, dtype=float),
            state_space_size=None,
        )
