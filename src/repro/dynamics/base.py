"""Common infrastructure for the baseline opinion dynamics.

Every baseline is a synchronous-round dynamic over a
:class:`~repro.core.state.PopulationState`: in each round every node observes
a few uniformly random nodes' opinions through the noisy channel (the same
noise matrix the paper's protocol faces) and updates its own opinion by a
local rule.  :class:`OpinionDynamics` implements the run loop, convergence
detection and history recording; concrete dynamics implement
:meth:`OpinionDynamics.step`.

:class:`EnsembleOpinionDynamics` is the batched counterpart: ``R``
independent trials evolve together over an ``(R, n)`` opinion matrix
(:class:`~repro.core.state.EnsembleState`), with per-trial convergence
tracking and an active-trials index so converged trials stop costing work.
With per-trial randomness sources (the default), trial ``r`` consumes draws
from its own source only, so a batched run is bitwise identical to ``R``
batch-size-1 ensemble runs with matched seeds — exactly the guarantee the
ensemble protocol gives.  Agreement with the sequential
:meth:`OpinionDynamics.run` reference engine is distributional (the batched
engine samples the compound observation channel; see
:mod:`repro.network.pull_model`) and is checked statistically by the
test-suite.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.core.state import (
    CountsState,
    EnsembleCountsState,
    EnsembleState,
    PopulationState,
    coerce_to_ensemble_counts,
)
from repro.network.pull_model import (
    CountsPullModel,
    EnsemblePullModel,
    UniformPullModel,
)
from repro.noise.matrix import NoiseMatrix
from repro.utils.multiset import opinion_counts_matrix
from repro.utils.rng import (
    EnsembleRandomState,
    RandomState,
    as_generator,
    is_generator_sequence,
    resolve_trial_randomness,
)
from repro.utils.validation import require_positive_int

__all__ = [
    "OpinionDynamics",
    "DynamicsResult",
    "EnsembleOpinionDynamics",
    "EnsembleDynamicsResult",
    "EnsembleCountsDynamics",
    "CountsDynamicsResult",
]


def _bias_from_counts(
    counts: np.ndarray, opinion: int, num_nodes: int
) -> np.ndarray:
    """Definition-1 bias toward ``opinion`` from opinion counts.

    Works on a single count vector ``(k,)`` or a batch ``(..., k)``; the
    sequential and batched run loops share this helper so both record the
    bias with identical arithmetic.
    """
    distribution = counts / num_nodes
    if distribution.shape[-1] == 1:
        return distribution[..., 0]
    rivals = np.delete(distribution, opinion - 1, axis=-1)
    return distribution[..., opinion - 1] - rivals.max(axis=-1)


@dataclass
class DynamicsResult:
    """Outcome of running a baseline dynamic.

    Attributes
    ----------
    final_state:
        The population state when the run stopped.
    rounds_executed:
        Number of synchronous rounds executed.
    converged:
        ``True`` iff the run stopped because all nodes agreed on one opinion.
    consensus_opinion:
        The agreed opinion when ``converged`` (0 otherwise).
    target_opinion:
        The opinion the run was tracking (initial plurality by default).
    success:
        ``True`` iff the run converged on ``target_opinion``.
    bias_history:
        Bias toward ``target_opinion`` after every round.
    """

    final_state: PopulationState
    rounds_executed: int
    converged: bool
    consensus_opinion: int
    target_opinion: int
    success: bool
    bias_history: List[float] = field(default_factory=list)


class OpinionDynamics(ABC):
    """Base class for synchronous baseline dynamics under noisy observation.

    Parameters
    ----------
    num_nodes:
        Population size ``n``.
    noise:
        Noise matrix applied to every observation; pass the identity matrix
        for the classical noise-free dynamics.
    random_state:
        Randomness source shared by the observation substrate and the rules.
    """

    #: Human-readable name used in comparison tables.
    name: str = "opinion-dynamics"

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        random_state: RandomState = None,
    ) -> None:
        self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        self.noise = noise
        self._rng = as_generator(random_state)
        self.pull = UniformPullModel(self.num_nodes, noise, self._rng)

    @property
    def num_opinions(self) -> int:
        """Number of opinions ``k``."""
        return self.noise.num_opinions

    @abstractmethod
    def step(self, state: PopulationState) -> None:
        """Execute one synchronous round, mutating ``state`` in place."""

    def _check_state(self, state: PopulationState) -> None:
        if state.num_nodes != self.num_nodes:
            raise ValueError(
                f"state has {state.num_nodes} nodes but the dynamic was built "
                f"for {self.num_nodes}"
            )
        if state.num_opinions != self.num_opinions:
            raise ValueError(
                f"state has {state.num_opinions} opinions but the noise matrix "
                f"has {self.num_opinions}"
            )

    def run(
        self,
        initial_state: PopulationState,
        max_rounds: int,
        *,
        target_opinion: Optional[int] = None,
        stop_at_consensus: bool = True,
        record_history: bool = True,
    ) -> DynamicsResult:
        """Run the dynamic for up to ``max_rounds`` rounds.

        The run stops early when all nodes share one opinion (if
        ``stop_at_consensus``), which is the natural convergence-time
        measurement used by the baseline-comparison experiment.
        """
        max_rounds = require_positive_int(max_rounds, "max_rounds")
        self._check_state(initial_state)
        state = initial_state.copy()
        if target_opinion is None:
            target_opinion = state.plurality_opinion()
        target_opinion = int(target_opinion)
        if target_opinion > self.num_opinions:
            raise ValueError(
                f"target_opinion must be in [0, {self.num_opinions}], "
                f"got {target_opinion}"
            )
        bias_history: List[float] = []
        rounds_executed = 0
        for _ in range(max_rounds):
            self.step(state)
            rounds_executed += 1
            # One opinion_counts() per round, shared by the bias record, the
            # early-stop check and the final convergence verdict.
            counts = state.opinion_counts()
            if record_history and target_opinion > 0:
                bias_history.append(
                    float(_bias_from_counts(counts, target_opinion, self.num_nodes))
                )
            if stop_at_consensus and counts.max(initial=0) == state.num_nodes:
                break
        converged = bool(counts.max(initial=0) == state.num_nodes)
        consensus_opinion = int(np.argmax(counts)) + 1 if converged else 0
        return DynamicsResult(
            final_state=state,
            rounds_executed=rounds_executed,
            converged=converged,
            consensus_opinion=consensus_opinion,
            target_opinion=target_opinion,
            success=bool(converged and consensus_opinion == target_opinion),
            bias_history=bias_history,
        )


@dataclass
class EnsembleDynamicsResult:
    """Outcome of a batched multi-trial dynamics run.

    Attributes
    ----------
    final_states:
        The ensemble state when every trial had stopped (one row per trial).
    rounds_executed:
        Integer ``(R,)`` array: rounds trial ``r`` executed before it
        converged (or hit ``max_rounds``).
    converged:
        Boolean ``(R,)`` mask of trials that reached consensus.
    consensus_opinions:
        Integer ``(R,)`` array: the agreed opinion per converged trial
        (0 otherwise).
    target_opinion:
        The opinion every trial was tracking.
    successes:
        Boolean ``(R,)`` mask: converged on ``target_opinion``.
    bias_history:
        Float ``(T, R)`` matrix: bias toward the target after every executed
        round, where ``T = rounds_executed.max()``.  Rows past a trial's
        convergence repeat its final bias; slice with ``rounds_executed`` (or
        use :meth:`trial_result`) for the per-trial history a sequential run
        would record.  Empty (``T = 0``) when history recording is off.
    """

    final_states: EnsembleState
    rounds_executed: np.ndarray
    converged: np.ndarray
    consensus_opinions: np.ndarray
    target_opinion: int
    successes: np.ndarray
    bias_history: np.ndarray

    @property
    def num_trials(self) -> int:
        """Number of trials ``R`` in the batch."""
        return self.final_states.num_trials

    @property
    def success_count(self) -> int:
        """Number of trials that reached consensus on the target opinion."""
        return int(np.count_nonzero(self.successes))

    @property
    def success_rate(self) -> float:
        """Empirical success probability over the batch."""
        return self.success_count / self.num_trials

    @property
    def convergence_rate(self) -> float:
        """Fraction of trials that reached consensus on *some* opinion."""
        return int(np.count_nonzero(self.converged)) / self.num_trials

    @property
    def final_biases(self) -> np.ndarray:
        """Per-trial bias of the final distribution toward the target.

        All zeros when no target was tracked (``target_opinion == 0``), so
        the accessor is total like the rest of the result.
        """
        if self.target_opinion <= 0:
            return np.zeros(self.num_trials, dtype=float)
        return self.final_states.bias_toward(self.target_opinion)

    def trial_result(self, trial: int) -> DynamicsResult:
        """Trial ``trial`` as a standalone :class:`DynamicsResult`.

        Bitwise identical to what a batch-size-1 ensemble run with that
        trial's randomness source would have produced for its only trial.
        """
        rounds = int(self.rounds_executed[trial])
        return DynamicsResult(
            final_state=self.final_states.trial_state(trial),
            rounds_executed=rounds,
            converged=bool(self.converged[trial]),
            consensus_opinion=int(self.consensus_opinions[trial]),
            target_opinion=self.target_opinion,
            success=bool(self.successes[trial]),
            bias_history=[
                float(value) for value in self.bias_history[:rounds, trial]
            ],
        )

    def summary(self) -> dict:
        """Headline statistics of the batch."""
        return {
            "num_trials": self.num_trials,
            "target_opinion": self.target_opinion,
            "success_rate": self.success_rate,
            "convergence_rate": self.convergence_rate,
            "mean_rounds": float(self.rounds_executed.mean()),
            "mean_final_bias": float(self.final_biases.mean()),
        }


class EnsembleOpinionDynamics(ABC):
    """Run ``R`` independent trials of a baseline dynamic as one batch.

    Every trial follows exactly the rule of the matching
    :class:`OpinionDynamics` subclass; the trial axis is carried through
    every numpy operation, and per-trial early stopping keeps converged
    trials out of the remaining rounds' work (the *active-trials index*).

    Parameters
    ----------
    num_nodes:
        Population size ``n`` per trial.
    noise:
        Noise matrix applied to every observation.
    random_state:
        Either a single :data:`~repro.utils.rng.RandomState` or a sequence
        with one entry per trial.  With a sequence, trial ``r`` consumes
        randomness exclusively from its own source, making a batched run
        bitwise identical to ``R`` batch-size-1 runs with the same sources.
    rng_mode:
        ``"per_trial"`` (default): when ``random_state`` is a single source,
        spawn one independent child generator per trial, preserving the
        trial-by-trial reproducibility guarantee.  ``"shared"``: drive the
        whole batch from one generator with fully batched draws — faster,
        but individual trials are not reproducible in isolation (and the
        stream depends on when other trials converge).
    """

    #: Human-readable name used in comparison tables.
    name: str = "ensemble-opinion-dynamics"

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        random_state: EnsembleRandomState = None,
        *,
        rng_mode: str = "per_trial",
    ) -> None:
        if rng_mode not in {"per_trial", "shared"}:
            raise ValueError(
                f"rng_mode must be 'per_trial' or 'shared', got {rng_mode!r}"
            )
        self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        self.noise = noise
        self.rng_mode = rng_mode
        self._random_state = random_state
        self.pull = EnsemblePullModel(self.num_nodes, noise)

    @property
    def num_opinions(self) -> int:
        """Number of opinions ``k``."""
        return self.noise.num_opinions

    @abstractmethod
    def step(
        self, state: EnsembleState, random_state: EnsembleRandomState
    ) -> None:
        """One synchronous round over every trial of ``state``, in place.

        ``random_state`` is the batch's randomness for this round: a list
        with one generator per trial of ``state`` (per-trial mode) or one
        shared generator.
        """

    def reset_randomness(self, random_state: EnsembleRandomState) -> None:
        """Replace the default randomness source of subsequent runs.

        Used by the sweep fast path to reuse one engine instance across
        grid cells while keeping each cell's seed explicit.
        """
        self._random_state = random_state

    def _trial_randomness(self, num_trials: int) -> EnsembleRandomState:
        return resolve_trial_randomness(
            self._random_state, num_trials, self.rng_mode
        )

    def _coerce_ensemble(
        self,
        initial_state: Union[PopulationState, EnsembleState],
        num_trials: Optional[int],
    ) -> EnsembleState:
        if isinstance(initial_state, PopulationState):
            if num_trials is None:
                raise ValueError(
                    "num_trials is required when initial_state is a single "
                    "PopulationState"
                )
            return EnsembleState.from_state(initial_state, num_trials)
        if isinstance(initial_state, EnsembleState):
            if num_trials is not None and num_trials != initial_state.num_trials:
                raise ValueError(
                    f"num_trials = {num_trials} disagrees with the ensemble's "
                    f"{initial_state.num_trials} trials"
                )
            return initial_state.copy()
        raise TypeError(
            "initial_state must be a PopulationState or an EnsembleState, "
            f"got {type(initial_state).__name__}"
        )

    def _check_state(self, state: EnsembleState) -> None:
        if state.num_nodes != self.num_nodes:
            raise ValueError(
                f"state has {state.num_nodes} nodes but the dynamic was built "
                f"for {self.num_nodes}"
            )
        if state.num_opinions != self.num_opinions:
            raise ValueError(
                f"state has {state.num_opinions} opinions but the noise matrix "
                f"has {self.num_opinions}"
            )

    def run(
        self,
        initial_state: Union[PopulationState, EnsembleState],
        max_rounds: int,
        num_trials: Optional[int] = None,
        *,
        target_opinion: Optional[int] = None,
        stop_at_consensus: bool = True,
        record_history: bool = True,
    ) -> EnsembleDynamicsResult:
        """Run every trial for up to ``max_rounds`` rounds.

        Parameters
        ----------
        initial_state:
            Either one :class:`PopulationState` (tiled into ``num_trials``
            identical starting points) or a pre-built :class:`EnsembleState`
            with per-trial initial conditions (``num_trials`` inferred).
        max_rounds:
            Round budget per trial.
        target_opinion:
            The opinion to track; defaults to the plurality opinion of the
            pooled initial counts (for a tiled ensemble this matches the
            per-trial default of the sequential runner).
        stop_at_consensus:
            Remove a trial from the active set as soon as all its nodes
            agree; converged trials stop consuming randomness and compute.
        record_history:
            Record the per-round bias toward the target for every trial.
        """
        max_rounds = require_positive_int(max_rounds, "max_rounds")
        ensemble = self._coerce_ensemble(initial_state, num_trials)
        self._check_state(ensemble)
        num_trials = ensemble.num_trials
        if target_opinion is None:
            target_opinion = ensemble.pooled_plurality_opinion()
        target_opinion = int(target_opinion)
        if target_opinion > self.num_opinions:
            raise ValueError(
                f"target_opinion must be in [0, {self.num_opinions}], "
                f"got {target_opinion}"
            )
        randomness = self._trial_randomness(num_trials)
        per_trial = is_generator_sequence(randomness)
        opinions = ensemble.opinions
        rounds_executed = np.zeros(num_trials, dtype=np.int64)
        active = np.arange(num_trials)
        bias_rows: List[np.ndarray] = []
        last_bias = np.zeros(num_trials, dtype=float)
        for _ in range(max_rounds):
            if active.size == num_trials:
                # Full batch: step the working state in place.
                self.step(ensemble, randomness)
                active_opinions = opinions
            else:
                sub_randomness = (
                    [randomness[index] for index in active]
                    if per_trial
                    else randomness
                )
                # The fancy index already yields a fresh in-range matrix, so
                # wrap it without the constructor's copy and range scan.
                sub_state = EnsembleState.wrap(
                    opinions[active], self.num_opinions
                )
                self.step(sub_state, sub_randomness)
                opinions[active] = sub_state.opinions
                active_opinions = sub_state.opinions
            counts = opinion_counts_matrix(
                active_opinions, self.num_opinions, validate=False
            )
            rounds_executed[active] += 1
            if record_history and target_opinion > 0:
                last_bias = last_bias.copy()
                last_bias[active] = _bias_from_counts(
                    counts, target_opinion, self.num_nodes
                )
                bias_rows.append(last_bias)
            if stop_at_consensus:
                done = counts.max(axis=1) == self.num_nodes
                if done.any():
                    active = active[~done]
                    if active.size == 0:
                        break
        final_counts = ensemble.opinion_counts()
        converged = final_counts.max(axis=1) == self.num_nodes
        consensus_opinions = np.where(
            converged, final_counts.argmax(axis=1) + 1, 0
        ).astype(np.int64)
        bias_history = (
            np.stack(bias_rows)
            if bias_rows
            else np.zeros((0, num_trials), dtype=float)
        )
        return EnsembleDynamicsResult(
            final_states=ensemble,
            rounds_executed=rounds_executed,
            converged=converged,
            consensus_opinions=consensus_opinions,
            target_opinion=target_opinion,
            successes=converged & (consensus_opinions == target_opinion),
            bias_history=bias_history,
        )


@dataclass
class CountsDynamicsResult:
    """Outcome of a multi-trial counts-engine dynamics run.

    The counts-engine counterpart of :class:`EnsembleDynamicsResult`: the
    same per-trial verdicts and histories, but the final state is an
    :class:`~repro.core.state.EnsembleCountsState` (``(R, k)`` sufficient
    statistics) because the engine never materializes per-node opinions.
    """

    final_states: EnsembleCountsState
    rounds_executed: np.ndarray
    converged: np.ndarray
    consensus_opinions: np.ndarray
    target_opinion: int
    successes: np.ndarray
    bias_history: np.ndarray

    @property
    def num_trials(self) -> int:
        """Number of trials ``R`` in the batch."""
        return self.final_states.num_trials

    @property
    def success_count(self) -> int:
        """Number of trials that reached consensus on the target opinion."""
        return int(np.count_nonzero(self.successes))

    @property
    def success_rate(self) -> float:
        """Empirical success probability over the batch."""
        return self.success_count / self.num_trials

    @property
    def convergence_rate(self) -> float:
        """Fraction of trials that reached consensus on *some* opinion."""
        return int(np.count_nonzero(self.converged)) / self.num_trials

    @property
    def final_biases(self) -> np.ndarray:
        """Per-trial bias of the final distribution toward the target."""
        if self.target_opinion <= 0:
            return np.zeros(self.num_trials, dtype=float)
        return self.final_states.bias_toward(self.target_opinion)

    def summary(self) -> dict:
        """Headline statistics of the batch."""
        return {
            "num_trials": self.num_trials,
            "target_opinion": self.target_opinion,
            "success_rate": self.success_rate,
            "convergence_rate": self.convergence_rate,
            "mean_rounds": float(self.rounds_executed.mean()),
            "mean_final_bias": float(self.final_biases.mean()),
        }


class EnsembleCountsDynamics(ABC):
    """Run ``R`` independent trials of a dynamic on sufficient statistics.

    The third engine tier.  Every trial follows exactly the rule of the
    matching :class:`OpinionDynamics` subclass, but the state is the
    ``(R, k)`` opinion-count matrix of an
    :class:`~repro.core.state.EnsembleCountsState`: on the complete graph
    the per-node opinion vector is exchangeable, so one grouped-multinomial
    draw per current-opinion group reproduces each round's aggregate
    update *exactly in distribution* (see
    :class:`~repro.network.pull_model.CountsPullModel`).  Per-round cost is
    ``O(k^2)`` per trial — independent of ``n`` — and no method allocates
    an array with an ``n``-sized axis, which is what lets the engine
    simulate millions (or billions) of nodes at fixed cost.

    Randomness follows the ensemble convention: with per-trial sources
    (the default) trial ``r`` consumes draws from its own generator only,
    so a counts batch is bitwise identical to ``R`` batch-size-1 counts
    runs with the same sources; agreement with the ``sequential`` and
    ``batched`` per-node engines is distributional and is checked by the
    statistical engine-agreement test-suite.
    """

    #: Human-readable name used in comparison tables.
    name: str = "counts-opinion-dynamics"

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        random_state: EnsembleRandomState = None,
        *,
        rng_mode: str = "per_trial",
    ) -> None:
        if rng_mode not in {"per_trial", "shared"}:
            raise ValueError(
                f"rng_mode must be 'per_trial' or 'shared', got {rng_mode!r}"
            )
        self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        self.noise = noise
        self.rng_mode = rng_mode
        self._random_state = random_state
        self.pull = CountsPullModel(self.num_nodes, noise)

    @property
    def num_opinions(self) -> int:
        """Number of opinions ``k``."""
        return self.noise.num_opinions

    @abstractmethod
    def step(
        self, state: EnsembleCountsState, random_state: EnsembleRandomState
    ) -> None:
        """One synchronous round over every trial of ``state``, in place.

        Implementations mutate ``state.counts`` (an ``(R, k)`` int64
        matrix) and must consume randomness per trial only from that
        trial's generator when ``random_state`` is a per-trial sequence.
        """

    def reset_randomness(self, random_state: EnsembleRandomState) -> None:
        """Replace the default randomness source of subsequent runs.

        Used by the sweep fast path to reuse one engine instance across
        grid cells while keeping each cell's seed explicit.
        """
        self._random_state = random_state

    def _trial_randomness(self, num_trials: int) -> EnsembleRandomState:
        return resolve_trial_randomness(
            self._random_state, num_trials, self.rng_mode
        )

    def _check_state(self, state: EnsembleCountsState) -> None:
        if state.num_nodes != self.num_nodes:
            raise ValueError(
                f"state has {state.num_nodes} nodes but the dynamic was built "
                f"for {self.num_nodes}"
            )
        if state.num_opinions != self.num_opinions:
            raise ValueError(
                f"state has {state.num_opinions} opinions but the noise matrix "
                f"has {self.num_opinions}"
            )

    def run(
        self,
        initial_state: Union[
            PopulationState, EnsembleState, CountsState, EnsembleCountsState
        ],
        max_rounds: int,
        num_trials: Optional[int] = None,
        *,
        target_opinion: Optional[int] = None,
        stop_at_consensus: bool = True,
        record_history: bool = True,
    ) -> CountsDynamicsResult:
        """Run every trial for up to ``max_rounds`` rounds.

        The counts-engine mirror of :meth:`EnsembleOpinionDynamics.run`
        (same arguments, same early-stopping semantics: converged trials
        leave the active set and stop consuming randomness and compute).
        ``initial_state`` additionally accepts the counts-native state
        types; per-node states are reduced to their sufficient statistics
        on entry.
        """
        max_rounds = require_positive_int(max_rounds, "max_rounds")
        ensemble = coerce_to_ensemble_counts(initial_state, num_trials)
        self._check_state(ensemble)
        num_trials = ensemble.num_trials
        if target_opinion is None:
            target_opinion = ensemble.pooled_plurality_opinion()
        target_opinion = int(target_opinion)
        if target_opinion > self.num_opinions:
            raise ValueError(
                f"target_opinion must be in [0, {self.num_opinions}], "
                f"got {target_opinion}"
            )
        randomness = self._trial_randomness(num_trials)
        per_trial = is_generator_sequence(randomness)
        counts = ensemble.counts
        rounds_executed = np.zeros(num_trials, dtype=np.int64)
        active = np.arange(num_trials)
        bias_rows: List[np.ndarray] = []
        last_bias = np.zeros(num_trials, dtype=float)
        active_counts = counts
        for _ in range(max_rounds):
            if active.size == num_trials:
                self.step(ensemble, randomness)
                active_counts = counts
            else:
                sub_randomness = (
                    [randomness[index] for index in active]
                    if per_trial
                    else randomness
                )
                sub_state = EnsembleCountsState(
                    counts[active], self.num_nodes
                )
                self.step(sub_state, sub_randomness)
                counts[active] = sub_state.counts
                active_counts = sub_state.counts
            rounds_executed[active] += 1
            if record_history and target_opinion > 0:
                last_bias = last_bias.copy()
                last_bias[active] = _bias_from_counts(
                    active_counts, target_opinion, self.num_nodes
                )
                bias_rows.append(last_bias)
            if stop_at_consensus:
                done = active_counts.max(axis=1) == self.num_nodes
                if done.any():
                    active = active[~done]
                    if active.size == 0:
                        break
        converged = counts.max(axis=1) == self.num_nodes
        consensus_opinions = np.where(
            converged, counts.argmax(axis=1) + 1, 0
        ).astype(np.int64)
        bias_history = (
            np.stack(bias_rows)
            if bias_rows
            else np.zeros((0, num_trials), dtype=float)
        )
        return CountsDynamicsResult(
            final_states=ensemble,
            rounds_executed=rounds_executed,
            converged=converged,
            consensus_opinions=consensus_opinions,
            target_opinion=target_opinion,
            successes=converged & (consensus_opinions == target_opinion),
            bias_history=bias_history,
        )
