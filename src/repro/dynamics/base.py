"""Common infrastructure for the baseline opinion dynamics.

Every baseline is a synchronous-round dynamic over a
:class:`~repro.core.state.PopulationState`: in each round every node observes
a few uniformly random nodes' opinions through the noisy channel (the same
noise matrix the paper's protocol faces) and updates its own opinion by a
local rule.  :class:`OpinionDynamics` implements the run loop, convergence
detection and history recording; concrete dynamics implement
:meth:`OpinionDynamics.step`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.state import PopulationState
from repro.network.pull_model import UniformPullModel
from repro.noise.matrix import NoiseMatrix
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import require_positive_int

__all__ = ["OpinionDynamics", "DynamicsResult"]


@dataclass
class DynamicsResult:
    """Outcome of running a baseline dynamic.

    Attributes
    ----------
    final_state:
        The population state when the run stopped.
    rounds_executed:
        Number of synchronous rounds executed.
    converged:
        ``True`` iff the run stopped because all nodes agreed on one opinion.
    consensus_opinion:
        The agreed opinion when ``converged`` (0 otherwise).
    target_opinion:
        The opinion the run was tracking (initial plurality by default).
    success:
        ``True`` iff the run converged on ``target_opinion``.
    bias_history:
        Bias toward ``target_opinion`` after every round.
    """

    final_state: PopulationState
    rounds_executed: int
    converged: bool
    consensus_opinion: int
    target_opinion: int
    success: bool
    bias_history: List[float] = field(default_factory=list)


class OpinionDynamics(ABC):
    """Base class for synchronous baseline dynamics under noisy observation.

    Parameters
    ----------
    num_nodes:
        Population size ``n``.
    noise:
        Noise matrix applied to every observation; pass the identity matrix
        for the classical noise-free dynamics.
    random_state:
        Randomness source shared by the observation substrate and the rules.
    """

    #: Human-readable name used in comparison tables.
    name: str = "opinion-dynamics"

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        random_state: RandomState = None,
    ) -> None:
        self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        self.noise = noise
        self._rng = as_generator(random_state)
        self.pull = UniformPullModel(self.num_nodes, noise, self._rng)

    @property
    def num_opinions(self) -> int:
        """Number of opinions ``k``."""
        return self.noise.num_opinions

    @abstractmethod
    def step(self, state: PopulationState) -> None:
        """Execute one synchronous round, mutating ``state`` in place."""

    def _check_state(self, state: PopulationState) -> None:
        if state.num_nodes != self.num_nodes:
            raise ValueError(
                f"state has {state.num_nodes} nodes but the dynamic was built "
                f"for {self.num_nodes}"
            )
        if state.num_opinions != self.num_opinions:
            raise ValueError(
                f"state has {state.num_opinions} opinions but the noise matrix "
                f"has {self.num_opinions}"
            )

    def run(
        self,
        initial_state: PopulationState,
        max_rounds: int,
        *,
        target_opinion: Optional[int] = None,
        stop_at_consensus: bool = True,
        record_history: bool = True,
    ) -> DynamicsResult:
        """Run the dynamic for up to ``max_rounds`` rounds.

        The run stops early when all nodes share one opinion (if
        ``stop_at_consensus``), which is the natural convergence-time
        measurement used by the baseline-comparison experiment.
        """
        max_rounds = require_positive_int(max_rounds, "max_rounds")
        self._check_state(initial_state)
        state = initial_state.copy()
        if target_opinion is None:
            target_opinion = state.plurality_opinion()
        bias_history: List[float] = []
        rounds_executed = 0
        for _ in range(max_rounds):
            self.step(state)
            rounds_executed += 1
            if record_history and target_opinion > 0:
                bias_history.append(state.bias_toward(target_opinion))
            if stop_at_consensus:
                counts = state.opinion_counts()
                if counts.max(initial=0) == state.num_nodes:
                    break
        counts = state.opinion_counts()
        converged = bool(counts.max(initial=0) == state.num_nodes)
        consensus_opinion = int(np.argmax(counts)) + 1 if converged else 0
        return DynamicsResult(
            final_state=state,
            rounds_executed=rounds_executed,
            converged=converged,
            consensus_opinion=consensus_opinion,
            target_opinion=int(target_opinion),
            success=bool(converged and consensus_opinion == target_opinion),
            bias_history=bias_history,
        )
