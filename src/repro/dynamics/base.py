"""Common infrastructure for the baseline opinion dynamics.

Every baseline is a synchronous-round dynamic over a
:class:`~repro.core.state.PopulationState`: in each round every node observes
a few uniformly random nodes' opinions through the noisy channel (the same
noise matrix the paper's protocol faces) and updates its own opinion by a
local rule.  :class:`OpinionDynamics` implements the run loop, convergence
detection and history recording; concrete dynamics implement
:meth:`OpinionDynamics.step`.

:class:`EnsembleOpinionDynamics` is the batched counterpart: ``R``
independent trials evolve together over an ``(R, n)`` opinion matrix
(:class:`~repro.core.state.EnsembleState`), with per-trial convergence
tracking and an active-trials index so converged trials stop costing work.
With per-trial randomness sources (the default), trial ``r`` consumes draws
from its own source only, so a batched run is bitwise identical to ``R``
batch-size-1 ensemble runs with matched seeds — exactly the guarantee the
ensemble protocol gives.  Agreement with the sequential
:meth:`OpinionDynamics.run` reference engine is distributional (the batched
engine samples the compound observation channel; see
:mod:`repro.network.pull_model`) and is checked statistically by the
test-suite.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.core.state import (
    CountsState,
    EnsembleCountsState,
    EnsembleState,
    PopulationState,
    coerce_to_ensemble_counts,
)
from repro.network.pull_model import (
    CountsPullModel,
    EnsemblePullModel,
    UniformPullModel,
)
from repro.noise.matrix import NoiseMatrix
from repro.utils.multiset import opinion_counts_matrix
from repro.utils.rng import (
    EnsembleRandomState,
    RandomState,
    as_generator,
    is_generator_sequence,
    resolve_trial_randomness,
)
from repro.utils.validation import require_positive_int

__all__ = [
    "OpinionDynamics",
    "DynamicsResult",
    "EnsembleOpinionDynamics",
    "EnsembleDynamicsResult",
    "EnsembleCountsDynamics",
    "CountsDynamicsResult",
    "CountsDynamicsTask",
    "run_heterogeneous_counts_dynamics",
]


def _bias_from_counts(
    counts: np.ndarray, opinion: int, num_nodes: int
) -> np.ndarray:
    """Definition-1 bias toward ``opinion`` from opinion counts.

    Works on a single count vector ``(k,)`` or a batch ``(..., k)``; the
    sequential and batched run loops share this helper so both record the
    bias with identical arithmetic.
    """
    distribution = counts / num_nodes
    if distribution.shape[-1] == 1:
        return distribution[..., 0]
    rivals = np.delete(distribution, opinion - 1, axis=-1)
    return distribution[..., opinion - 1] - rivals.max(axis=-1)


@dataclass
class DynamicsResult:
    """Outcome of running a baseline dynamic.

    Attributes
    ----------
    final_state:
        The population state when the run stopped.
    rounds_executed:
        Number of synchronous rounds executed.
    converged:
        ``True`` iff the run stopped because all nodes agreed on one opinion.
    consensus_opinion:
        The agreed opinion when ``converged`` (0 otherwise).
    target_opinion:
        The opinion the run was tracking (initial plurality by default).
    success:
        ``True`` iff the run converged on ``target_opinion``.
    bias_history:
        Bias toward ``target_opinion`` after every round.
    """

    final_state: PopulationState
    rounds_executed: int
    converged: bool
    consensus_opinion: int
    target_opinion: int
    success: bool
    bias_history: List[float] = field(default_factory=list)


class OpinionDynamics(ABC):
    """Base class for synchronous baseline dynamics under noisy observation.

    Parameters
    ----------
    num_nodes:
        Population size ``n``.
    noise:
        Noise matrix applied to every observation; pass the identity matrix
        for the classical noise-free dynamics.
    random_state:
        Randomness source shared by the observation substrate and the rules.
    """

    #: Human-readable name used in comparison tables.
    name: str = "opinion-dynamics"

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        random_state: RandomState = None,
    ) -> None:
        self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        self.noise = noise
        self._rng = as_generator(random_state)
        self.pull = UniformPullModel(self.num_nodes, noise, self._rng)

    @property
    def num_opinions(self) -> int:
        """Number of opinions ``k``."""
        return self.noise.num_opinions

    @abstractmethod
    def step(self, state: PopulationState) -> None:
        """Execute one synchronous round, mutating ``state`` in place."""

    def _check_state(self, state: PopulationState) -> None:
        if state.num_nodes != self.num_nodes:
            raise ValueError(
                f"state has {state.num_nodes} nodes but the dynamic was built "
                f"for {self.num_nodes}"
            )
        if state.num_opinions != self.num_opinions:
            raise ValueError(
                f"state has {state.num_opinions} opinions but the noise matrix "
                f"has {self.num_opinions}"
            )

    def run(
        self,
        initial_state: PopulationState,
        max_rounds: int,
        *,
        target_opinion: Optional[int] = None,
        stop_at_consensus: bool = True,
        record_history: bool = True,
    ) -> DynamicsResult:
        """Run the dynamic for up to ``max_rounds`` rounds.

        The run stops early when all nodes share one opinion (if
        ``stop_at_consensus``), which is the natural convergence-time
        measurement used by the baseline-comparison experiment.
        """
        max_rounds = require_positive_int(max_rounds, "max_rounds")
        self._check_state(initial_state)
        state = initial_state.copy()
        if target_opinion is None:
            target_opinion = state.plurality_opinion()
        target_opinion = int(target_opinion)
        if target_opinion > self.num_opinions:
            raise ValueError(
                f"target_opinion must be in [0, {self.num_opinions}], "
                f"got {target_opinion}"
            )
        bias_history: List[float] = []
        rounds_executed = 0
        for _ in range(max_rounds):
            self.step(state)
            rounds_executed += 1
            # One opinion_counts() per round, shared by the bias record, the
            # early-stop check and the final convergence verdict.
            counts = state.opinion_counts()
            if record_history and target_opinion > 0:
                bias_history.append(
                    float(_bias_from_counts(counts, target_opinion, self.num_nodes))
                )
            if stop_at_consensus and counts.max(initial=0) == state.num_nodes:
                break
        converged = bool(counts.max(initial=0) == state.num_nodes)
        consensus_opinion = int(np.argmax(counts)) + 1 if converged else 0
        return DynamicsResult(
            final_state=state,
            rounds_executed=rounds_executed,
            converged=converged,
            consensus_opinion=consensus_opinion,
            target_opinion=target_opinion,
            success=bool(converged and consensus_opinion == target_opinion),
            bias_history=bias_history,
        )


@dataclass
class EnsembleDynamicsResult:
    """Outcome of a batched multi-trial dynamics run.

    Attributes
    ----------
    final_states:
        The ensemble state when every trial had stopped (one row per trial).
    rounds_executed:
        Integer ``(R,)`` array: rounds trial ``r`` executed before it
        converged (or hit ``max_rounds``).
    converged:
        Boolean ``(R,)`` mask of trials that reached consensus.
    consensus_opinions:
        Integer ``(R,)`` array: the agreed opinion per converged trial
        (0 otherwise).
    target_opinion:
        The opinion every trial was tracking.
    successes:
        Boolean ``(R,)`` mask: converged on ``target_opinion``.
    bias_history:
        Float ``(T, R)`` matrix: bias toward the target after every executed
        round, where ``T = rounds_executed.max()``.  Rows past a trial's
        convergence repeat its final bias; slice with ``rounds_executed`` (or
        use :meth:`trial_result`) for the per-trial history a sequential run
        would record.  Empty (``T = 0``) when history recording is off.
    """

    final_states: EnsembleState
    rounds_executed: np.ndarray
    converged: np.ndarray
    consensus_opinions: np.ndarray
    target_opinion: int
    successes: np.ndarray
    bias_history: np.ndarray

    @property
    def num_trials(self) -> int:
        """Number of trials ``R`` in the batch."""
        return self.final_states.num_trials

    @property
    def success_count(self) -> int:
        """Number of trials that reached consensus on the target opinion."""
        return int(np.count_nonzero(self.successes))

    @property
    def success_rate(self) -> float:
        """Empirical success probability over the batch."""
        return self.success_count / self.num_trials

    @property
    def convergence_rate(self) -> float:
        """Fraction of trials that reached consensus on *some* opinion."""
        return int(np.count_nonzero(self.converged)) / self.num_trials

    @property
    def final_biases(self) -> np.ndarray:
        """Per-trial bias of the final distribution toward the target.

        All zeros when no target was tracked (``target_opinion == 0``), so
        the accessor is total like the rest of the result.
        """
        if self.target_opinion <= 0:
            return np.zeros(self.num_trials, dtype=float)
        return self.final_states.bias_toward(self.target_opinion)

    def trial_result(self, trial: int) -> DynamicsResult:
        """Trial ``trial`` as a standalone :class:`DynamicsResult`.

        Bitwise identical to what a batch-size-1 ensemble run with that
        trial's randomness source would have produced for its only trial.
        """
        rounds = int(self.rounds_executed[trial])
        return DynamicsResult(
            final_state=self.final_states.trial_state(trial),
            rounds_executed=rounds,
            converged=bool(self.converged[trial]),
            consensus_opinion=int(self.consensus_opinions[trial]),
            target_opinion=self.target_opinion,
            success=bool(self.successes[trial]),
            bias_history=[
                float(value) for value in self.bias_history[:rounds, trial]
            ],
        )

    def summary(self) -> dict:
        """Headline statistics of the batch."""
        return {
            "num_trials": self.num_trials,
            "target_opinion": self.target_opinion,
            "success_rate": self.success_rate,
            "convergence_rate": self.convergence_rate,
            "mean_rounds": float(self.rounds_executed.mean()),
            "mean_final_bias": float(self.final_biases.mean()),
        }


class EnsembleOpinionDynamics(ABC):
    """Run ``R`` independent trials of a baseline dynamic as one batch.

    Every trial follows exactly the rule of the matching
    :class:`OpinionDynamics` subclass; the trial axis is carried through
    every numpy operation, and per-trial early stopping keeps converged
    trials out of the remaining rounds' work (the *active-trials index*).

    Parameters
    ----------
    num_nodes:
        Population size ``n`` per trial.
    noise:
        Noise matrix applied to every observation.
    random_state:
        Either a single :data:`~repro.utils.rng.RandomState` or a sequence
        with one entry per trial.  With a sequence, trial ``r`` consumes
        randomness exclusively from its own source, making a batched run
        bitwise identical to ``R`` batch-size-1 runs with the same sources.
    rng_mode:
        ``"per_trial"`` (default): when ``random_state`` is a single source,
        spawn one independent child generator per trial, preserving the
        trial-by-trial reproducibility guarantee.  ``"shared"``: drive the
        whole batch from one generator with fully batched draws — faster,
        but individual trials are not reproducible in isolation (and the
        stream depends on when other trials converge).
    """

    #: Human-readable name used in comparison tables.
    name: str = "ensemble-opinion-dynamics"

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        random_state: EnsembleRandomState = None,
        *,
        rng_mode: str = "per_trial",
    ) -> None:
        if rng_mode not in {"per_trial", "shared"}:
            raise ValueError(
                f"rng_mode must be 'per_trial' or 'shared', got {rng_mode!r}"
            )
        self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        self.noise = noise
        self.rng_mode = rng_mode
        self._random_state = random_state
        self.pull = EnsemblePullModel(self.num_nodes, noise)

    @property
    def num_opinions(self) -> int:
        """Number of opinions ``k``."""
        return self.noise.num_opinions

    @abstractmethod
    def step(
        self, state: EnsembleState, random_state: EnsembleRandomState
    ) -> None:
        """One synchronous round over every trial of ``state``, in place.

        ``random_state`` is the batch's randomness for this round: a list
        with one generator per trial of ``state`` (per-trial mode) or one
        shared generator.
        """

    def reset_randomness(self, random_state: EnsembleRandomState) -> None:
        """Replace the default randomness source of subsequent runs.

        Used by the sweep fast path to reuse one engine instance across
        grid cells while keeping each cell's seed explicit.
        """
        self._random_state = random_state

    def _trial_randomness(self, num_trials: int) -> EnsembleRandomState:
        return resolve_trial_randomness(
            self._random_state, num_trials, self.rng_mode
        )

    def _coerce_ensemble(
        self,
        initial_state: Union[PopulationState, EnsembleState],
        num_trials: Optional[int],
    ) -> EnsembleState:
        if isinstance(initial_state, PopulationState):
            if num_trials is None:
                raise ValueError(
                    "num_trials is required when initial_state is a single "
                    "PopulationState"
                )
            return EnsembleState.from_state(initial_state, num_trials)
        if isinstance(initial_state, EnsembleState):
            if num_trials is not None and num_trials != initial_state.num_trials:
                raise ValueError(
                    f"num_trials = {num_trials} disagrees with the ensemble's "
                    f"{initial_state.num_trials} trials"
                )
            return initial_state.copy()
        raise TypeError(
            "initial_state must be a PopulationState or an EnsembleState, "
            f"got {type(initial_state).__name__}"
        )

    def _check_state(self, state: EnsembleState) -> None:
        if state.num_nodes != self.num_nodes:
            raise ValueError(
                f"state has {state.num_nodes} nodes but the dynamic was built "
                f"for {self.num_nodes}"
            )
        if state.num_opinions != self.num_opinions:
            raise ValueError(
                f"state has {state.num_opinions} opinions but the noise matrix "
                f"has {self.num_opinions}"
            )

    def run(
        self,
        initial_state: Union[PopulationState, EnsembleState],
        max_rounds: int,
        num_trials: Optional[int] = None,
        *,
        target_opinion: Optional[int] = None,
        stop_at_consensus: bool = True,
        record_history: bool = True,
    ) -> EnsembleDynamicsResult:
        """Run every trial for up to ``max_rounds`` rounds.

        Parameters
        ----------
        initial_state:
            Either one :class:`PopulationState` (tiled into ``num_trials``
            identical starting points) or a pre-built :class:`EnsembleState`
            with per-trial initial conditions (``num_trials`` inferred).
        max_rounds:
            Round budget per trial.
        target_opinion:
            The opinion to track; defaults to the plurality opinion of the
            pooled initial counts (for a tiled ensemble this matches the
            per-trial default of the sequential runner).
        stop_at_consensus:
            Remove a trial from the active set as soon as all its nodes
            agree; converged trials stop consuming randomness and compute.
        record_history:
            Record the per-round bias toward the target for every trial.
        """
        max_rounds = require_positive_int(max_rounds, "max_rounds")
        ensemble = self._coerce_ensemble(initial_state, num_trials)
        self._check_state(ensemble)
        num_trials = ensemble.num_trials
        if target_opinion is None:
            target_opinion = ensemble.pooled_plurality_opinion()
        target_opinion = int(target_opinion)
        if target_opinion > self.num_opinions:
            raise ValueError(
                f"target_opinion must be in [0, {self.num_opinions}], "
                f"got {target_opinion}"
            )
        randomness = self._trial_randomness(num_trials)
        per_trial = is_generator_sequence(randomness)
        opinions = ensemble.opinions
        rounds_executed = np.zeros(num_trials, dtype=np.int64)
        active = np.arange(num_trials)
        bias_rows: List[np.ndarray] = []
        last_bias = np.zeros(num_trials, dtype=float)
        for _ in range(max_rounds):
            if active.size == num_trials:
                # Full batch: step the working state in place.
                self.step(ensemble, randomness)
                active_opinions = opinions
            else:
                sub_randomness = (
                    [randomness[index] for index in active]
                    if per_trial
                    else randomness
                )
                # The fancy index already yields a fresh in-range matrix, so
                # wrap it without the constructor's copy and range scan.
                sub_state = EnsembleState.wrap(
                    opinions[active], self.num_opinions
                )
                self.step(sub_state, sub_randomness)
                opinions[active] = sub_state.opinions
                active_opinions = sub_state.opinions
            counts = opinion_counts_matrix(
                active_opinions, self.num_opinions, validate=False
            )
            rounds_executed[active] += 1
            if record_history and target_opinion > 0:
                last_bias = last_bias.copy()
                last_bias[active] = _bias_from_counts(
                    counts, target_opinion, self.num_nodes
                )
                bias_rows.append(last_bias)
            if stop_at_consensus:
                done = counts.max(axis=1) == self.num_nodes
                if done.any():
                    active = active[~done]
                    if active.size == 0:
                        break
        final_counts = ensemble.opinion_counts()
        converged = final_counts.max(axis=1) == self.num_nodes
        consensus_opinions = np.where(
            converged, final_counts.argmax(axis=1) + 1, 0
        ).astype(np.int64)
        bias_history = (
            np.stack(bias_rows)
            if bias_rows
            else np.zeros((0, num_trials), dtype=float)
        )
        return EnsembleDynamicsResult(
            final_states=ensemble,
            rounds_executed=rounds_executed,
            converged=converged,
            consensus_opinions=consensus_opinions,
            target_opinion=target_opinion,
            successes=converged & (consensus_opinions == target_opinion),
            bias_history=bias_history,
        )


@dataclass
class CountsDynamicsResult:
    """Outcome of a multi-trial counts-engine dynamics run.

    The counts-engine counterpart of :class:`EnsembleDynamicsResult`: the
    same per-trial verdicts and histories, but the final state is an
    :class:`~repro.core.state.EnsembleCountsState` (``(R, k)`` sufficient
    statistics) because the engine never materializes per-node opinions.
    """

    final_states: EnsembleCountsState
    rounds_executed: np.ndarray
    converged: np.ndarray
    consensus_opinions: np.ndarray
    target_opinion: int
    successes: np.ndarray
    bias_history: np.ndarray

    @property
    def num_trials(self) -> int:
        """Number of trials ``R`` in the batch."""
        return self.final_states.num_trials

    @property
    def success_count(self) -> int:
        """Number of trials that reached consensus on the target opinion."""
        return int(np.count_nonzero(self.successes))

    @property
    def success_rate(self) -> float:
        """Empirical success probability over the batch."""
        return self.success_count / self.num_trials

    @property
    def convergence_rate(self) -> float:
        """Fraction of trials that reached consensus on *some* opinion."""
        return int(np.count_nonzero(self.converged)) / self.num_trials

    @property
    def final_biases(self) -> np.ndarray:
        """Per-trial bias of the final distribution toward the target."""
        if self.target_opinion <= 0:
            return np.zeros(self.num_trials, dtype=float)
        return self.final_states.bias_toward(self.target_opinion)

    def summary(self) -> dict:
        """Headline statistics of the batch."""
        return {
            "num_trials": self.num_trials,
            "target_opinion": self.target_opinion,
            "success_rate": self.success_rate,
            "convergence_rate": self.convergence_rate,
            "mean_rounds": float(self.rounds_executed.mean()),
            "mean_final_bias": float(self.final_biases.mean()),
        }


# reprolint: counts-tier
class EnsembleCountsDynamics(ABC):
    """Run ``R`` independent trials of a dynamic on sufficient statistics.

    The third engine tier.  Every trial follows exactly the rule of the
    matching :class:`OpinionDynamics` subclass, but the state is the
    ``(R, k)`` opinion-count matrix of an
    :class:`~repro.core.state.EnsembleCountsState`: on the complete graph
    the per-node opinion vector is exchangeable, so one grouped-multinomial
    draw per current-opinion group reproduces each round's aggregate
    update *exactly in distribution* (see
    :class:`~repro.network.pull_model.CountsPullModel`).  Per-round cost is
    ``O(k^2)`` per trial — independent of ``n`` — and no method allocates
    an array with an ``n``-sized axis, which is what lets the engine
    simulate millions (or billions) of nodes at fixed cost.

    Randomness follows the ensemble convention: with per-trial sources
    (the default) trial ``r`` consumes draws from its own generator only,
    so a counts batch is bitwise identical to ``R`` batch-size-1 counts
    runs with the same sources; agreement with the ``sequential`` and
    ``batched`` per-node engines is distributional and is checked by the
    statistical engine-agreement test-suite.
    """

    #: Human-readable name used in comparison tables.
    name: str = "counts-opinion-dynamics"

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        random_state: EnsembleRandomState = None,
        *,
        rng_mode: str = "per_trial",
    ) -> None:
        if rng_mode not in {"per_trial", "shared"}:
            raise ValueError(
                f"rng_mode must be 'per_trial' or 'shared', got {rng_mode!r}"
            )
        self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        self.noise = noise
        self.rng_mode = rng_mode
        self._random_state = random_state
        self.pull = CountsPullModel(self.num_nodes, noise)

    @property
    def num_opinions(self) -> int:
        """Number of opinions ``k``."""
        return self.noise.num_opinions

    @abstractmethod
    def step(
        self, state: EnsembleCountsState, random_state: EnsembleRandomState
    ) -> None:
        """One synchronous round over every trial of ``state``, in place.

        Implementations mutate ``state.counts`` (an ``(R, k)`` int64
        matrix) and must consume randomness per trial only from that
        trial's generator when ``random_state`` is a per-trial sequence.
        """

    def reset_randomness(self, random_state: EnsembleRandomState) -> None:
        """Replace the default randomness source of subsequent runs.

        Used by the sweep fast path to reuse one engine instance across
        grid cells while keeping each cell's seed explicit.
        """
        self._random_state = random_state

    def _trial_randomness(self, num_trials: int) -> EnsembleRandomState:
        return resolve_trial_randomness(
            self._random_state, num_trials, self.rng_mode
        )

    def _check_state(self, state: EnsembleCountsState) -> None:
        if state.num_nodes != self.num_nodes:
            raise ValueError(
                f"state has {state.num_nodes} nodes but the dynamic was built "
                f"for {self.num_nodes}"
            )
        if state.num_opinions != self.num_opinions:
            raise ValueError(
                f"state has {state.num_opinions} opinions but the noise matrix "
                f"has {self.num_opinions}"
            )

    def _begin(
        self,
        initial_state: Union[
            PopulationState, EnsembleState, CountsState, EnsembleCountsState
        ],
        max_rounds: int,
        num_trials: Optional[int] = None,
        *,
        target_opinion: Optional[int] = None,
        stop_at_consensus: bool = True,
        record_history: bool = True,
    ) -> "_CountsRunState":
        """Validate inputs and set up the run-loop state of :meth:`run`."""
        max_rounds = require_positive_int(max_rounds, "max_rounds")
        ensemble = coerce_to_ensemble_counts(initial_state, num_trials)
        self._check_state(ensemble)
        num_trials = ensemble.num_trials
        if target_opinion is None:
            target_opinion = ensemble.pooled_plurality_opinion()
        target_opinion = int(target_opinion)
        if target_opinion > self.num_opinions:
            raise ValueError(
                f"target_opinion must be in [0, {self.num_opinions}], "
                f"got {target_opinion}"
            )
        randomness = self._trial_randomness(num_trials)
        return _CountsRunState(
            ensemble=ensemble,
            max_rounds=max_rounds,
            target_opinion=target_opinion,
            stop_at_consensus=stop_at_consensus,
            record_history=record_history,
            randomness=randomness,
            per_trial=is_generator_sequence(randomness),
            rounds_executed=np.zeros(num_trials, dtype=np.int64),
            active=np.arange(num_trials),
            last_bias=np.zeros(num_trials, dtype=float),
        )

    def _advance(self, run: "_CountsRunState") -> bool:
        """Execute one round of :meth:`run`'s loop; ``True`` while unfinished.

        The exact body of the historical monolithic loop, factored out so
        the heterogeneous sweep runner
        (:func:`run_heterogeneous_counts_dynamics`) can interleave many
        grid points round by round while each point stays bitwise
        identical to its own standalone :meth:`run`.
        """
        if run.rounds_done >= run.max_rounds or run.active.size == 0:
            return False
        ensemble, counts, active = run.ensemble, run.ensemble.counts, run.active
        if active.size == ensemble.num_trials:
            self.step(ensemble, run.randomness)
            active_counts = counts
        else:
            sub_randomness = (
                [run.randomness[index] for index in active]
                if run.per_trial
                else run.randomness
            )
            sub_state = EnsembleCountsState(counts[active], self.num_nodes)
            self.step(sub_state, sub_randomness)
            counts[active] = sub_state.counts
            active_counts = sub_state.counts
        run.rounds_executed[active] += 1
        if run.record_history and run.target_opinion > 0:
            run.last_bias = run.last_bias.copy()
            run.last_bias[active] = _bias_from_counts(
                active_counts, run.target_opinion, self.num_nodes
            )
            run.bias_rows.append(run.last_bias)
        if run.stop_at_consensus:
            done = active_counts.max(axis=1) == self.num_nodes
            if done.any():
                run.active = run.active[~done]
        run.rounds_done += 1
        return run.rounds_done < run.max_rounds and run.active.size > 0

    def _finish(self, run: "_CountsRunState") -> CountsDynamicsResult:
        """Assemble the :class:`CountsDynamicsResult` of a completed loop."""
        counts = run.ensemble.counts
        converged = counts.max(axis=1) == self.num_nodes
        consensus_opinions = np.where(
            converged, counts.argmax(axis=1) + 1, 0
        ).astype(np.int64)
        bias_history = (
            np.stack(run.bias_rows)
            if run.bias_rows
            else np.zeros((0, run.ensemble.num_trials), dtype=float)
        )
        return CountsDynamicsResult(
            final_states=run.ensemble,
            rounds_executed=run.rounds_executed,
            converged=converged,
            consensus_opinions=consensus_opinions,
            target_opinion=run.target_opinion,
            successes=converged & (consensus_opinions == run.target_opinion),
            bias_history=bias_history,
        )

    def run(
        self,
        initial_state: Union[
            PopulationState, EnsembleState, CountsState, EnsembleCountsState
        ],
        max_rounds: int,
        num_trials: Optional[int] = None,
        *,
        target_opinion: Optional[int] = None,
        stop_at_consensus: bool = True,
        record_history: bool = True,
    ) -> CountsDynamicsResult:
        """Run every trial for up to ``max_rounds`` rounds.

        The counts-engine mirror of :meth:`EnsembleOpinionDynamics.run`
        (same arguments, same early-stopping semantics: converged trials
        leave the active set and stop consuming randomness and compute).
        ``initial_state`` additionally accepts the counts-native state
        types; per-node states are reduced to their sufficient statistics
        on entry.
        """
        run = self._begin(
            initial_state,
            max_rounds,
            num_trials,
            target_opinion=target_opinion,
            stop_at_consensus=stop_at_consensus,
            record_history=record_history,
        )
        while self._advance(run):
            pass
        return self._finish(run)


@dataclass
class _CountsRunState:
    """The loop state of one :meth:`EnsembleCountsDynamics.run` in flight."""

    ensemble: EnsembleCountsState
    max_rounds: int
    target_opinion: int
    stop_at_consensus: bool
    record_history: bool
    randomness: EnsembleRandomState
    per_trial: bool
    rounds_executed: np.ndarray
    active: np.ndarray
    last_bias: np.ndarray
    bias_rows: List[np.ndarray] = field(default_factory=list)
    rounds_done: int = 0


# reprolint: counts-tier
@dataclass
class CountsDynamicsTask:
    """One grid point of a heterogeneous counts-dynamics batch.

    Carries exactly the arguments a serial per-point loop would pass to
    :meth:`EnsembleCountsDynamics.run` on ``dynamics``.
    """

    dynamics: EnsembleCountsDynamics
    initial_state: Union[
        PopulationState, EnsembleState, CountsState, EnsembleCountsState
    ]
    max_rounds: int
    num_trials: Optional[int] = None
    target_opinion: Optional[int] = None
    stop_at_consensus: bool = True
    record_history: bool = True


def _merge_kind(dynamics: EnsembleCountsDynamics) -> Optional[str]:
    """The merged-step family of ``dynamics``, or ``None`` if unmergeable.

    Only the exact stock counts classes qualify (a subclass may override
    :meth:`step`, which the merged round cannot reproduce); they all share
    the grouped-observation structure — a row-stable observation pmf, one
    multinomial per trial, then exact integer algebra — which is what lets
    many grid points advance as one ``(sum of trials, k)`` computation
    while staying bitwise identical to their standalone runs.
    """
    from repro.dynamics.h_majority import (
        EnsembleCountsHMajorityDynamics,
        EnsembleCountsThreeMajorityDynamics,
    )
    from repro.dynamics.median_rule import EnsembleCountsMedianRuleDynamics
    from repro.dynamics.undecided_state import (
        EnsembleCountsUndecidedStateDynamics,
    )
    from repro.dynamics.voter import EnsembleCountsVoterDynamics

    concrete = type(dynamics)
    if concrete is EnsembleCountsVoterDynamics:
        return "voter"
    if concrete in (
        EnsembleCountsHMajorityDynamics,
        EnsembleCountsThreeMajorityDynamics,
    ):
        return "majority"
    if concrete is EnsembleCountsUndecidedStateDynamics:
        return "undecided"
    if concrete is EnsembleCountsMedianRuleDynamics:
        return "median"
    return None


def _run_merged_counts_group(
    kind: str,
    tasks: List[CountsDynamicsTask],
    states: List["_CountsRunState"],
) -> None:
    """Advance a group of same-``(kind, k)`` points as one merged batch.

    All heterogeneity is per row or per block: per-row population sizes
    (the merged state's ``num_nodes`` vector), per-block noise matrices
    and ``maj()`` sample sizes, per-row generators, per-point round
    budgets and convergence masks.  Every floating-point operation either
    is elementwise / a per-row reduction (row-stable by construction) or
    runs on exactly the slice shape the standalone run would use (the
    per-block matmul and vote-law calls), and every draw comes from the
    same generator with the same arguments — so each point's trajectory is
    bitwise identical to its own :meth:`EnsembleCountsDynamics.run`.
    Mutates ``states`` in place; callers finish with ``_finish``.
    """
    from repro.network.pull_model import majority_vote_law

    num_opinions = tasks[0].dynamics.num_opinions
    if kind == "median":
        from repro.dynamics.median_rule import _median_transition_tensor

        transition = _median_transition_tensor(num_opinions)
    live = list(range(len(tasks)))
    global_round = 0
    rebuild = True
    while live:
        if rebuild:
            # (Re)assemble the merged batch.  Between retirement events
            # the active sets are frozen, so this runs only when a row
            # converges or a point exhausts its round budget — the steady
            # state pays no per-block bookkeeping at all.
            blocks = []
            counts_parts: List[np.ndarray] = []
            node_parts: List[np.ndarray] = []
            stop_parts: List[np.ndarray] = []
            generators: List = []
            position = 0
            for index in live:
                state = states[index]
                dynamics = tasks[index].dynamics
                size = state.active.size
                blocks.append(
                    (
                        index,
                        state,
                        dynamics,
                        slice(position, position + size),
                        dynamics.noise.matrix,
                    )
                )
                counts_parts.append(state.ensemble.counts[state.active])
                node_parts.append(
                    np.full(size, dynamics.num_nodes, dtype=np.int64)
                )
                stop_parts.append(
                    np.full(size, state.stop_at_consensus, dtype=bool)
                )
                generators.extend(
                    state.randomness[row].multinomial
                    for row in state.active
                )
                position += size
            counts_active = np.vstack(counts_parts)
            nodes_active = np.concatenate(node_parts)
            stop_mask = np.concatenate(stop_parts)
            any_stop = bool(stop_mask.any())
            bias_blocks = [
                entry
                for entry in blocks
                if entry[1].record_history and entry[1].target_opinion > 0
            ]
            num_rows = counts_active.shape[0]
            deadline = min(tasks[index].max_rounds for index in live)
            rebuild = False
        # Observation pmf with per-row n and per-block noise — identical
        # arithmetic to CountsPullModel.observation_probabilities.
        shares = counts_active / nodes_active[:, np.newaxis]
        none_mass = 1.0 - shares.sum(axis=1, keepdims=True)
        noisy = np.empty((num_rows, num_opinions), dtype=float)
        for index, state, dynamics, block, noise_matrix in blocks:
            np.matmul(shares[block], noise_matrix, out=noisy[block])
        pmf = np.clip(np.concatenate([none_mass, noisy], axis=1), 0.0, 1.0)
        undecided = nodes_active - counts_active.sum(axis=1, dtype=np.int64)
        sizes = np.concatenate(
            [undecided[:, np.newaxis], counts_active], axis=1
        )
        if kind == "majority":
            draw_pmf = np.empty_like(pmf)
            for index, state, dynamics, block, noise_matrix in blocks:
                draw_pmf[block] = majority_vote_law(
                    pmf[block], dynamics.sample_size
                )
            out_dim = num_opinions + 1
        elif kind == "median":
            draw_pmf = (
                pmf[:, :, np.newaxis] * pmf[:, np.newaxis, :]
            ).reshape(num_rows, -1)
            out_dim = (num_opinions + 1) ** 2
        else:
            draw_pmf = pmf
            out_dim = num_opinions + 1
        drawn = np.empty(
            (num_rows, num_opinions + 1, out_dim), dtype=np.int64
        )
        # One scalar-n multinomial per observing group instead of one
        # vector-n call per row: numpy's broadcasting path costs ~5x more
        # per call, draws the same bits in the same order, and empty
        # groups (n = 0) consume no bits at all, so both decompositions
        # are bitwise identical to the serial _grouped_multinomial.
        for out_row, draw, size_row, pmf_row in zip(
            drawn, generators, sizes, draw_pmf
        ):
            for group in range(num_opinions + 1):
                group_size = size_row[group]
                if group_size:
                    out_row[group] = draw(group_size, pmf_row)
                else:
                    out_row[group] = 0
        if kind in ("voter", "majority"):
            counts_active = drawn[:, :, 1:].sum(axis=1) + drawn[:, 1:, 0]
        elif kind == "undecided":
            diagonal = np.arange(num_opinions)
            counts_active = (
                drawn[:, 0, 1:]
                + drawn[:, 1:, 0]
                + drawn[:, diagonal + 1, diagonal + 1]
            )
        else:  # median
            # Same unsafe cast the serial step performs when assigning the
            # float transition product into the int64 counts matrix.
            counts_active = np.einsum("rgp,gpv->rv", drawn, transition)[
                :, 1:
            ].astype(np.int64)
        global_round += 1
        for index, state, dynamics, block, noise_matrix in bias_blocks:
            state.last_bias = state.last_bias.copy()
            state.last_bias[state.active] = _bias_from_counts(
                counts_active[block], state.target_opinion, dynamics.num_nodes
            )
            state.bias_rows.append(state.last_bias)
        retired = False
        if any_stop:
            done_rows = (
                counts_active.max(axis=1) == nodes_active
            ) & stop_mask
            retired = bool(done_rows.any())
        if retired or global_round == deadline:
            still_live: List[int] = []
            for index, state, dynamics, block, noise_matrix in blocks:
                state.ensemble.counts[state.active] = counts_active[block]
                if retired:
                    local_done = done_rows[block]
                    if local_done.any():
                        state.rounds_executed[
                            state.active[local_done]
                        ] = global_round
                        state.active = state.active[~local_done]
                if (
                    global_round >= tasks[index].max_rounds
                    or state.active.size == 0
                ):
                    # Rows stepped in every round so far finish with the
                    # same count the serial per-round increment would give.
                    state.rounds_executed[state.active] = global_round
                    state.rounds_done = global_round
                    continue
                still_live.append(index)
            live = still_live
            rebuild = True


# reprolint: counts-tier
def run_heterogeneous_counts_dynamics(
    tasks: List[CountsDynamicsTask],
) -> List[CountsDynamicsResult]:
    """Run many counts-dynamics grid points in one shared round loop.

    The sweep engine's dynamics executor.  Points whose dynamics are stock
    counts rules are grouped by ``(rule family, k)`` and advanced as one
    merged ``(sum of trials, k)`` batch per round — per-row population
    sizes, per-block noise matrices and vote laws, per-block convergence
    masks, early retirement of finished points (see
    :func:`_run_merged_counts_group`).  Anything else (custom subclasses,
    shared-generator randomness) falls back to round-robin interleaving of
    the factored ``_begin`` / ``_advance`` / ``_finish`` loop.  Either
    way every point's :class:`CountsDynamicsResult` is **bitwise
    identical** to ``task.dynamics.run(...)`` with the same arguments.
    """
    states = [
        task.dynamics._begin(
            task.initial_state,
            task.max_rounds,
            task.num_trials,
            target_opinion=task.target_opinion,
            stop_at_consensus=task.stop_at_consensus,
            record_history=task.record_history,
        )
        for task in tasks
    ]
    groups: dict = {}
    loners: List[int] = []
    for index, (task, state) in enumerate(zip(tasks, states)):
        kind = _merge_kind(task.dynamics)
        if kind is not None and is_generator_sequence(state.randomness):
            key = (kind, task.dynamics.num_opinions)
            groups.setdefault(key, []).append(index)
        else:
            loners.append(index)
    for (kind, _), indices in groups.items():
        _run_merged_counts_group(
            kind,
            [tasks[index] for index in indices],
            [states[index] for index in indices],
        )
    pending = list(loners)
    while pending:
        pending = [
            index
            for index in pending
            if tasks[index].dynamics._advance(states[index])
        ]
    return [
        task.dynamics._finish(state) for task, state in zip(tasks, states)
    ]
