"""Baseline opinion dynamics from the literature the paper compares against.

The related-work section of the paper situates its protocol among several
elementary dynamics that solve (noise-free) plurality or majority consensus:

* the **3-majority dynamics** [9] and its **h-majority** generalization
  [13, 1]: every node samples the opinion of ``h`` random nodes and adopts
  the most frequent observed opinion;
* the **undecided-state dynamics** [5, 8]: a node observing a conflicting
  opinion first becomes undecided, and an undecided node adopts the next
  opinion it observes;
* the **median rule / power of two choices** [15]: opinions are treated as
  ordered values and every node moves to the median of its own value and two
  sampled values;
* the plain **voter model**: every node copies one random node's opinion;
* **approximate consensus** (midpoint of extremes over ``n - f`` accepted
  values, in the style of Byzantine approximate agreement): every node
  moves to the midpoint of the smallest and largest opinion among the
  values it accepts, for a phase budget derived from the target precision.

These baselines run here on the same noisy uniform communication substrate
(every observation corrupted by the noise matrix), which is what experiment
E12 uses to show where the paper's two-stage protocol wins: the elementary
dynamics are fast without noise but are not designed to withstand a constant
per-message corruption probability.

Every rule comes in three engines: the sequential :class:`OpinionDynamics`
subclasses (the reference implementations), the batched
:class:`EnsembleOpinionDynamics` subclasses that evolve ``R`` independent
trials over an ``(R, n)`` matrix at once, and the counts-based
:class:`EnsembleCountsDynamics` subclasses that evolve only the ``(R, k)``
opinion-count sufficient statistics — ``O(k^2)`` per round independent of
``n``, which is what scales the baselines to millions of nodes.

Engines are built by the unified ``(tier, rule)`` registry of
:func:`repro.sim.engines.build_dynamics` (or, one level up, by
``simulate(Scenario(workload="dynamics", rule=...))``).  The historical
per-tier factories :func:`make_dynamics` / :func:`make_ensemble_dynamics` /
:func:`make_counts_dynamics` remain as deprecation shims over that
registry: they construct exactly the same classes with exactly the same
arguments, so existing seeded runs stay bitwise reproducible.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.dynamics.approximate_consensus import (
    ApproximateConsensusDynamics,
    EnsembleApproximateConsensusDynamics,
    EnsembleCountsApproximateConsensusDynamics,
)
from repro.dynamics.base import (
    CountsDynamicsResult,
    DynamicsResult,
    EnsembleCountsDynamics,
    EnsembleDynamicsResult,
    EnsembleOpinionDynamics,
    OpinionDynamics,
)
from repro.dynamics.h_majority import (
    EnsembleCountsHMajorityDynamics,
    EnsembleCountsThreeMajorityDynamics,
    EnsembleHMajorityDynamics,
    EnsembleThreeMajorityDynamics,
    HMajorityDynamics,
    ThreeMajorityDynamics,
)
from repro.dynamics.median_rule import (
    EnsembleCountsMedianRuleDynamics,
    EnsembleMedianRuleDynamics,
    MedianRuleDynamics,
)
from repro.dynamics.undecided_state import (
    EnsembleCountsUndecidedStateDynamics,
    EnsembleUndecidedStateDynamics,
    UndecidedStateDynamics,
)
from repro.dynamics.voter import (
    EnsembleCountsVoterDynamics,
    EnsembleVoterDynamics,
    VoterDynamics,
)
from repro.noise.matrix import NoiseMatrix
from repro.utils.rng import EnsembleRandomState, RandomState

__all__ = [
    "DYNAMICS_RULES",
    "ApproximateConsensusDynamics",
    "CountsDynamicsResult",
    "DynamicsResult",
    "EnsembleApproximateConsensusDynamics",
    "EnsembleCountsApproximateConsensusDynamics",
    "EnsembleCountsDynamics",
    "EnsembleCountsHMajorityDynamics",
    "EnsembleCountsMedianRuleDynamics",
    "EnsembleCountsThreeMajorityDynamics",
    "EnsembleCountsUndecidedStateDynamics",
    "EnsembleCountsVoterDynamics",
    "EnsembleDynamicsResult",
    "EnsembleHMajorityDynamics",
    "EnsembleMedianRuleDynamics",
    "EnsembleOpinionDynamics",
    "EnsembleThreeMajorityDynamics",
    "EnsembleUndecidedStateDynamics",
    "EnsembleVoterDynamics",
    "HMajorityDynamics",
    "MedianRuleDynamics",
    "OpinionDynamics",
    "ThreeMajorityDynamics",
    "UndecidedStateDynamics",
    "VoterDynamics",
    "make_dynamics",
    "make_ensemble_dynamics",
    "make_counts_dynamics",
]

#: Rule names accepted by :func:`make_dynamics` / :func:`make_ensemble_dynamics`.
DYNAMICS_RULES = (
    "voter",
    "3-majority",
    "h-majority",
    "undecided-state",
    "median-rule",
    "approximate-consensus",
)


def _deprecated_build(
    tier: str,
    legacy_name: str,
    rule: str,
    num_nodes: int,
    noise: NoiseMatrix,
    random_state,
    sample_size: Optional[int],
    **kwargs,
):
    """Shared body of the three deprecated per-tier factory shims."""
    warnings.warn(
        f"repro.dynamics.{legacy_name} is deprecated; use "
        "repro.sim.engines.build_dynamics (or the repro.sim facade: "
        "simulate(Scenario(workload='dynamics', ...))) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    # Imported lazily: repro.sim.engines imports this package's submodules.
    from repro.sim.engines import build_dynamics

    return build_dynamics(
        tier,
        rule,
        num_nodes,
        noise,
        random_state,
        sample_size=sample_size,
        **kwargs,
    )


def make_dynamics(
    rule: str,
    num_nodes: int,
    noise: NoiseMatrix,
    random_state: RandomState = None,
    *,
    sample_size: Optional[int] = None,
) -> OpinionDynamics:
    """Deprecated: build a sequential baseline dynamic by rule name.

    A shim over :func:`repro.sim.engines.build_dynamics` (tier
    ``"sequential"``); it constructs the identical class with identical
    arguments, so seeded runs stay bitwise reproducible.
    """
    return _deprecated_build(
        "sequential", "make_dynamics", rule, num_nodes, noise,
        random_state, sample_size,
    )


def make_ensemble_dynamics(
    rule: str,
    num_nodes: int,
    noise: NoiseMatrix,
    random_state: EnsembleRandomState = None,
    *,
    sample_size: Optional[int] = None,
    rng_mode: str = "per_trial",
) -> EnsembleOpinionDynamics:
    """Deprecated: build a batched baseline dynamic by rule name.

    A shim over :func:`repro.sim.engines.build_dynamics` (tier
    ``"batched"``); it constructs the identical class with identical
    arguments, so seeded runs stay bitwise reproducible.
    """
    return _deprecated_build(
        "batched", "make_ensemble_dynamics", rule, num_nodes, noise,
        random_state, sample_size, rng_mode=rng_mode,
    )


def make_counts_dynamics(
    rule: str,
    num_nodes: int,
    noise: NoiseMatrix,
    random_state: EnsembleRandomState = None,
    *,
    sample_size: Optional[int] = None,
    rng_mode: str = "per_trial",
) -> EnsembleCountsDynamics:
    """Deprecated: build a counts-engine baseline dynamic by rule name.

    A shim over :func:`repro.sim.engines.build_dynamics` (tier
    ``"counts"``); it constructs the identical class with identical
    arguments, so seeded runs stay bitwise reproducible.
    """
    return _deprecated_build(
        "counts", "make_counts_dynamics", rule, num_nodes, noise,
        random_state, sample_size, rng_mode=rng_mode,
    )
