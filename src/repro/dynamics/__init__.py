"""Baseline opinion dynamics from the literature the paper compares against.

The related-work section of the paper situates its protocol among several
elementary dynamics that solve (noise-free) plurality or majority consensus:

* the **3-majority dynamics** [9] and its **h-majority** generalization
  [13, 1]: every node samples the opinion of ``h`` random nodes and adopts
  the most frequent observed opinion;
* the **undecided-state dynamics** [5, 8]: a node observing a conflicting
  opinion first becomes undecided, and an undecided node adopts the next
  opinion it observes;
* the **median rule / power of two choices** [15]: opinions are treated as
  ordered values and every node moves to the median of its own value and two
  sampled values;
* the plain **voter model**: every node copies one random node's opinion.

These baselines run here on the same noisy uniform communication substrate
(every observation corrupted by the noise matrix), which is what experiment
E12 uses to show where the paper's two-stage protocol wins: the elementary
dynamics are fast without noise but are not designed to withstand a constant
per-message corruption probability.

Every rule comes in three engines: the sequential :class:`OpinionDynamics`
subclasses (the reference implementations), the batched
:class:`EnsembleOpinionDynamics` subclasses that evolve ``R`` independent
trials over an ``(R, n)`` matrix at once, and the counts-based
:class:`EnsembleCountsDynamics` subclasses that evolve only the ``(R, k)``
opinion-count sufficient statistics — ``O(k^2)`` per round independent of
``n``, which is what scales the baselines to millions of nodes.
:func:`make_dynamics` / :func:`make_ensemble_dynamics` /
:func:`make_counts_dynamics` build any engine from a rule name
(:data:`DYNAMICS_RULES`), which is how the experiment runner and the CLI
select baselines.
"""

from __future__ import annotations

from typing import Optional

from repro.dynamics.base import (
    CountsDynamicsResult,
    DynamicsResult,
    EnsembleCountsDynamics,
    EnsembleDynamicsResult,
    EnsembleOpinionDynamics,
    OpinionDynamics,
)
from repro.dynamics.h_majority import (
    EnsembleCountsHMajorityDynamics,
    EnsembleCountsThreeMajorityDynamics,
    EnsembleHMajorityDynamics,
    EnsembleThreeMajorityDynamics,
    HMajorityDynamics,
    ThreeMajorityDynamics,
)
from repro.dynamics.median_rule import (
    EnsembleCountsMedianRuleDynamics,
    EnsembleMedianRuleDynamics,
    MedianRuleDynamics,
)
from repro.dynamics.undecided_state import (
    EnsembleCountsUndecidedStateDynamics,
    EnsembleUndecidedStateDynamics,
    UndecidedStateDynamics,
)
from repro.dynamics.voter import (
    EnsembleCountsVoterDynamics,
    EnsembleVoterDynamics,
    VoterDynamics,
)
from repro.noise.matrix import NoiseMatrix
from repro.utils.rng import EnsembleRandomState, RandomState

__all__ = [
    "DYNAMICS_RULES",
    "CountsDynamicsResult",
    "DynamicsResult",
    "EnsembleCountsDynamics",
    "EnsembleCountsHMajorityDynamics",
    "EnsembleCountsMedianRuleDynamics",
    "EnsembleCountsThreeMajorityDynamics",
    "EnsembleCountsUndecidedStateDynamics",
    "EnsembleCountsVoterDynamics",
    "EnsembleDynamicsResult",
    "EnsembleHMajorityDynamics",
    "EnsembleMedianRuleDynamics",
    "EnsembleOpinionDynamics",
    "EnsembleThreeMajorityDynamics",
    "EnsembleUndecidedStateDynamics",
    "EnsembleVoterDynamics",
    "HMajorityDynamics",
    "MedianRuleDynamics",
    "OpinionDynamics",
    "ThreeMajorityDynamics",
    "UndecidedStateDynamics",
    "VoterDynamics",
    "make_dynamics",
    "make_ensemble_dynamics",
    "make_counts_dynamics",
]

#: Rule names accepted by :func:`make_dynamics` / :func:`make_ensemble_dynamics`.
DYNAMICS_RULES = (
    "voter",
    "3-majority",
    "h-majority",
    "undecided-state",
    "median-rule",
)


def _resolve_rule(rule: str, sample_size: Optional[int]) -> None:
    if rule not in DYNAMICS_RULES:
        raise ValueError(
            f"rule must be one of {DYNAMICS_RULES}, got {rule!r}"
        )
    if rule == "h-majority" and sample_size is None:
        raise ValueError("rule 'h-majority' requires sample_size")
    if rule != "h-majority" and sample_size is not None:
        raise ValueError(
            f"rule {rule!r} does not take a sample_size "
            "(use 'h-majority' for a custom h)"
        )


def make_dynamics(
    rule: str,
    num_nodes: int,
    noise: NoiseMatrix,
    random_state: RandomState = None,
    *,
    sample_size: Optional[int] = None,
) -> OpinionDynamics:
    """Instantiate a sequential baseline dynamic by rule name.

    ``rule`` is one of :data:`DYNAMICS_RULES`; ``sample_size`` is required
    for (and only accepted by) ``"h-majority"``.
    """
    _resolve_rule(rule, sample_size)
    if rule == "voter":
        return VoterDynamics(num_nodes, noise, random_state)
    if rule == "3-majority":
        return ThreeMajorityDynamics(num_nodes, noise, random_state)
    if rule == "h-majority":
        return HMajorityDynamics(num_nodes, noise, sample_size, random_state)
    if rule == "undecided-state":
        return UndecidedStateDynamics(num_nodes, noise, random_state)
    return MedianRuleDynamics(num_nodes, noise, random_state)


def make_ensemble_dynamics(
    rule: str,
    num_nodes: int,
    noise: NoiseMatrix,
    random_state: EnsembleRandomState = None,
    *,
    sample_size: Optional[int] = None,
    rng_mode: str = "per_trial",
) -> EnsembleOpinionDynamics:
    """Instantiate a batched baseline dynamic by rule name.

    The batched counterpart of :func:`make_dynamics`; with the default
    per-trial randomness mode a batched run is bitwise reproducible trial by
    trial (identical to batch-size-1 runs with the same per-trial sources),
    and agrees with the sequential engine built from the same rule in
    distribution.
    """
    _resolve_rule(rule, sample_size)
    if rule == "voter":
        return EnsembleVoterDynamics(
            num_nodes, noise, random_state, rng_mode=rng_mode
        )
    if rule == "3-majority":
        return EnsembleThreeMajorityDynamics(
            num_nodes, noise, random_state, rng_mode=rng_mode
        )
    if rule == "h-majority":
        return EnsembleHMajorityDynamics(
            num_nodes, noise, sample_size, random_state, rng_mode=rng_mode
        )
    if rule == "undecided-state":
        return EnsembleUndecidedStateDynamics(
            num_nodes, noise, random_state, rng_mode=rng_mode
        )
    return EnsembleMedianRuleDynamics(
        num_nodes, noise, random_state, rng_mode=rng_mode
    )


def make_counts_dynamics(
    rule: str,
    num_nodes: int,
    noise: NoiseMatrix,
    random_state: EnsembleRandomState = None,
    *,
    sample_size: Optional[int] = None,
    rng_mode: str = "per_trial",
) -> EnsembleCountsDynamics:
    """Instantiate a counts-engine baseline dynamic by rule name.

    The sufficient-statistics counterpart of :func:`make_ensemble_dynamics`:
    the returned engine evolves ``(R, k)`` opinion-count matrices with
    grouped multinomial draws — exact in distribution, ``O(k^2)`` per round
    per trial, independent of ``n``.  Like the batched engine it is
    bitwise reproducible trial by trial in per-trial randomness mode.
    """
    _resolve_rule(rule, sample_size)
    if rule == "voter":
        return EnsembleCountsVoterDynamics(
            num_nodes, noise, random_state, rng_mode=rng_mode
        )
    if rule == "3-majority":
        return EnsembleCountsThreeMajorityDynamics(
            num_nodes, noise, random_state, rng_mode=rng_mode
        )
    if rule == "h-majority":
        return EnsembleCountsHMajorityDynamics(
            num_nodes, noise, sample_size, random_state, rng_mode=rng_mode
        )
    if rule == "undecided-state":
        return EnsembleCountsUndecidedStateDynamics(
            num_nodes, noise, random_state, rng_mode=rng_mode
        )
    return EnsembleCountsMedianRuleDynamics(
        num_nodes, noise, random_state, rng_mode=rng_mode
    )
