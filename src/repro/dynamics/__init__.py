"""Baseline opinion dynamics from the literature the paper compares against.

The related-work section of the paper situates its protocol among several
elementary dynamics that solve (noise-free) plurality or majority consensus:

* the **3-majority dynamics** [9] and its **h-majority** generalization
  [13, 1]: every node samples the opinion of ``h`` random nodes and adopts
  the most frequent observed opinion;
* the **undecided-state dynamics** [5, 8]: a node observing a conflicting
  opinion first becomes undecided, and an undecided node adopts the next
  opinion it observes;
* the **median rule / power of two choices** [15]: opinions are treated as
  ordered values and every node moves to the median of its own value and two
  sampled values;
* the plain **voter model**: every node copies one random node's opinion.

These baselines run here on the same noisy uniform communication substrate
(every observation corrupted by the noise matrix), which is what experiment
E12 uses to show where the paper's two-stage protocol wins: the elementary
dynamics are fast without noise but are not designed to withstand a constant
per-message corruption probability.
"""

from repro.dynamics.base import DynamicsResult, OpinionDynamics
from repro.dynamics.h_majority import HMajorityDynamics, ThreeMajorityDynamics
from repro.dynamics.median_rule import MedianRuleDynamics
from repro.dynamics.undecided_state import UndecidedStateDynamics
from repro.dynamics.voter import VoterDynamics

__all__ = [
    "DynamicsResult",
    "HMajorityDynamics",
    "MedianRuleDynamics",
    "OpinionDynamics",
    "ThreeMajorityDynamics",
    "UndecidedStateDynamics",
    "VoterDynamics",
]
