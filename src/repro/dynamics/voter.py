"""The voter model: copy the opinion of one random node.

The simplest pull dynamics: in each round every node observes one uniformly
random node and adopts its opinion (if the target is undecided, the observer
keeps its current state).  The voter model reaches consensus only in
``Theta(n)`` expected rounds on the complete graph and offers no bias
amplification, so it serves as the "floor" baseline in the comparison
experiment: it shows what happens when nodes do no aggregation at all, with
or without noise.
"""

from __future__ import annotations

from repro.core.state import EnsembleState, PopulationState
from repro.dynamics.base import EnsembleOpinionDynamics, OpinionDynamics
from repro.utils.rng import EnsembleRandomState

__all__ = ["VoterDynamics", "EnsembleVoterDynamics"]


class VoterDynamics(OpinionDynamics):
    """Copy one noisy random observation per round."""

    name = "voter"

    def step(self, state: PopulationState) -> None:
        """One round: every node copies a noisy observation (if any)."""
        self._check_state(state)
        observed = self.pull.observe_single(state.opinions)
        updaters = observed > 0
        state.opinions[updaters] = observed[updaters]


class EnsembleVoterDynamics(EnsembleOpinionDynamics):
    """The voter model batched over ``R`` independent trials."""

    name = "voter"

    def step(
        self, state: EnsembleState, random_state: EnsembleRandomState
    ) -> None:
        """One round of the copy rule over the whole batch."""
        observed = self.pull.observe_single(state.opinions, random_state)
        updaters = observed > 0
        state.opinions[updaters] = observed[updaters]
