"""The voter model: copy the opinion of one random node.

The simplest pull dynamics: in each round every node observes one uniformly
random node and adopts its opinion (if the target is undecided, the observer
keeps its current state).  The voter model reaches consensus only in
``Theta(n)`` expected rounds on the complete graph and offers no bias
amplification, so it serves as the "floor" baseline in the comparison
experiment: it shows what happens when nodes do no aggregation at all, with
or without noise.
"""

from __future__ import annotations

from repro.core.state import EnsembleCountsState, EnsembleState, PopulationState
from repro.dynamics.base import (
    EnsembleCountsDynamics,
    EnsembleOpinionDynamics,
    OpinionDynamics,
)
from repro.utils.rng import EnsembleRandomState

__all__ = [
    "VoterDynamics",
    "EnsembleVoterDynamics",
    "EnsembleCountsVoterDynamics",
]


class VoterDynamics(OpinionDynamics):
    """Copy one noisy random observation per round."""

    name = "voter"

    def step(self, state: PopulationState) -> None:
        """One round: every node copies a noisy observation (if any)."""
        self._check_state(state)
        observed = self.pull.observe_single(state.opinions)
        updaters = observed > 0
        state.opinions[updaters] = observed[updaters]


class EnsembleVoterDynamics(EnsembleOpinionDynamics):
    """The voter model batched over ``R`` independent trials."""

    name = "voter"

    def step(
        self, state: EnsembleState, random_state: EnsembleRandomState
    ) -> None:
        """One round of the copy rule over the whole batch."""
        observed = self.pull.observe_single(state.opinions, random_state)
        updaters = observed > 0
        state.opinions[updaters] = observed[updaters]


class EnsembleCountsVoterDynamics(EnsembleCountsDynamics):
    """The voter model on ``(R, k)`` sufficient statistics (counts engine).

    A node that observes an opinion adopts it irrespective of its own, so
    one grouped observation draw per round determines the new counts: the
    new supporters of opinion ``j`` are every node that observed ``j`` plus
    the current ``j``-supporters that observed an undecided target.
    """

    name = "voter"

    def step(
        self, state: EnsembleCountsState, random_state: EnsembleRandomState
    ) -> None:
        """One round of the copy rule, exactly in distribution, O(k^2)."""
        observed = self.pull.observe_single_grouped(state.counts, random_state)
        adopters = observed[:, :, 1:].sum(axis=1)
        keepers = observed[:, 1:, 0]
        state.counts[:] = adopters + keepers
